"""Auditing a crowd: detecting spammer communities with CPA (paper §5.5).

Fits CPA on the entity-extraction scenario and uses the inferred worker
communities plus the consensus reliability weights to flag suspicious
workers — the worker-management use case behind requirement R1.  Since
the scenario carries provenance (the true archetype of every simulated
worker), the audit's precision can be verified directly.

Run:  python examples/spammer_audit.py
"""

import numpy as np

from repro import CPAModel, make_scenario
from repro.core.diagnostics import community_summaries, worker_operating_points


def main() -> None:
    dataset = make_scenario("entity", seed=5)
    print(dataset, "\n")

    model = CPAModel().fit(dataset)
    state = model.state_
    consensus = model.consensus_

    # --- community-level audit --------------------------------------------
    print("Inferred communities (size, operating point, dominant true type):")
    summaries = community_summaries(state, dataset)
    for summary in sorted(summaries, key=lambda s: -s.size)[:8]:
        weight = consensus.community_weights[summary.community]
        print(
            f"  community {summary.community:2d}: size={summary.size:5.1f} "
            f"sens={summary.mean_sensitivity:.2f} spec={summary.mean_specificity:.2f} "
            f"reliability-weight={weight:6.2f} type={summary.dominant_type}"
        )

    # --- flag workers in low-reliability communities -----------------------
    weights = consensus.community_weights
    threshold = np.percentile(weights[weights > 0], 50)
    communities = model.worker_communities()
    flagged = [
        worker
        for worker in dataset.answers.active_workers()
        if weights[communities[worker]] < threshold
    ]

    assert dataset.worker_types is not None
    spammer_types = {"uniform_spammer", "random_spammer"}
    true_spammers = {
        worker
        for worker in dataset.answers.active_workers()
        if dataset.worker_types[worker] in spammer_types
    }
    caught = sum(1 for worker in flagged if worker in true_spammers)
    print(
        f"\nFlagged {len(flagged)} workers below the median reliability weight; "
        f"{caught} of the {len(true_spammers)} true spammers are among them "
        f"(audit recall {caught / max(len(true_spammers), 1):.0%})."
    )

    # --- per-label view (Fig 9 style) --------------------------------------
    busiest = int(np.argmax(dataset.answers.label_counts()))
    points = worker_operating_points(dataset, labels=[busiest], min_support=2)
    low = [p for p in points if p.sensitivity < 0.4]
    print(
        f"\nFor the busiest label ({dataset.label_name(busiest)}): "
        f"{len(points)} workers have measurable operating points, "
        f"{len(low)} of them sit below 0.4 sensitivity — the kind of "
        "per-label community structure Fig 9 visualises."
    )


if __name__ == "__main__":
    main()
