"""Movie genre tagging with a custom dataset built through the public API.

Instead of a prebuilt scenario, this example assembles a
:class:`~repro.data.dataset.CrowdDataset` from scratch — the path an
adopter with their own crowdsourcing export would take — then runs CPA,
saves and reloads the dataset, and demonstrates prediction for *new*
answers with a fitted model (the paper's "non-grounded items" setting).

Run:  python examples/movie_genre_tagging.py
"""

import tempfile
from pathlib import Path

from repro import CPAModel, evaluate_predictions
from repro.data import (
    AnswerMatrix,
    CrowdDataset,
    GroundTruth,
    load_dataset_json,
    save_dataset_json,
)
from repro.simulation import generate_dataset, SimulationConfig
from repro.workers.population import PopulationSpec

GENRES = [
    "action", "comedy", "drama", "horror", "sci-fi", "romance",
    "thriller", "documentary", "animation", "western", "musical", "crime",
]


def build_dataset() -> CrowdDataset:
    """Simulated genre-tagging export: 120 movies, 60 workers, 12 genres."""
    config = SimulationConfig(
        name="movie-genres",
        n_items=120,
        n_workers=60,
        n_labels=len(GENRES),
        n_label_clusters=8,
        n_item_clusters=12,
        labels_per_item_mean=2.0,
        max_labels_per_item=4,
        answers_per_item=6,
        correlation_strength=0.4,
        difficulty=0.2,
        worker_skew="skewed",
        population=PopulationSpec.from_alpha_beta_gamma(50, 30, 20),
    )
    dataset = generate_dataset(config, seed=21)
    return CrowdDataset(
        name=dataset.name,
        answers=dataset.answers,
        truth=dataset.truth,
        label_names=GENRES,
        worker_types=dataset.worker_types,
        item_clusters=dataset.item_clusters,
    )


def main() -> None:
    dataset = build_dataset()
    print(dataset)

    # --- persistence round-trip (the JSON interchange format) -------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "movies.json"
        save_dataset_json(dataset, path)
        dataset = load_dataset_json(path)
        print(f"round-tripped through {path.name}: {dataset.n_answers} answers")

    # --- fit and evaluate ---------------------------------------------------
    model = CPAModel().fit(dataset)
    result = evaluate_predictions(model.predict(), dataset.truth)
    print(f"\nCPA on genre tagging: precision={result.precision:.3f} "
          f"recall={result.recall:.3f}")

    item = dataset.answers.answered_items()[0]
    predicted = sorted(GENRES[g] for g in model.predict([item])[item])
    true = sorted(GENRES[g] for g in (dataset.truth.get(item) or ()))
    print(f"movie {item}: predicted {predicted}, truth {true}")

    # --- predict for brand-new answers with the fitted model ----------------
    # Two fresh workers tag movie 0 (indices beyond the training workers
    # are not allowed — reuse existing worker ids for the new ballots).
    new_answers = AnswerMatrix(dataset.n_items, dataset.n_workers, dataset.n_labels)
    first_truth = sorted(dataset.truth.get(0) or ())
    new_answers.add(0, 0, first_truth[:1])
    new_answers.add(0, 1, first_truth)
    fresh = model.predict([0], answers=new_answers)
    print(
        f"prediction for movie 0 from two fresh ballots: "
        f"{sorted(GENRES[g] for g in fresh[0])}"
    )


if __name__ == "__main__":
    main()
