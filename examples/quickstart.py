"""Quickstart: aggregate partial-agreement crowd answers with CPA.

Builds a small image-tagging crowd (the paper's motivating domain), fits
the CPA model, prints the aggregated label sets next to the ground truth,
and compares accuracy against majority voting.

Run:  python examples/quickstart.py
"""

from repro import (
    CPAModel,
    MajorityVoteAggregator,
    evaluate_predictions,
    make_scenario,
)


def main() -> None:
    # A synthetic stand-in for the paper's NUS-WIDE image-tagging dataset:
    # 240 images, 30 tags with co-occurrence clusters, 100 workers of mixed
    # reliability (43% reliable-ish / 32% sloppy / 25% spammers).
    dataset = make_scenario("image", seed=7)
    print(dataset)

    # --- fit CPA (batch variational inference, paper Alg. 1) -------------
    model = CPAModel().fit(dataset)
    predictions = model.predict()

    print("\nFirst five aggregated items (predicted vs true labels):")
    for item in list(predictions)[:5]:
        predicted = sorted(predictions[item])
        true = sorted(dataset.truth.get(item) or ())
        print(f"  item {item:3d}  predicted={predicted}  true={true}")

    # --- evaluate against majority voting ---------------------------------
    cpa_eval = evaluate_predictions(predictions, dataset.truth)
    mv_eval = evaluate_predictions(
        MajorityVoteAggregator().aggregate(dataset), dataset.truth
    )
    print(f"\nCPA: precision={cpa_eval.precision:.3f} recall={cpa_eval.recall:.3f}")
    print(f"MV : precision={mv_eval.precision:.3f} recall={mv_eval.recall:.3f}")

    # --- inspect the inferred structure ------------------------------------
    print(f"\nEffective worker communities: {model.n_effective_communities()}")
    print(f"Effective item clusters:      {model.n_effective_clusters()}")
    weights = model.community_reliability()
    print(
        "Community reliability weights (top 5): "
        + ", ".join(f"{w:.2f}" for w in sorted(weights, reverse=True)[:5])
    )


if __name__ == "__main__":
    main()
