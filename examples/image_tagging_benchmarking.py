"""Benchmark every aggregator on an image-tagging crowd (paper Table 4 row).

Runs MV, Dawid–Skene EM, the Ipeirotis cost refinement, BCC, cBCC, and CPA
on the image scenario, printing a Table-4-style comparison plus each
method's runtime.  Also demonstrates the spammer-injection robustness
check of paper Fig 4 on the same data.

Run:  python examples/image_tagging_benchmarking.py
"""

from repro import (
    BCCAggregator,
    CommunityBCCAggregator,
    CPAAggregator,
    DawidSkeneAggregator,
    IpeirotisAggregator,
    MajorityVoteAggregator,
    evaluate_predictions,
    make_scenario,
)
from repro.evaluation.runner import evaluate_methods
from repro.evaluation.report import scores_table
from repro.simulation.perturbations import inject_spammers


def main() -> None:
    dataset = make_scenario("image", seed=3)
    print(dataset, "\n")

    methods = [
        MajorityVoteAggregator(),
        DawidSkeneAggregator(),
        IpeirotisAggregator(),
        BCCAggregator(),
        CommunityBCCAggregator(),
        CPAAggregator(),
    ]
    scores = evaluate_methods(dataset, methods)
    print(scores_table(scores, title="Image tagging, clean crowd"))

    # --- robustness: inject spammers until they are 40% of all answers ----
    spammed = inject_spammers(dataset, 0.4, seed=99)
    print(
        f"\nInjected spammers: {dataset.n_answers} -> {spammed.n_answers} answers "
        f"({spammed.n_workers - dataset.n_workers} new spammer workers)"
    )
    for method_factory in (CommunityBCCAggregator, CPAAggregator):
        clean = evaluate_predictions(
            method_factory().aggregate(dataset), dataset.truth
        )
        noisy = evaluate_predictions(
            method_factory().aggregate(spammed), dataset.truth
        )
        name = method_factory().name
        print(
            f"  {name:4s}: precision {clean.precision:.3f} -> {noisy.precision:.3f} "
            f"(retained {noisy.precision / clean.precision:.0%})"
        )


if __name__ == "__main__":
    main()
