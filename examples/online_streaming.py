"""Incremental aggregation as crowd answers stream in (paper §4.1 / Fig 6).

Simulates a live crowdsourcing campaign on the topic-annotation scenario:
answers arrive in 10% increments, the model is updated with stochastic
variational inference after each increment, and intermediate consensus
quality is reported — the workflow the paper motivates for early-stopping
campaigns ("if intermediate results are of high quality, the
crowdsourcing process can be terminated early to save cost").

Run:  python examples/online_streaming.py
"""

import warnings

from repro import CPAModel, evaluate_predictions, make_scenario
from repro.data.streams import AnswerStream
from repro.errors import ConvergenceWarning


def main() -> None:
    warnings.simplefilter("ignore", ConvergenceWarning)
    dataset = make_scenario("topic", seed=11)
    print(dataset, "\n")

    model = CPAModel().start_online(
        dataset.n_items,
        dataset.n_workers,
        dataset.n_labels,
        seed=11,
        total_answers_hint=dataset.n_answers,
    )

    stream = AnswerStream(dataset.answers, seed=42)
    fractions = [i / 10 for i in range(1, 11)]
    print("arrival   #answers   precision   recall")
    seen = 0
    for batch in stream.by_fractions(fractions):
        model.partial_fit(batch)
        seen += batch.n_answers
        result = evaluate_predictions(model.predict(), dataset.truth)
        arrival = seen / dataset.n_answers
        print(
            f"{arrival:7.0%}   {seen:8d}   {result.precision:9.3f}   {result.recall:6.3f}"
        )

    # A campaign operator could stop once quality plateaus — compare the
    # final online consensus with a from-scratch offline refit:
    offline = CPAModel().fit(dataset)
    offline_eval = evaluate_predictions(offline.predict(), dataset.truth)
    print(
        f"\noffline refit for reference: precision={offline_eval.precision:.3f} "
        f"recall={offline_eval.recall:.3f}"
    )


if __name__ == "__main__":
    main()
