"""repro — a full reproduction of *Computing Crowd Consensus with Partial
Agreement* (Nguyen Quoc Viet Hung et al., ICDE 2018).

The package implements the paper's CPA model (Bayesian nonparametric
partial-agreement answer aggregation with worker communities and item
clusters), its batch/stochastic/parallel inference, the MV / EM / cBCC
baselines, a crowd-simulation substrate, and one experiment module per
table and figure of the evaluation section.

Quickstart::

    from repro import CPAModel, make_scenario, evaluate_predictions

    dataset = make_scenario("image", seed=7)
    model = CPAModel().fit(dataset)
    predictions = model.predict()
    print(evaluate_predictions(predictions, dataset.truth))
"""

from repro.baselines import (
    Aggregator,
    BCCAggregator,
    CommunityBCCAggregator,
    CPAAggregator,
    DawidSkeneAggregator,
    IpeirotisAggregator,
    MajorityVoteAggregator,
    NoClustersAggregator,
    NoCommunitiesAggregator,
)
from repro.core import CPAConfig, CPAModel
from repro.data import AnswerMatrix, CrowdDataset, GroundTruth
from repro.evaluation import evaluate_predictions
from repro.simulation import SimulationConfig, generate_dataset, make_scenario

__version__ = "1.0.0"

__all__ = [
    "Aggregator",
    "AnswerMatrix",
    "BCCAggregator",
    "CommunityBCCAggregator",
    "CPAAggregator",
    "CPAConfig",
    "CPAModel",
    "CrowdDataset",
    "DawidSkeneAggregator",
    "GroundTruth",
    "IpeirotisAggregator",
    "MajorityVoteAggregator",
    "NoClustersAggregator",
    "NoCommunitiesAggregator",
    "SimulationConfig",
    "evaluate_predictions",
    "generate_dataset",
    "make_scenario",
    "__version__",
]
