"""Worker substrate: archetypes, populations, and answer behaviour.

Implements the worker taxonomy of paper §2.1 (reliable, normal, sloppy,
uniform spammer, random spammer), the population mixtures of §5.1
(α% reliable, β% sloppy, γ% spammers split evenly between uniform and
random), and the per-label two-coin behaviour model of Appendix A used to
synthesise partially-sound, partially-complete answers.
"""

from repro.workers.behavior import AnswerBehavior, expected_operating_point
from repro.workers.population import PopulationSpec, sample_population
from repro.workers.types import WorkerProfile, WorkerType

__all__ = [
    "AnswerBehavior",
    "expected_operating_point",
    "PopulationSpec",
    "sample_population",
    "WorkerProfile",
    "WorkerType",
]
