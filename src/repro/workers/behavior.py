"""Answer synthesis: turning a worker profile + true labels into an answer.

This is the generative side of the two-coin model (Appendix A), lifted to
the partial-agreement setting: for an honest worker, each truly-present
label is included with the worker's per-label *sensitivity*, and a
Poisson-distributed number of false-positive labels is added, optionally
biased towards labels that co-occur with the true ones (so mistakes are
*plausible* rather than uniform — this is what makes the multi-label
aggregation problem hard in practice and in the paper's datasets).

Spammers ignore the truth entirely: uniform spammers emit their fixed set,
random spammers a truth-blind random subset.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.workers.types import WorkerProfile, WorkerType


class AnswerBehavior:
    """Stateless answer generator for a fixed label-space size.

    Parameters
    ----------
    n_labels:
        Size of the label space ``C``.
    confusability:
        Optional ``C × C`` non-negative matrix; entry ``(a, b)`` scores how
        plausible it is to *wrongly* add label ``b`` when ``a`` is truly
        present.  When given, false positives are drawn proportionally to
        the summed confusability with the item's true labels (plus a small
        uniform floor); when omitted, false positives are uniform over the
        absent labels.
    """

    def __init__(
        self, n_labels: int, confusability: Optional[np.ndarray] = None
    ) -> None:
        if n_labels <= 0:
            raise ValidationError("n_labels must be positive")
        self.n_labels = int(n_labels)
        if confusability is not None:
            confusability = np.asarray(confusability, dtype=float)
            if confusability.shape != (n_labels, n_labels):
                raise ValidationError("confusability must be C x C")
            if np.any(confusability < 0):
                raise ValidationError("confusability must be non-negative")
        self.confusability = confusability

    # ------------------------------------------------------------------ public

    def generate(
        self,
        profile: WorkerProfile,
        true_labels: FrozenSet[int] | Sequence[int],
        rng: np.random.Generator,
        *,
        sensitivity_scale: float = 1.0,
    ) -> FrozenSet[int]:
        """Generate one (non-empty) answer for an item with ``true_labels``.

        ``sensitivity_scale`` models per-*item* difficulty: a hard item
        degrades every honest worker's recognition simultaneously, which
        correlates their errors (the independence violation per-label
        aggregators are blind to).
        """
        truth = frozenset(int(label) for label in true_labels)
        if any(not 0 <= label < self.n_labels for label in truth):
            raise ValidationError("true label index out of range")
        if not 0.0 < sensitivity_scale <= 1.0:
            raise ValidationError("sensitivity_scale must lie in (0, 1]")

        if profile.worker_type is WorkerType.UNIFORM_SPAMMER:
            return self._clip_to_space(profile.fixed_answer or frozenset())
        if profile.worker_type is WorkerType.RANDOM_SPAMMER:
            return self._random_subset(profile.random_inclusion, rng)
        return self._honest_answer(profile, truth, rng, sensitivity_scale)

    # ----------------------------------------------------------------- internals

    def _clip_to_space(self, labels: FrozenSet[int]) -> FrozenSet[int]:
        clipped = frozenset(label for label in labels if 0 <= label < self.n_labels)
        if not clipped:
            raise ValidationError("uniform spammer answer lies outside the label space")
        return clipped

    def _random_subset(
        self, inclusion: float, rng: np.random.Generator
    ) -> FrozenSet[int]:
        mask = rng.random(self.n_labels) < inclusion
        if not mask.any():
            mask[rng.integers(self.n_labels)] = True
        return frozenset(int(label) for label in np.flatnonzero(mask))

    def _honest_answer(
        self,
        profile: WorkerProfile,
        truth: FrozenSet[int],
        rng: np.random.Generator,
        sensitivity_scale: float,
    ) -> FrozenSet[int]:
        sensitivity = np.asarray(profile.sensitivity, dtype=float)
        if sensitivity.size != self.n_labels:
            raise ValidationError(
                f"profile built for {sensitivity.size} labels, behaviour for {self.n_labels}"
            )
        recognised = {
            label
            for label in truth
            if rng.random() < sensitivity[label] * sensitivity_scale
        }

        # Confusion substitution: a recognised label may be reported as a
        # confusable neighbour instead (partially-sound answers whose false
        # positives are *correlated* with the truth of related labels).
        included: set[int] = set()
        for label in recognised:
            if profile.confusion_prob > 0 and rng.random() < profile.confusion_prob:
                substitute = self._confused_label(label, truth, rng)
                included.add(substitute)
            else:
                included.add(label)

        absent = np.array(
            [label for label in range(self.n_labels) if label not in truth], dtype=int
        )
        if absent.size and profile.fp_mean > 0:
            n_fp = min(int(rng.poisson(profile.fp_mean)), absent.size)
            if n_fp:
                weights = self._false_positive_weights(truth, absent)
                chosen = rng.choice(absent, size=n_fp, replace=False, p=weights)
                included.update(int(label) for label in chosen)

        # Attention budget: workers stop after listing a few labels, so
        # rich items receive systematically incomplete answers.
        if profile.attention_budget and len(included) > profile.attention_budget:
            pool = np.fromiter(included, dtype=int)
            keep = rng.choice(pool, size=profile.attention_budget, replace=False)
            included = {int(label) for label in keep}

        if not included:
            # Workers must submit something; fall back to the single most
            # plausible label (their highest-sensitivity true label, or a
            # uniformly random one when the truth set is empty).
            if truth:
                best = max(truth, key=lambda label: sensitivity[label])
                included.add(best)
            else:
                included.add(int(rng.integers(self.n_labels)))
        return frozenset(included)

    def _confused_label(
        self, label: int, truth: FrozenSet[int], rng: np.random.Generator
    ) -> int:
        """A plausible substitute for ``label`` (prefers confusable labels)."""
        candidates = np.array(
            [c for c in range(self.n_labels) if c != label and c not in truth],
            dtype=int,
        )
        if candidates.size == 0:
            return label
        if self.confusability is not None:
            scores = self.confusability[label, candidates]
            total = scores.sum()
            if total > 0:
                return int(rng.choice(candidates, p=scores / total))
        return int(rng.choice(candidates))

    def _false_positive_weights(
        self, truth: FrozenSet[int], absent: np.ndarray
    ) -> Optional[np.ndarray]:
        if self.confusability is None or not truth:
            return None
        truth_idx = np.fromiter(truth, dtype=int)
        scores = self.confusability[truth_idx][:, absent].sum(axis=0)
        scores = scores + 0.05 * (scores.sum() / max(absent.size, 1) + 1e-9)
        total = scores.sum()
        if total <= 0:
            return None
        return scores / total


def expected_operating_point(
    profile: WorkerProfile, n_labels: int, typical_truth_size: float = 2.0
) -> tuple[float, float]:
    """Expected (sensitivity, specificity) of a profile — Fig 10's axes.

    For honest workers this is the mean per-label sensitivity and the
    specificity implied by the expected false-positive count.  For spammers
    the operating point reflects their truth-blind behaviour: near-zero
    effective sensitivity beyond chance for uniform spammers (they hit a
    true label only when their fixed set intersects it) and
    chance-level sensitivity equal to the inclusion rate for random ones.
    """
    if profile.worker_type is WorkerType.UNIFORM_SPAMMER:
        fixed = len(profile.fixed_answer or frozenset())
        hit_chance = min(1.0, fixed * typical_truth_size / n_labels)
        specificity = 1.0 - fixed / max(n_labels - typical_truth_size, 1.0)
        return hit_chance, float(np.clip(specificity, 0.0, 1.0))
    if profile.worker_type is WorkerType.RANDOM_SPAMMER:
        return profile.random_inclusion, 1.0 - profile.random_inclusion
    sensitivity = float(np.mean(profile.sensitivity))
    denom = max(n_labels - typical_truth_size, 1.0)
    specificity = float(np.clip(1.0 - profile.fp_mean / denom, 0.0, 1.0))
    return sensitivity, specificity
