"""Worker population mixtures (paper §5.1).

The paper simulates crowds as "α% reliable workers, β% sloppy workers and
γ% spammers (γ/2% random spammers and γ/2% uniform spammers)" with defaults
α = 43, β = 32, γ = 25, calibrated against studies of real platforms
([22], [28]).  :class:`PopulationSpec` generalises this to an arbitrary
mixture over the five archetypes, and :func:`sample_population` instantiates
a concrete list of worker profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import ValidationError
from repro.utils.random import RandomState, Seed
from repro.workers.types import WorkerProfile, WorkerType, sample_profile


@dataclass(frozen=True)
class PopulationSpec:
    """A mixture over worker archetypes; fractions must sum to one."""

    mixture: Dict[WorkerType, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.mixture:
            raise ValidationError("mixture must not be empty")
        total = 0.0
        for worker_type, fraction in self.mixture.items():
            if not isinstance(worker_type, WorkerType):
                raise ValidationError(f"mixture key {worker_type!r} is not a WorkerType")
            if fraction < 0:
                raise ValidationError("mixture fractions must be non-negative")
            total += fraction
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValidationError(f"mixture fractions must sum to 1, got {total}")

    @classmethod
    def paper_default(cls) -> "PopulationSpec":
        """The §5.1 default: 43% reliable-ish, 32% sloppy, 25% spammers.

        The paper folds "normal" workers into the reliable share for its
        simulation recipe; we keep both honest sub-types so community
        structure has something to find, splitting the 43% evenly.
        """
        return cls(
            {
                WorkerType.RELIABLE: 0.22,
                WorkerType.NORMAL: 0.21,
                WorkerType.SLOPPY: 0.32,
                WorkerType.UNIFORM_SPAMMER: 0.125,
                WorkerType.RANDOM_SPAMMER: 0.125,
            }
        )

    @classmethod
    def from_alpha_beta_gamma(
        cls, alpha: float, beta: float, gamma: float, *, normal_share: float = 0.5
    ) -> "PopulationSpec":
        """Build a spec from the paper's (α, β, γ) percentages.

        ``alpha + beta + gamma`` must equal 100.  ``normal_share`` is the
        portion of the α bucket realised as *normal* (vs. reliable) workers.
        """
        if not np.isclose(alpha + beta + gamma, 100.0, atol=1e-6):
            raise ValidationError("alpha + beta + gamma must equal 100")
        for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if value < 0:
                raise ValidationError(f"{name} must be non-negative")
        if not 0 <= normal_share <= 1:
            raise ValidationError("normal_share must lie in [0, 1]")
        return cls(
            {
                WorkerType.RELIABLE: alpha / 100.0 * (1 - normal_share),
                WorkerType.NORMAL: alpha / 100.0 * normal_share,
                WorkerType.SLOPPY: beta / 100.0,
                WorkerType.UNIFORM_SPAMMER: gamma / 200.0,
                WorkerType.RANDOM_SPAMMER: gamma / 200.0,
            }
        )

    @classmethod
    def spammers_only(cls) -> "PopulationSpec":
        """Pure spammer population (used by the Fig-4 injection tool)."""
        return cls(
            {WorkerType.UNIFORM_SPAMMER: 0.5, WorkerType.RANDOM_SPAMMER: 0.5}
        )

    def spammer_fraction(self) -> float:
        """Total mass on the two spammer archetypes."""
        return sum(
            fraction
            for worker_type, fraction in self.mixture.items()
            if worker_type.is_spammer
        )


def sample_population(
    spec: PopulationSpec,
    n_workers: int,
    n_labels: int,
    seed: Seed = None,
    *,
    typical_answer_size: float = 2.0,
) -> List[WorkerProfile]:
    """Draw ``n_workers`` profiles according to ``spec``.

    Type counts are assigned by largest-remainder apportionment so the
    realised mixture matches the spec as closely as integer counts allow,
    then the type sequence is shuffled so worker index carries no type
    information.
    """
    if n_workers <= 0:
        raise ValidationError("n_workers must be positive")
    rng = RandomState(seed)

    types = list(spec.mixture)
    fractions = np.array([spec.mixture[t] for t in types], dtype=float)
    raw = fractions * n_workers
    counts = np.floor(raw).astype(int)
    remainder = n_workers - counts.sum()
    if remainder > 0:
        order = np.argsort(-(raw - counts))
        for index in order[:remainder]:
            counts[index] += 1

    assigned: List[WorkerType] = []
    for worker_type, count in zip(types, counts):
        assigned.extend([worker_type] * int(count))
    rng.shuffle(assigned)  # type: ignore[arg-type]

    return [
        sample_profile(
            worker_type, n_labels, rng, typical_answer_size=typical_answer_size
        )
        for worker_type in assigned
    ]
