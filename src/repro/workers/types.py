"""Worker archetypes and per-worker behavioural profiles.

The paper distinguishes five worker types (§2.1):

1. *Reliable* — deep domain knowledge, almost always correct;
2. *Normal* — mostly correct with occasional mistakes;
3. *Sloppy* — little knowledge, frequently wrong but unintentionally so;
4. *Uniform spammers* — give the same answer to every question;
5. *Random spammers* — give random answers.

A :class:`WorkerProfile` captures one concrete worker's behaviour in the
per-label two-coin parameterisation of Appendix A: a per-label
*sensitivity* (probability of including a label that is truly present) and
an expected number of *false-positive* labels per answer (which, for a
candidate pool of size ``C``, corresponds to per-label specificity
``1 - fp_mean / (C - |Y|)``).  Spammer profiles carry their degenerate
behaviour explicitly (a fixed answer set, or a label-blind inclusion rate).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

import numpy as np

from repro.errors import ValidationError


class WorkerType(str, enum.Enum):
    """The five archetypes of paper §2.1."""

    RELIABLE = "reliable"
    NORMAL = "normal"
    SLOPPY = "sloppy"
    UNIFORM_SPAMMER = "uniform_spammer"
    RANDOM_SPAMMER = "random_spammer"

    @property
    def is_spammer(self) -> bool:
        """True for the two faulty archetypes."""
        return self in (WorkerType.UNIFORM_SPAMMER, WorkerType.RANDOM_SPAMMER)

    @property
    def is_honest(self) -> bool:
        """True for workers whose answers track the true labels at all."""
        return not self.is_spammer


#: Default (sensitivity range, false-positive-count range) per honest type.
#: Sensitivity ranges follow the qualitative ordering of Appendix A / Fig 10;
#: false-positive counts are expected *extra* labels per answer.
TYPE_PARAMETER_RANGES = {
    WorkerType.RELIABLE: ((0.85, 0.98), (0.0, 0.4)),
    WorkerType.NORMAL: ((0.68, 0.86), (0.2, 0.9)),
    WorkerType.SLOPPY: ((0.35, 0.60), (0.8, 2.2)),
}

#: Probability that an honest worker *substitutes* a recognised true label
#: with a confusable neighbour (e.g. tagging "sun" as "sky").  Substitution
#: couples false positives to the truth of correlated labels — the error
#: structure that breaks per-label independence assumptions and motivates
#: CPA's joint treatment of labels (paper §1, §2.1).
TYPE_CONFUSION_RANGES = {
    WorkerType.RELIABLE: (0.02, 0.06),
    WorkerType.NORMAL: (0.08, 0.18),
    WorkerType.SLOPPY: (0.18, 0.32),
}

#: Attention budgets: honest workers list at most this many labels per
#: answer, so items with rich label sets get systematically *incomplete*
#: answers ("partially-complete", paper §1) — a missing label is then weak
#: evidence of absence, exactly the effect the paper warns per-label
#: decompositions mishandle.
TYPE_BUDGET_RANGES = {
    WorkerType.RELIABLE: (4, 8),
    WorkerType.NORMAL: (3, 6),
    WorkerType.SLOPPY: (2, 4),
}

#: Per-label jitter (std. dev.) applied around a worker's base sensitivity,
#: modelling per-label expertise differences (requirement R2 / Fig 9).
TYPE_SENSITIVITY_JITTER = {
    WorkerType.RELIABLE: 0.03,
    WorkerType.NORMAL: 0.08,
    WorkerType.SLOPPY: 0.12,
}


@dataclass(frozen=True)
class WorkerProfile:
    """Concrete behaviour parameters for one worker.

    Attributes
    ----------
    worker_type:
        The archetype this profile instantiates.
    sensitivity:
        Per-label inclusion probability for truly-present labels
        (length-``C``; meaningful for honest types only).
    fp_mean:
        Expected number of false-positive labels added per answer
        (honest types only).
    confusion_prob:
        Probability of substituting a recognised true label with a
        confusable neighbour (honest types only).
    attention_budget:
        Maximum labels the worker lists per answer (0 = unlimited).
    fixed_answer:
        The constant answer of a uniform spammer (``None`` otherwise).
    random_inclusion:
        Per-label, truth-blind inclusion probability of a random spammer
        (0 otherwise).
    """

    worker_type: WorkerType
    sensitivity: np.ndarray = field(default_factory=lambda: np.zeros(0))
    fp_mean: float = 0.0
    confusion_prob: float = 0.0
    attention_budget: int = 0
    fixed_answer: Optional[FrozenSet[int]] = None
    random_inclusion: float = 0.0

    def __post_init__(self) -> None:
        if self.worker_type is WorkerType.UNIFORM_SPAMMER:
            if not self.fixed_answer:
                raise ValidationError("uniform spammer requires a fixed answer set")
        elif self.worker_type is WorkerType.RANDOM_SPAMMER:
            if not 0 < self.random_inclusion < 1:
                raise ValidationError("random spammer inclusion must lie in (0, 1)")
        else:
            sens = np.asarray(self.sensitivity, dtype=float)
            if sens.ndim != 1 or sens.size == 0:
                raise ValidationError("honest profiles need a per-label sensitivity vector")
            if np.any(sens < 0) or np.any(sens > 1):
                raise ValidationError("sensitivities must lie in [0, 1]")
            if self.fp_mean < 0:
                raise ValidationError("fp_mean must be non-negative")
            if not 0.0 <= self.confusion_prob <= 1.0:
                raise ValidationError("confusion_prob must lie in [0, 1]")
            if self.attention_budget < 0:
                raise ValidationError("attention_budget must be non-negative")

    @property
    def n_labels(self) -> int:
        """Size of the label space the profile was built for."""
        if self.worker_type is WorkerType.UNIFORM_SPAMMER:
            return max(self.fixed_answer) + 1 if self.fixed_answer else 0
        return int(np.asarray(self.sensitivity).size)


def sample_profile(
    worker_type: WorkerType,
    n_labels: int,
    rng: np.random.Generator,
    *,
    typical_answer_size: float = 2.0,
) -> WorkerProfile:
    """Draw a random :class:`WorkerProfile` of the given archetype.

    ``typical_answer_size`` calibrates spammer answer sizes so that faulty
    answers are not trivially identifiable by length alone.
    """
    if n_labels <= 0:
        raise ValidationError("n_labels must be positive")
    if worker_type is WorkerType.UNIFORM_SPAMMER:
        size = max(1, int(round(rng.uniform(1.0, max(1.0, typical_answer_size)))))
        labels = rng.choice(n_labels, size=min(size, n_labels), replace=False)
        return WorkerProfile(
            worker_type=worker_type, fixed_answer=frozenset(int(lab) for lab in labels)
        )
    if worker_type is WorkerType.RANDOM_SPAMMER:
        inclusion = min(0.9, max(1e-3, typical_answer_size / n_labels))
        return WorkerProfile(worker_type=worker_type, random_inclusion=float(inclusion))

    (sens_lo, sens_hi), (fp_lo, fp_hi) = TYPE_PARAMETER_RANGES[worker_type]
    base = rng.uniform(sens_lo, sens_hi)
    jitter = TYPE_SENSITIVITY_JITTER[worker_type]
    sensitivity = np.clip(base + rng.normal(0.0, jitter, size=n_labels), 0.05, 0.995)
    fp_mean = rng.uniform(fp_lo, fp_hi)
    conf_lo, conf_hi = TYPE_CONFUSION_RANGES[worker_type]
    budget_lo, budget_hi = TYPE_BUDGET_RANGES[worker_type]
    return WorkerProfile(
        worker_type=worker_type,
        sensitivity=sensitivity,
        fp_mean=float(fp_mean),
        confusion_prob=float(rng.uniform(conf_lo, conf_hi)),
        attention_budget=int(rng.integers(budget_lo, budget_hi + 1)),
    )
