"""Multi-node lane transport: framing protocol + worker daemon core.

The lane contract of :class:`~repro.utils.parallel.Executor`
(``broadcast`` / ``map_on`` / ``map_tasks``) is location-transparent: a
remote lane only needs the same three operations over a network channel
plus failure handling (DESIGN.md §6 "Remote lanes").  This module
provides the channel and the worker side of that pair:

* :class:`Channel` — length-prefixed pickle framing over a connected
  TCP socket.  Every frame is an 8-byte big-endian unsigned length
  followed by exactly that many pickle bytes; a peer that disappears
  mid-frame surfaces as :class:`~repro.errors.TransportError`, never as
  a truncated unpickle.
* :class:`PayloadRegistry` — the worker-side broadcast store: the same
  bounded LRU over resident payloads as the process-pool lanes
  (:data:`repro.utils.parallel._WORKER_PAYLOAD_CAP`), so a long stream
  of per-batch broadcasts cannot grow a daemon's memory without bound.
  An evicted key is reported to the client as ``("stale", key)`` and the
  client re-broadcasts from its retained copy — eviction is a
  performance event, not an error.
* :class:`WorkerServer` — the daemon loop: accept connections, serve
  framed requests against one shared registry.  ``python -m
  repro.worker --listen host:port`` (:mod:`repro.worker`) runs one as a
  standalone process; the loopback test harness runs the same class on
  a background thread in-process.

Wire protocol (client → worker request, worker → client reply):

==================================  ======================================
request                             reply
==================================  ======================================
``("ping",)``                       ``("ok", "pong")``
``("broadcast", key, blob)``        ``("ok", None)`` (``blob`` = payload
                                    pickled separately by the client, so
                                    re-broadcasts reuse the same bytes)
``("release", key)``                ``("ok", None)`` (missing key: no-op)
``("map_on", key, func, tasks)``    ``("ok", [func(payload, t)...])`` or
                                    ``("stale", key)`` if evicted/unknown
``("map_tasks", func, tasks)``      ``("ok", [func(t)...])``
``("chunk_probe", [digest...])``    ``("ok", [missing digest...])``
``("chunk_put", digest, data)``     ``("ok", None)`` (digest-verified)
``("chunk_assemble", key,           ``("ok", None)`` or ``("missing",
  [digest...])``                    [digest...])`` if chunks were evicted
``("shutdown",)``                   ``("ok", None)``, then the daemon
                                    stops accepting and exits
==================================  ======================================

The three ``chunk_*`` ops form the content-addressed broadcast store
(DESIGN.md §6 "Elastic fleet"): a large payload is split client-side
into content-hashed chunks, the daemon reports which digests it already
holds, and only the missing chunks cross the wire before ``assemble``
rebuilds the payload under its key.  A daemon whose *payload* LRU
evicted a key but whose chunk index still holds the bytes is re-armed
for the price of a probe instead of the full blob.

A task that raises on the worker replies ``("err", exception,
traceback_text)``; the client re-raises the exception (or
:class:`~repro.errors.WorkerFailure` when it does not pickle) — a *task*
failure is the caller's bug and must not be confused with a *lane*
failure, which is what the retry/exclusion machinery of
:class:`~repro.utils.parallel.RemoteExecutor` handles.
"""

from __future__ import annotations

import hashlib
import pickle
import socket
import struct
import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import TransportError, ValidationError, WorkerFailure

#: frame header: 8-byte big-endian unsigned payload length.
_HEADER = struct.Struct(">Q")

#: refuse frames beyond this many bytes — a corrupt or misaligned header
#: must fail loudly instead of attempting a terabyte allocation.
MAX_FRAME_BYTES = 1 << 36  # 64 GiB

#: resident payloads a worker daemon keeps at once; mirrors the process
#: pool's worker-side LRU cap (``parallel._WORKER_PAYLOAD_CAP``).
DEFAULT_PAYLOAD_CAP = 8

#: chunk size for the content-addressed broadcast store.  4 MiB keeps
#: the per-chunk round-trip overhead (one digest + one frame header) in
#: the noise at 75 MB payloads while still giving the dedup index
#: enough granularity that a mostly-unchanged payload reuses most bytes.
DEFAULT_BROADCAST_CHUNK_BYTES = 4 << 20

#: worker-side chunk cache budget (bytes, not entries — chunks are
#: uniform-cost only within one payload, not across payload sizes).
DEFAULT_CHUNK_CACHE_BYTES = 256 << 20


def chunk_digest(data: bytes) -> bytes:
    """Content address of one chunk (blake2b-128: fast, no deps)."""
    return hashlib.blake2b(data, digest_size=16).digest()


def split_chunks(blob: bytes, chunk_bytes: int) -> List[bytes]:
    """Split ``blob`` into fixed-size content chunks (last may be short)."""
    if chunk_bytes < 1:
        raise ValidationError("chunk size must be at least 1 byte")
    return [blob[i : i + chunk_bytes] for i in range(0, len(blob), chunk_bytes)]


def dumps(obj: object) -> bytes:
    """Pickle ``obj`` the way every frame body is pickled."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def parse_address(text: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; loud on malformed input."""
    host, sep, port_text = str(text).rpartition(":")
    if not sep or not host:
        raise ValidationError(
            f"worker address {text!r} must look like 'host:port'"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValidationError(
            f"worker address {text!r} has a non-integer port"
        ) from exc
    if not 0 <= port <= 65535:
        raise ValidationError(f"worker address {text!r} port out of range")
    return host, port


def format_address(host: str, port: int) -> str:
    return f"{host}:{port}"


class Channel:
    """Length-prefixed pickle frames over a connected socket.

    Byte counters (``sent_bytes`` / ``received_bytes``) record the exact
    frame bytes that crossed the socket — deterministic, so the transport
    benchmark can gate on them (``benchmarks/bench_kernels``).
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self.sent_bytes = 0
        self.received_bytes = 0
        self._closed = False
        # bytes read off the socket but not yet consumed as a full frame.
        # A deadline that expires mid-frame leaves the partial frame here,
        # so a timeout never desynchronises the stream: the next recv()
        # resumes exactly where the last one stopped (DESIGN.md §6).
        self._rx = bytearray()

    # ------------------------------------------------------------- framing

    def send(self, message: object) -> None:
        """Frame and send one message; :class:`TransportError` on failure."""
        body = dumps(message)
        self.send_raw(_HEADER.pack(len(body)) + body)

    def send_raw(self, data: bytes) -> None:
        """Send pre-framed bytes (the fault-injection seam uses this)."""
        if self._closed:
            raise TransportError("channel is closed")
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        self.sent_bytes += len(data)

    def recv(self, timeout: Optional[float] = None) -> Any:
        """Receive one framed message; :class:`TransportError` on EOF/trunc.

        ``timeout`` bounds the *whole frame*, measured from this call:
        expiry raises :class:`LaneTimeout` (a :class:`TransportError`)
        instead of hanging on a peer that accepted but never replies.
        ``timeout=0`` is a non-blocking poll: it returns a frame only if
        one is already fully buffered/readable.  Partial progress is kept
        in an internal buffer, so after a timeout the channel is still
        aligned and a later recv() continues the same frame.
        """
        poll = timeout is not None and timeout <= 0
        deadline = None if timeout is None or poll else time.monotonic() + timeout
        self._fill(_HEADER.size, expect_eof=False, deadline=deadline, poll=poll)
        (length,) = _HEADER.unpack(bytes(self._rx[: _HEADER.size]))
        if length > MAX_FRAME_BYTES:
            raise TransportError(
                f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte "
                "cap; stream is corrupt or misaligned"
            )
        self._fill(
            _HEADER.size + length, expect_eof=False, deadline=deadline, poll=poll
        )
        return self._consume_frame(length)

    def recv_or_eof(self) -> Tuple[bool, Any]:
        """Like :meth:`recv`, but a clean EOF *between* frames returns
        ``(False, None)`` instead of raising — the worker's accept loop
        treats a client hanging up between requests as a normal goodbye.
        Mid-frame EOF still raises (a truncated frame is never normal)."""
        if not self._fill(_HEADER.size, expect_eof=True):
            return False, None
        (length,) = _HEADER.unpack(bytes(self._rx[: _HEADER.size]))
        if length > MAX_FRAME_BYTES:
            raise TransportError(
                f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
            )
        self._fill(_HEADER.size + length, expect_eof=False)
        return True, self._consume_frame(length)

    def _consume_frame(self, length: int) -> Any:
        """Pop one fully-buffered frame (header + ``length`` body bytes)."""
        body = bytes(self._rx[_HEADER.size : _HEADER.size + length])
        del self._rx[: _HEADER.size + length]
        self.received_bytes += _HEADER.size + length
        return pickle.loads(body)

    def _fill(
        self,
        n: int,
        expect_eof: bool,
        deadline: Optional[float] = None,
        poll: bool = False,
    ) -> bool:
        """Buffer socket bytes until at least ``n`` are held.

        Nothing is ever *consumed* here — a deadline that expires between
        a frame's header and its body must not lose the parse position,
        so frames are only popped from the buffer once complete
        (:meth:`_consume_frame`).  Returns ``False`` on a clean EOF with
        an empty buffer when ``expect_eof`` (a goodbye between frames);
        every other shortfall raises.
        """
        while len(self._rx) < n:
            if self._closed:
                raise TransportError("channel is closed")
            timeout_value: Optional[float] = None
            if poll:
                timeout_value = 0.0
            elif deadline is not None:
                timeout_value = deadline - time.monotonic()
                if timeout_value <= 0:
                    raise LaneTimeout(
                        f"deadline expired awaiting a frame "
                        f"({len(self._rx)}/{n} bytes buffered)"
                    )
            try:
                if timeout_value is not None:
                    self._sock.settimeout(timeout_value)
                try:
                    piece = self._sock.recv(1 << 20)
                finally:
                    if timeout_value is not None:
                        try:
                            self._sock.settimeout(None)
                        except OSError:
                            pass  # closed under us; the recv result decides
            except (TimeoutError, BlockingIOError, socket.timeout) as exc:
                raise LaneTimeout(
                    f"peer sent no complete frame in time "
                    f"({len(self._rx)}/{n} bytes buffered)"
                ) from exc
            except OSError as exc:
                raise TransportError(f"recv failed: {exc}") from exc
            if not piece:
                if expect_eof and not self._rx:
                    return False  # clean close on a frame boundary
                raise TransportError(
                    f"connection closed mid-frame ({len(self._rx)}/{n} bytes)"
                )
            self._rx += piece
        return True

    # ----------------------------------------------------------- lifecycle

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass


def connect(host: str, port: int, timeout: float = 5.0) -> Channel:
    """Open a TCP connection to a worker daemon and wrap it in a Channel.

    The connect itself is bounded by ``timeout``; the established socket
    then blocks indefinitely *by default* — a killed daemon closes its
    sockets, which surfaces as EOF.  A daemon that is hung rather than
    dead never closes anything, which is why :meth:`Channel.recv` takes
    a per-call deadline: liveness is the caller's policy
    (``CPAConfig.request_timeout``), not the socket's.
    """
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise TransportError(
            f"cannot connect to worker {format_address(host, port)}: {exc}"
        ) from exc
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return Channel(sock)


def request(
    channel: Channel, message: object, timeout: Optional[float] = None
) -> Any:
    """One request/reply round-trip, unwrapping the reply envelope.

    ``("ok", value)`` returns ``value``; ``("stale", key)`` raises
    :class:`StaleBroadcast` (the client re-broadcasts and retries);
    ``("err", exc, tb)`` re-raises the worker-side exception.  Anything
    else is a framing/protocol bug and raises :class:`TransportError`.
    ``timeout`` bounds the reply frame (see :meth:`Channel.recv`): a
    peer that accepted the request but never answers — or answers with a
    partial frame that stalls — surfaces as :class:`LaneTimeout`.
    """
    channel.send(message)
    reply = channel.recv(timeout=timeout)
    return unwrap_reply(reply)


def unwrap_reply(reply: Any) -> Any:
    """Envelope violations (wrong tag, wrong arity) raise
    :class:`TransportError` — the *lane* is broken or version-skewed, and
    the client treats it like any other lane failure, never as a task
    result or a task error."""
    if not isinstance(reply, tuple) or not reply:
        raise TransportError(f"malformed reply frame: {reply!r}")
    tag = reply[0]
    if tag == "ok" and len(reply) == 2:
        return reply[1]
    if tag == "stale" and len(reply) == 2:
        raise StaleBroadcast(reply[1])
    if tag == "missing" and len(reply) == 2:
        raise ChunksMissing(reply[1])
    if tag == "err" and len(reply) == 3:
        _, exc, tb_text = reply
        if isinstance(exc, BaseException):
            raise exc from WorkerFailure(
                "remote worker raised; remote traceback follows", tb_text
            )
        raise WorkerFailure(f"remote worker raised: {exc}", tb_text)
    raise TransportError(f"malformed reply envelope: {reply!r}")


class LaneTimeout(TransportError):
    """A per-request deadline expired before the peer's reply completed.

    The channel itself stays aligned (partial progress is buffered in
    :class:`Channel`), so the caller may keep the connection and poll for
    the late reply — the lane-health machinery in
    :class:`~repro.utils.parallel.RemoteExecutor` marks such a lane
    *suspect* and speculatively re-dispatches its tasks elsewhere.
    """


class StaleBroadcast(Exception):
    """A worker no longer holds the addressed broadcast key (LRU-evicted
    or a fresh/replacement daemon).  Internal control flow — the client
    executor catches it, re-broadcasts from its retained copy, and
    retries; it never escapes to callers."""

    def __init__(self, key: str) -> None:
        super().__init__(key)
        self.key = key


class ChunksMissing(Exception):
    """A worker's ``chunk_assemble`` found some chunks evicted between
    the probe and the assemble.  Internal control flow — the client
    re-ships the named chunks (bounded: one fallback, no loop)."""

    def __init__(self, digests: Sequence[bytes]) -> None:
        super().__init__(f"{len(digests)} chunk(s) missing")
        self.digests = tuple(digests)


class LaneHealth:
    """The live → suspect → excluded state machine of one remote peer.

    One instance tracks one daemon as seen by one client: *live* (usable),
    *suspect* (a per-request deadline expired with a reply still owed;
    queries are routed elsewhere until ``suspect_deadline``), *excluded*
    (terminal — the reconnect budget ran out).  The transitions and the
    bounded reconnect budget live here so every consumer agrees on them:
    :class:`~repro.utils.parallel.RemoteExecutor` lanes drive compute
    fan-out through it, and the serving fleet router
    (:class:`repro.fleet.FleetRouter`) drives read-replica failover
    through the very same machine.
    """

    LIVE = "live"
    SUSPECT = "suspect"
    EXCLUDED = "excluded"

    __slots__ = ("state", "reconnects_left", "suspect_deadline")

    def __init__(self, reconnects: int = 1) -> None:
        self.state = LaneHealth.LIVE
        self.reconnects_left = int(reconnects)
        #: monotonic deadline after which a suspect is reconnected or
        #: excluded; 0.0 whenever the peer is not suspect.
        self.suspect_deadline = 0.0

    @property
    def live(self) -> bool:
        return self.state == LaneHealth.LIVE

    @property
    def suspect(self) -> bool:
        return self.state == LaneHealth.SUSPECT

    @property
    def excluded(self) -> bool:
        return self.state == LaneHealth.EXCLUDED

    def mark_suspect(self, deadline: float) -> None:
        """A reply deadline expired: stop routing new work to the peer."""
        self.state = LaneHealth.SUSPECT
        self.suspect_deadline = float(deadline)

    def recover(self) -> None:
        """The peer answered (or reconnected): back to *live*."""
        self.state = LaneHealth.LIVE
        self.suspect_deadline = 0.0

    def exclude(self) -> None:
        """Terminal: the peer leaves the rotation for good."""
        self.state = LaneHealth.EXCLUDED
        self.suspect_deadline = 0.0

    def consume_reconnect(self) -> bool:
        """Spend one reconnect attempt; ``False`` when the budget is dry
        (the caller should :meth:`exclude`)."""
        if self.reconnects_left <= 0:
            return False
        self.reconnects_left -= 1
        return True


# ------------------------------------------------------------------ worker


class PayloadRegistry:
    """Bounded LRU of broadcast payloads held by one worker daemon.

    Same eviction rule as the process-pool lanes: re-addressing a payload
    moves it to the back; exceeding the cap drops the front (oldest).
    Thread-safe — a daemon serves each client connection on its own
    thread against this one shared registry.

    Alongside the (count-capped) payload LRU the registry keeps a
    *byte*-capped chunk index: content-addressed raw chunks from the
    chunked broadcast protocol, keyed by blake2b-128 digest.  The two
    caches have independent lifetimes on purpose — evicting a payload
    does not drop its chunks, which is exactly what lets a re-broadcast
    after payload eviction cost a probe instead of a re-ship.
    """

    def __init__(
        self,
        cap: int = DEFAULT_PAYLOAD_CAP,
        chunk_cache_bytes: int = DEFAULT_CHUNK_CACHE_BYTES,
    ) -> None:
        if cap < 1:
            raise ValidationError("payload cap must be at least 1")
        if chunk_cache_bytes < 0:
            raise ValidationError("chunk cache budget cannot be negative")
        self.cap = int(cap)
        self.chunk_cache_bytes = int(chunk_cache_bytes)
        self._payloads: Dict[str, object] = {}
        self._chunks: Dict[bytes, bytes] = {}  # dict order = LRU order
        self._chunk_bytes_held = 0
        self._lock = threading.Lock()

    def put(self, key: str, payload: object) -> None:
        with self._lock:
            self._payloads.pop(key, None)  # re-broadcast refreshes recency
            self._payloads[key] = payload
            while len(self._payloads) > self.cap:
                self._payloads.pop(next(iter(self._payloads)))

    def get(self, key: str) -> Any:
        """The payload under ``key`` (LRU-touched), or raise ``KeyError``."""
        with self._lock:
            payload = self._payloads.pop(key)
            self._payloads[key] = payload
            return payload

    def release(self, key: str) -> None:
        with self._lock:
            self._payloads.pop(key, None)

    def keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._payloads)

    def __len__(self) -> int:
        with self._lock:
            return len(self._payloads)

    def drop_payloads(self) -> None:
        """Clear the payload LRU but keep the chunk index — the bench and
        tests use this to model a daemon that lost its armed payloads
        (restart with a warm peer cache, payload-cap churn) and must be
        re-armed from chunks alone."""
        with self._lock:
            self._payloads.clear()

    # ----------------------------------------------------- chunk index

    def put_chunk(self, digest: bytes, data: bytes) -> None:
        """Store one content-addressed chunk; digest-verified on arrival
        so a corrupt frame can never poison the content address space."""
        if chunk_digest(data) != digest:
            raise ValidationError(
                "chunk data does not match its digest; refusing to store"
            )
        with self._lock:
            held = self._chunks.pop(digest, None)
            if held is not None:
                self._chunk_bytes_held -= len(held)
            self._chunks[digest] = data
            self._chunk_bytes_held += len(data)
            # byte-capped LRU; never evict the chunk just stored, else an
            # undersized cache would turn every assemble into a livelock
            while (
                self._chunk_bytes_held > self.chunk_cache_bytes
                and len(self._chunks) > 1
            ):
                oldest = next(iter(self._chunks))
                self._chunk_bytes_held -= len(self._chunks.pop(oldest))

    def missing_chunks(self, digests: Sequence[bytes]) -> List[bytes]:
        """Digests from ``digests`` not held here; held ones are
        LRU-touched so a probe pins what the assemble is about to use."""
        missing: List[bytes] = []
        with self._lock:
            for digest in digests:
                data = self._chunks.pop(digest, None)
                if data is None:
                    missing.append(digest)
                else:
                    self._chunks[digest] = data  # refresh recency
        return missing

    def assemble(self, key: str, digests: Sequence[bytes]) -> Tuple[bytes, ...]:
        """Rebuild the payload under ``key`` from held chunks.

        Returns the (possibly empty) tuple of digests still missing; on
        any miss nothing is stored, and the client re-ships those chunks.
        """
        with self._lock:
            pieces: List[bytes] = []
            missing: List[bytes] = []
            for digest in digests:
                data = self._chunks.pop(digest, None)
                if data is None:
                    missing.append(digest)
                    continue
                self._chunks[digest] = data  # refresh recency
                pieces.append(data)
            if missing:
                return tuple(missing)
            payload = pickle.loads(b"".join(pieces))
            self._payloads.pop(key, None)
            self._payloads[key] = payload
            while len(self._payloads) > self.cap:
                self._payloads.pop(next(iter(self._payloads)))
            return ()

    def chunk_count(self) -> int:
        with self._lock:
            return len(self._chunks)


def handle_request(message: Any, registry: PayloadRegistry) -> Tuple:
    """Execute one request against ``registry``; returns the reply tuple.

    Pure function of (message, registry) — the socket server and the
    in-process harness share it, so protocol behaviour cannot drift
    between deployment shapes.
    """
    try:
        if not isinstance(message, tuple) or not message:
            raise ValidationError(f"malformed request frame: {message!r}")
        op = message[0]
        if op == "ping":
            return ("ok", "pong")
        if op == "broadcast":
            _, key, blob = message
            registry.put(key, pickle.loads(blob))
            return ("ok", None)
        if op == "release":
            registry.release(message[1])
            return ("ok", None)
        if op == "map_on":
            _, key, func, tasks = message
            try:
                payload = registry.get(key)
            except KeyError:
                return ("stale", key)
            return ("ok", [func(payload, task) for task in tasks])
        if op == "map_tasks":
            _, func, tasks = message
            return ("ok", [func(task) for task in tasks])
        if op == "chunk_probe":
            _, digests = message
            return ("ok", registry.missing_chunks(digests))
        if op == "chunk_put":
            _, digest, data = message
            registry.put_chunk(digest, data)
            return ("ok", None)
        if op == "chunk_assemble":
            _, key, digests = message
            missing = registry.assemble(key, digests)
            if missing:
                return ("missing", list(missing))
            return ("ok", None)
        if op == "shutdown":
            return ("ok", None)
        raise ValidationError(f"unknown request op {op!r}")
    except Exception as exc:  # noqa: BLE001 - forwarded to the client
        tb_text = traceback.format_exc()
        try:
            dumps(exc)  # only ship exceptions that survive pickling
            return ("err", exc, tb_text)
        except Exception:  # noqa: BLE001 - unpicklable error ships as repr
            return ("err", repr(exc), tb_text)


class WorkerServer:
    """TCP worker daemon: one shared payload registry, framed requests.

    Each accepted connection is served on its own daemon thread, so a
    client executor can keep one persistent channel per lane while the
    test harness pokes the same daemon from a second connection.
    ``kill()`` closes the listening socket *and* every live connection
    mid-flight — the deterministic stand-in for a crashed node that the
    chaos tests drive.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        payload_cap: int = DEFAULT_PAYLOAD_CAP,
        chunk_cache_bytes: int = DEFAULT_CHUNK_CACHE_BYTES,
    ) -> None:
        self.registry = PayloadRegistry(payload_cap, chunk_cache_bytes)
        self._listener = socket.create_server((host, port))
        # accept() with a short timeout: closing a socket does not wake a
        # thread blocked in accept() on Linux, so the loop polls the
        # shutdown flag instead of relying on close-to-interrupt.
        self._listener.settimeout(0.1)
        self.host, self.port = self._listener.getsockname()[:2]
        self.address = format_address(self.host, self.port)
        self._lock = threading.Lock()
        self._connections: List[socket.socket] = []
        self._threads: List[threading.Thread] = []
        self._shutdown = threading.Event()
        #: set when the accept loop has fully exited — only then is the
        #: port actually refusing connections (a thread blocked inside
        #: ``accept(2)`` keeps the kernel socket alive past ``close()``).
        self._accept_done = threading.Event()
        self._accept_done.set()  # no loop running yet
        self._accept_thread: Optional[threading.Thread] = None
        #: requests served, by op — the harness asserts re-broadcasts here.
        self.op_counts: Dict[str, int] = {}

    # ------------------------------------------------------------- serving

    def serve_forever(self) -> None:
        """Accept and serve until :meth:`kill`/:meth:`close`/shutdown op."""
        self._accept_done.clear()
        try:
            while not self._shutdown.is_set():
                try:
                    conn, _ = self._listener.accept()
                except TimeoutError:
                    continue  # poll the shutdown flag
                except OSError:
                    break  # listener closed
                conn.settimeout(None)  # accepted sockets inherit the timeout
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                with self._lock:
                    if self._shutdown.is_set():
                        conn.close()
                        break
                    self._connections.append(conn)
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                )
                # prune finished handlers: a long-lived daemon serves many
                # short-lived connections and must not grow without bound
                with self._lock:
                    self._threads = [t for t in self._threads if t.is_alive()]
                    self._threads.append(thread)
                thread.start()
        finally:
            self._close_listener()
            self._accept_done.set()

    def serve_in_thread(self) -> "WorkerServer":
        """Run the accept loop on a background daemon thread (harness mode)."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        self._accept_thread.start()
        return self

    def _make_channel(self, conn: socket.socket) -> Channel:
        """Seam for the test harness: wrap accepted sockets (e.g. to
        inject stalls) without touching the serve loop."""
        return Channel(conn)

    def handle(self, message: Any) -> Tuple:
        """Dispatch one request; the seam subclasses extend with new ops.

        The base daemon delegates everything to :func:`handle_request`;
        :class:`repro.serve.ConsensusServer` overrides this to serve its
        query/ingest ops first and fall back here for the shared protocol
        (ping, chunk store, shutdown), so the serving daemon inherits the
        broadcast/chunk machinery unchanged.
        """
        return handle_request(message, self.registry)

    def _serve_connection(self, conn: socket.socket) -> None:
        channel = self._make_channel(conn)
        try:
            while not self._shutdown.is_set():
                try:
                    alive, message = channel.recv_or_eof()
                except TransportError:
                    break  # truncated frame or reset: drop the connection
                if not alive:
                    break
                op = message[0] if isinstance(message, tuple) and message else "?"
                # one handler thread per connection shares this counter:
                # read-modify-write must not interleave (lost increments)
                with self._lock:
                    self.op_counts[op] = self.op_counts.get(op, 0) + 1
                reply = self.handle(message)
                if op == "shutdown":
                    # stop accepting *before* acknowledging, so a client
                    # that saw the reply can rely on the port being gone;
                    # the accept loop holds the kernel socket alive until
                    # it exits, so wait for it, not just for close()
                    self._shutdown.set()
                    self._close_listener()
                    self._accept_done.wait(timeout=2.0)
                try:
                    channel.send(reply)
                except TransportError:
                    break
                if op == "shutdown":
                    break
        finally:
            channel.close()
            with self._lock:
                if conn in self._connections:
                    self._connections.remove(conn)

    # ----------------------------------------------------------- lifecycle

    def _close_listener(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass

    def kill(self) -> None:
        """Simulate a node crash: drop the listener and every connection
        immediately, mid-frame if one is in flight.  Idempotent."""
        self._shutdown.set()
        self._close_listener()
        # deterministic aftermath: once kill() returns, the port refuses
        self._accept_done.wait(timeout=2.0)
        with self._lock:
            connections, self._connections = self._connections, []
        for conn in connections:
            try:
                # RST rather than FIN-with-grace: a crash, not a goodbye.
                conn.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        """Graceful stop; idempotent, shares the kill path after draining."""
        self.kill()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    def __enter__(self) -> "WorkerServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
