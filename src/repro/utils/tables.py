"""Plain-text table rendering for experiment reports.

The experiment modules print tables mirroring the paper's (Table 3, 4, 5 and
the per-figure series).  This renderer keeps the output terminal-friendly
and diffable: fixed-width columns, a header rule, and stable float
formatting.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ValidationError


def _render_cell(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_format: str = ".3f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Floats are formatted with ``float_format``; all other values via
    ``str``.  Raises :class:`ValidationError` on ragged rows so layout bugs
    surface immediately instead of producing shifted columns.
    """
    headers = [str(h) for h in headers]
    rendered: list[list[str]] = []
    for row in rows:
        cells = [_render_cell(value, float_format) for value in row]
        if len(cells) != len(headers):
            raise ValidationError(
                f"row has {len(cells)} cells but table has {len(headers)} columns"
            )
        rendered.append(cells)

    widths = [len(h) for h in headers]
    for cells in rendered:
        for col, cell in enumerate(cells):
            widths[col] = max(widths[col], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(cells) for cells in rendered)
    return "\n".join(parts)


def format_kv_block(pairs: Sequence[tuple[str, object]], *, indent: int = 2) -> str:
    """Render key/value pairs as an aligned block (used in summaries)."""
    if not pairs:
        return ""
    width = max(len(str(key)) for key, _ in pairs)
    pad = " " * indent
    return "\n".join(f"{pad}{str(k).ljust(width)} : {v}" for k, v in pairs)
