"""Numerical kernels used by the CPA inference engine and the baselines.

The functions here implement the expectation identities of the paper's
Appendix B (digamma expectations of Dirichlet/Beta variables and the
stick-breaking expansion of truncated Chinese-Restaurant-Process weights),
plus generic log-space normalisation helpers.  Everything operates on numpy
arrays and is vectorised over leading axes.
"""

from __future__ import annotations

import numpy as np
from scipy.special import digamma

from repro.errors import ValidationError

# Floor applied to probabilities before taking logarithms; keeps the
# variational updates finite when a component collapses to zero mass.
EPS = 1e-12


def _as_floating(a: np.ndarray) -> np.ndarray:
    """View ``a`` as a floating array, preserving float32/float64 inputs.

    Integer/bool inputs are promoted to float64 (the historical behaviour);
    floating inputs keep their dtype so the ``CPAConfig.dtype`` policy
    survives the normalisation helpers.
    """
    a = np.asarray(a)
    if not np.issubdtype(a.dtype, np.floating):
        return a.astype(np.float64)
    return a


def logsumexp(a: np.ndarray, axis: int = -1, keepdims: bool = False) -> np.ndarray:
    """Numerically stable ``log(sum(exp(a)))`` along ``axis``.

    Unlike :func:`scipy.special.logsumexp` this keeps the semantics needed by
    the inference loop: all-``-inf`` rows reduce to ``-inf`` without warnings.
    """
    a = _as_floating(a)
    amax = np.max(a, axis=axis, keepdims=True)
    amax = np.where(np.isfinite(amax), amax, 0.0)
    with np.errstate(divide="ignore"):
        out = np.log(np.sum(np.exp(a - amax), axis=axis, keepdims=True)) + amax
    if not keepdims:
        out = np.squeeze(out, axis=axis)
    return out


def log_normalize_rows(log_weights: np.ndarray) -> np.ndarray:
    """Normalise un-normalised log weights row-wise into probabilities.

    Rows that are entirely ``-inf`` normalise to the uniform distribution —
    an explicit, documented fallback used when an item or worker carries no
    evidence at all (e.g. an empty batch in online learning).
    """
    log_weights = _as_floating(log_weights)
    norm = logsumexp(log_weights, axis=-1, keepdims=True)
    with np.errstate(invalid="ignore"):
        probs = np.exp(log_weights - norm)
    bad = ~np.isfinite(norm[..., 0])
    if np.any(bad):
        probs[bad] = 1.0 / log_weights.shape[-1]
    return probs


def softmax_rows(scores: np.ndarray) -> np.ndarray:
    """Row-wise softmax; alias of :func:`log_normalize_rows` for raw scores."""
    return log_normalize_rows(scores)


def normalize_rows(weights: np.ndarray) -> np.ndarray:
    """Normalise non-negative weights row-wise; uniform fallback for zero rows."""
    weights = _as_floating(weights)
    if np.any(weights < 0):
        raise ValidationError("normalize_rows requires non-negative weights")
    totals = weights.sum(axis=-1, keepdims=True)
    out = np.divide(weights, totals, out=np.zeros_like(weights), where=totals > 0)
    zero = totals[..., 0] <= 0
    if np.any(zero):
        out[zero] = 1.0 / weights.shape[-1]
    return out


def digamma_expectation_dirichlet(concentration: np.ndarray) -> np.ndarray:
    """``E[ln p]`` for ``p ~ Dirichlet(concentration)`` along the last axis.

    This is the Appendix-B identity
    ``E[ln p_c] = ψ(conc_c) - ψ(Σ_c conc_c)`` with ``ψ`` the digamma
    function.  Vectorised over any leading axes.
    """
    concentration = np.asarray(concentration, dtype=float)
    if np.any(concentration <= 0):
        raise ValidationError("Dirichlet concentrations must be strictly positive")
    total = concentration.sum(axis=-1, keepdims=True)
    return digamma(concentration) - digamma(total)


def stick_breaking_expectations(alpha1: np.ndarray, alpha2: np.ndarray) -> np.ndarray:
    """``E[ln w_k]`` for truncated stick-breaking weights with Beta posteriors.

    Given per-stick Beta parameters ``(alpha1_k, alpha2_k)`` for sticks
    ``k = 1..K-1`` (the K-th stick takes all remaining mass), returns the
    K-vector ``E[ln w_k] = E[ln v_k] + Σ_{j<k} E[ln(1 - v_j)]`` from the
    paper's Appendix B, where ``v_k ~ Beta(alpha1_k, alpha2_k)``.

    Parameters are arrays of length ``K-1``; the output has length ``K``.
    """
    alpha1 = _as_floating(alpha1)
    alpha2 = _as_floating(alpha2)
    if alpha1.shape != alpha2.shape or alpha1.ndim != 1:
        raise ValidationError("stick parameters must be 1-D arrays of equal length")
    if np.any(alpha1 <= 0) or np.any(alpha2 <= 0):
        raise ValidationError("Beta parameters must be strictly positive")
    total = digamma(alpha1 + alpha2)
    e_log_v = digamma(alpha1) - total
    e_log_1mv = digamma(alpha2) - total
    k = alpha1.shape[0] + 1
    out = np.empty(k, dtype=alpha1.dtype)
    cum = np.concatenate([[0.0], np.cumsum(e_log_1mv)])
    out[:-1] = e_log_v + cum[:-1]
    out[-1] = cum[-1]
    return out


def stick_breaking_weights(sticks: np.ndarray) -> np.ndarray:
    """Expand stick proportions ``v_k`` into mixture weights (paper Eq. 1).

    ``w_1 = v_1``, ``w_k = v_k Π_{j<k}(1 - v_j)``; the final component takes
    the leftover mass so the output sums to one exactly.
    """
    sticks = np.asarray(sticks, dtype=float)
    if sticks.ndim != 1:
        raise ValidationError("sticks must be a 1-D array")
    if np.any(sticks < 0) or np.any(sticks > 1):
        raise ValidationError("stick proportions must lie in [0, 1]")
    remaining = np.concatenate([[1.0], np.cumprod(1.0 - sticks)])
    weights = np.empty(sticks.shape[0] + 1, dtype=float)
    weights[:-1] = sticks * remaining[:-1]
    weights[-1] = remaining[-1]
    return weights


def clip_probability(p: np.ndarray, eps: float = EPS) -> np.ndarray:
    """Clamp probabilities into ``[eps, 1 - eps]`` for safe logarithms."""
    return np.clip(np.asarray(p, dtype=float), eps, 1.0 - eps)


def safe_log(p: np.ndarray, eps: float = EPS) -> np.ndarray:
    """``log(max(p, eps))`` — the standard guarded logarithm."""
    return np.log(np.maximum(np.asarray(p, dtype=float), eps))


def entropy_categorical(probs: np.ndarray) -> np.ndarray:
    """Shannon entropy of categorical rows (nats), treating ``0 log 0 = 0``."""
    probs = np.asarray(probs, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(probs > 0, probs * np.log(probs), 0.0)
    return -terms.sum(axis=-1)


def total_variation(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Total-variation distance ``0.5 Σ|p - q|`` along the last axis."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    return 0.5 * np.abs(p - q).sum(axis=-1)
