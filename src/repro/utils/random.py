"""Random-number plumbing.

Every stochastic component in the library takes either an integer seed or a
:class:`numpy.random.Generator`; :func:`RandomState` canonicalises both, and
:func:`spawn_rngs` derives statistically independent child generators so that
multi-stage simulations (population → truth → answers) stay reproducible
even when individual stages change how much randomness they consume.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

from repro.errors import ValidationError

Seed = Union[int, np.random.Generator, None]


def RandomState(seed: Seed = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an ``int``, or an existing generator
    (returned unchanged, so callers can thread one generator through a
    pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: Seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Children are produced via :class:`numpy.random.SeedSequence` spawning,
    which guarantees independence regardless of how much randomness each
    child consumes.
    """
    if count < 0:
        raise ValidationError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        if seq is None:  # pragma: no cover - non-default bit generators
            seq = np.random.SeedSequence(int(seed.integers(2**63)))
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def choice_without_replacement(
    rng: np.random.Generator,
    candidates: Iterable[int],
    size: int,
    probabilities: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sample ``size`` distinct elements, tolerating ``size > len(candidates)``.

    Convenience wrapper used by the simulators: when more draws are requested
    than candidates exist, all candidates are returned (shuffled).
    """
    pool = np.fromiter(candidates, dtype=int)
    if size >= pool.size:
        out = pool.copy()
        rng.shuffle(out)
        return out
    if probabilities is not None:
        probabilities = np.asarray(probabilities, dtype=float)
        probabilities = probabilities / probabilities.sum()
    return rng.choice(pool, size=size, replace=False, p=probabilities)
