"""Execution backends for the MapReduce-style inference of paper Alg. 3.

The paper parallelises the *local* variational updates (the MAP phase) over
workers and reduces the global statistics centrally.  This module provides
interchangeable executors with that exact contract:

* :class:`SerialExecutor` — baseline, zero overhead.
* :class:`ThreadExecutor` — threads; useful when the map function releases
  the GIL (large BLAS calls).
* :class:`ProcessExecutor` — a process pool; true scale-up on multicore
  machines, used by the Fig-7 runtime experiment.

Executors map a function over *chunks* of an index range so per-task
overhead is amortised, mirroring how Alg. 3 shards the answer matrix by
worker key.

Stateful lanes (DESIGN.md §6 "Lane-resident shard state"): every executor
additionally supports :meth:`Executor.broadcast` /
:meth:`Executor.map_on`, the pair the sharded sweep backend uses to keep
large read-only payloads (shard kernels) resident at the lanes so that
per-sweep tasks carry only the small updated posteriors.  Serial and
thread backends hold broadcast state in-process; the process backend
spills each payload to a per-executor scratch file and installs a
path registry into every worker via the pool initializer (spawn-safe —
nothing relies on fork inheritance), with workers lazily unpickling a
payload the first time a ``map_on`` task lands on them.  Broadcasting
after the pool is up therefore never recycles worker processes: the new
payload's path rides along with the next ``map_on`` call.  All broadcast
state — registry, scratch files, and the worker processes holding
unpickled copies — is released by :meth:`Executor.close`.

Remote lanes (DESIGN.md §6 "Remote lanes"): :class:`RemoteExecutor`
implements the same contract over TCP against ``python -m repro.worker``
daemons — ``broadcast`` ships a payload once per plan to every lane,
``map_on`` ships only the small per-sweep tasks, ``map_tasks``
round-robins stateless tasks — with per-lane retry/exclusion on
connection loss: a lost lane's pending tasks are reassigned to the
survivors, payloads are re-broadcast to lanes that lost them
(reconnects, LRU eviction on the daemon, replacement workers), and only
when *every* lane is gone does a call fail.
"""

from __future__ import annotations

import functools
import os
import pickle
import shutil
import tempfile
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError, TransportError, ValidationError
from repro.utils import transport as _transport

#: executor kinds :func:`make_executor` understands.
EXECUTOR_KINDS = ("serial", "thread", "process", "remote")

T = TypeVar("T")
R = TypeVar("R")


def split_chunks(n: int, parts: int) -> List[range]:
    """Split ``range(n)`` into at most ``parts`` contiguous, balanced ranges.

    ``n == 0`` yields **no** chunks (``[]``), so :meth:`Executor.map_chunks`
    over an empty index range returns an empty result list — callers that
    fold the pieces must treat "no pieces" as the identity of their
    reduction (all in-repo callers do; ``tests/test_utils_misc.py`` pins
    the contract so a reduction step cannot be dropped silently).
    """
    if n < 0:
        raise ValidationError("n must be non-negative")
    if parts <= 0:
        raise ValidationError("parts must be positive")
    parts = min(parts, n) if n > 0 else 0
    chunks: List[range] = []
    base, extra = divmod(n, parts) if parts else (0, 0)
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


class Executor:
    """Maps work over chunks, explicit task lists, or lane-resident state."""

    #: number of parallel lanes the executor exposes (1 for serial).
    degree: int = 1

    #: executor kind, used by error messages (loud-failure policy).
    kind: str = "abstract"

    def map_chunks(
        self, func: Callable[[Sequence[int]], R], n: int
    ) -> List[R]:
        """Apply ``func`` to each chunk of ``range(n)`` and collect results."""
        raise NotImplementedError

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Apply ``func`` to each prepared task (one task per lane, ideally).

        Unlike :meth:`map_chunks`, the caller pre-slices the data so a
        process backend ships only each lane's share — the pattern the
        SVI MAP phase uses.
        """
        raise NotImplementedError

    # ------------------------------------------------------------ resident

    def broadcast(self, key: str, payload: object) -> None:
        """Install ``payload`` as lane-resident state under ``key``.

        The payload becomes available to every lane for subsequent
        :meth:`map_on` calls; re-broadcasting a key replaces its payload.
        Process lanes receive the payload **once** (not per task), which
        is the point: a sharded sweep broadcasts its shard kernels once
        per plan and then ships only small per-sweep posteriors.
        """
        raise NotImplementedError

    def map_on(
        self, key: str, func: Callable[[Any, T], R], tasks: Sequence[T]
    ) -> List[R]:
        """Apply ``func(payload, task)`` per task against the resident payload.

        ``payload`` is the object last :meth:`broadcast` under ``key``;
        an unknown key raises :class:`~repro.errors.ConfigurationError`.
        Results preserve task order (the fixed-order merge contract of
        the sharded backend relies on this).
        """
        raise NotImplementedError

    def release(self, key: str) -> None:
        """Drop the resident payload under ``key`` (missing keys are a no-op)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources **and all broadcast state**; idempotent."""

    def _check_open(self) -> None:
        if getattr(self, "_closed", False):
            raise ConfigurationError(
                f"{self.kind} executor has been closed; create a fresh "
                "executor (closed pools evict their broadcast state and "
                "never restart)"
            )

    def _missing_key(self, key: str) -> ConfigurationError:
        return ConfigurationError(
            f"no broadcast state under key {key!r} on this {self.kind} "
            "executor; call broadcast() first (state is evicted on close())"
        )

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run every chunk in the calling thread (the default backend)."""

    degree = 1
    kind = "serial"

    def __init__(self) -> None:
        self._resident: Dict[str, object] = {}
        self._closed = False

    def map_chunks(self, func: Callable[[Sequence[int]], R], n: int) -> List[R]:
        self._check_open()
        return [func(chunk) for chunk in split_chunks(n, 1)]

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        self._check_open()
        return [func(task) for task in tasks]

    def broadcast(self, key: str, payload: object) -> None:
        self._check_open()
        self._resident[key] = payload

    def map_on(
        self, key: str, func: Callable[[Any, T], R], tasks: Sequence[T]
    ) -> List[R]:
        self._check_open()
        if key not in self._resident:
            raise self._missing_key(key)
        payload = self._resident[key]
        return [func(payload, task) for task in tasks]

    def release(self, key: str) -> None:
        self._resident.pop(key, None)

    def close(self) -> None:
        self._closed = True
        self._resident.clear()


class ThreadExecutor(Executor):
    """Thread-pool backend; ``degree`` threads over ``degree`` chunks.

    The pool is created lazily on first use, so constructing an executor
    that is never exercised cannot leak worker threads.  Broadcast state
    lives in-process (threads share the address space), so :meth:`map_on`
    hands every worker the same payload object by reference.
    """

    kind = "thread"

    def __init__(self, degree: int | None = None) -> None:
        if degree is not None and degree <= 0:
            raise ValidationError("degree must be positive")
        self.degree = int(degree or os.cpu_count() or 1)
        self._pool: ThreadPoolExecutor | None = None
        self._resident: Dict[str, object] = {}
        self._closed = False

    def _ensure_pool(self) -> ThreadPoolExecutor:
        self._check_open()
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.degree)
        return self._pool

    def map_chunks(self, func: Callable[[Sequence[int]], R], n: int) -> List[R]:
        chunks = split_chunks(n, self.degree)
        return list(self._ensure_pool().map(func, chunks))

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        return list(self._ensure_pool().map(func, tasks))

    def broadcast(self, key: str, payload: object) -> None:
        self._check_open()
        self._resident[key] = payload

    def map_on(
        self, key: str, func: Callable[[Any, T], R], tasks: Sequence[T]
    ) -> List[R]:
        self._check_open()
        if key not in self._resident:
            # validate before _ensure_pool: a bad key must not cost a pool
            raise self._missing_key(key)
        payload = self._resident[key]
        return list(self._ensure_pool().map(lambda task: func(payload, task), tasks))

    def release(self, key: str) -> None:
        self._resident.pop(key, None)

    def close(self) -> None:
        self._closed = True
        self._resident.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ------------------------------------------------------------ process lanes
#
# Worker-side registry for ProcessExecutor broadcast state.  Each worker
# process holds {spill_path: payload}; keying by the spill file's path (not
# the logical key) makes re-broadcasts self-invalidating — a new payload
# gets a new path, so stale worker copies are simply never addressed again
# (the LRU drops them) and every copy dies with the worker on close().

_WORKER_PAYLOADS: Dict[str, object] = {}

#: resident payloads a worker keeps unpickled at once; older entries are
#: dropped (and reload from their spill file if ever addressed again), so
#: a long stream of per-batch broadcasts cannot grow worker memory without
#: bound.
_WORKER_PAYLOAD_CAP = 8


def _install_worker_payloads(paths: Tuple[str, ...]) -> None:
    """Pool initializer: install every already-broadcast payload.

    Runs once per worker process at start-up (spawn-safe — the paths
    arrive through ``initargs``, nothing relies on fork inheritance), so
    in the common flow — broadcast the plan, then sweep — workers begin
    life with the resident state unpickled.  Payloads broadcast *after*
    the pool is up load lazily on first ``map_on`` touch instead; a path
    released between pool creation and worker start simply no longer
    exists and is skipped (its tasks can never arrive).
    """
    _WORKER_PAYLOADS.clear()
    for path in paths:
        try:
            with open(path, "rb") as handle:
                _WORKER_PAYLOADS[path] = pickle.load(handle)
        except OSError:
            pass


def _resident_call(path: str, key: str, func: Callable[[Any, T], R], task: T) -> R:
    """Run one ``map_on`` task against the worker-resident payload."""
    payload = _WORKER_PAYLOADS.pop(path, None)
    if payload is None:
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except OSError as exc:
            raise ConfigurationError(
                f"broadcast state for key {key!r} is gone ({exc}); it was "
                "evicted — re-broadcast before calling map_on"
            ) from exc
    # Re-insert at the back: the registry doubles as an LRU over payloads.
    _WORKER_PAYLOADS[path] = payload
    while len(_WORKER_PAYLOADS) > _WORKER_PAYLOAD_CAP:
        _WORKER_PAYLOADS.pop(next(iter(_WORKER_PAYLOADS)))
    return func(payload, task)


class ProcessExecutor(Executor):
    """Process-pool backend used for the scalability experiments.

    ``map_tasks`` payloads are pickled to the worker processes on every
    call, so that path only pays off when each task carries substantial
    compute relative to its data — exactly the regime of paper Fig 7.
    ``broadcast`` / ``map_on`` break that trade-off for large *reused*
    payloads: a broadcast pickles its payload once into a per-executor
    scratch file, the pool initializer installs the path registry into
    each worker at start-up (spawn-safe), and workers unpickle a payload
    the first time one of its tasks lands on them.  Re-broadcasting after
    the pool is up never recycles workers — the fresh path travels with
    the next ``map_on`` call — and :meth:`close` removes the scratch
    directory and shuts the workers down, releasing every resident copy.
    """

    kind = "process"

    def __init__(self, degree: int | None = None) -> None:
        if degree is not None and degree <= 0:
            raise ValidationError("degree must be positive")
        self.degree = int(degree or os.cpu_count() or 1)
        self._pool: ProcessPoolExecutor | None = None
        self._resident_paths: Dict[str, str] = {}
        self._scratch_dir: str | None = None
        self._spill_count = 0
        self._closed = False

    def _ensure_pool(self) -> ProcessPoolExecutor:
        # Lazy: forking worker processes is expensive and constructing an
        # executor must never leak them if it goes unused.
        self._check_open()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.degree,
                initializer=_install_worker_payloads,
                initargs=(tuple(self._resident_paths.values()),),
            )
        return self._pool

    def map_chunks(self, func: Callable[[Sequence[int]], R], n: int) -> List[R]:
        chunks = split_chunks(n, self.degree)
        return list(self._ensure_pool().map(func, chunks))

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        return list(self._ensure_pool().map(func, tasks))

    def broadcast(self, key: str, payload: object) -> None:
        self._check_open()
        if self._scratch_dir is None:
            self._scratch_dir = tempfile.mkdtemp(prefix="repro-broadcast-")
            # Abandoned executors (never closed, or interrupted mid-fit)
            # must not leak spilled payloads: the finalizer removes the
            # scratch directory when the executor is collected; close()
            # runs it eagerly.
            self._scratch_finalizer = weakref.finalize(
                self, shutil.rmtree, self._scratch_dir, ignore_errors=True
            )
        # A fresh path per broadcast: worker caches key on the path, so a
        # re-broadcast invalidates stale copies without touching the pool.
        self._spill_count += 1
        path = os.path.join(self._scratch_dir, f"b{self._spill_count}.pkl")
        with open(path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        stale = self._resident_paths.get(key)
        self._resident_paths[key] = path
        if stale is not None and os.path.exists(stale):
            os.unlink(stale)

    def map_on(
        self, key: str, func: Callable[[Any, T], R], tasks: Sequence[T]
    ) -> List[R]:
        self._check_open()
        path = self._resident_paths.get(key)
        if path is None:
            # validate before _ensure_pool: a bad key must not spawn workers
            raise self._missing_key(key)
        call = functools.partial(_resident_call, path, key, func)
        return list(self._ensure_pool().map(call, tasks))

    def release(self, key: str) -> None:
        path = self._resident_paths.pop(key, None)
        if path is not None and os.path.exists(path):
            os.unlink(path)

    def close(self) -> None:
        self._closed = True
        self._resident_paths.clear()
        if self._scratch_dir is not None:
            self._scratch_finalizer()  # rmtree now; finalizer runs once
            self._scratch_dir = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# -------------------------------------------------------------- remote lanes


class _Lane:
    """Client-side record of one remote worker daemon.

    ``resident_keys`` tracks which broadcast keys the *daemon* is
    believed to hold; the belief is optimistic — a daemon that lost a
    payload (LRU eviction, restart) replies ``stale`` and the client
    re-broadcasts — so reconnecting never has to guess daemon state.
    """

    __slots__ = (
        "index",
        "host",
        "port",
        "address",
        "channel",
        "resident_keys",
        "dead",
        "reconnects_left",
    )

    def __init__(self, index: int, address: str, reconnects: int) -> None:
        self.index = index
        self.host, self.port = _transport.parse_address(address)
        self.address = _transport.format_address(self.host, self.port)
        self.channel: Optional[_transport.Channel] = None
        self.resident_keys: set = set()
        self.dead = False
        self.reconnects_left = int(reconnects)


class RemoteExecutor(Executor):
    """Lane contract over TCP against ``python -m repro.worker`` daemons.

    One persistent framed channel per worker (lazy connect, like the
    local pools).  Transport policy, per call:

    * **broadcast** pickles the payload once, retains the bytes
      client-side, and ships them to every live lane — once per plan, the
      same shape as the process pool's spill-file registry.  The retained
      copy is what makes recovery possible: any lane that later proves to
      be missing the key (reconnect after a drop, daemon-side LRU
      eviction, a replacement worker attached via :meth:`add_worker`)
      gets the bytes re-sent before its next ``map_on`` tasks.
    * **map_on / map_tasks** round-robin the task list over the live
      lanes, pipelined (all sends, then all receives), and reassemble
      results by task index — so results are in task order regardless of
      which lane computed what, preserving the fixed-order merge
      contract of the sharded backend bitwise.
    * **failure handling** — a lane whose channel fails (connection
      refused, reset, truncated frame) is reconnected up to
      ``reconnects`` times and then excluded; its pending tasks rejoin
      the pool and land on the survivors in the next round.  Only when
      every lane is excluded does the call raise
      :class:`~repro.errors.TransportError`.  Worker-side *task*
      exceptions are re-raised as-is — a bug in the task is the caller's
      problem, not a lane failure, and must not trigger retries.

    The executor never owns daemon lifetime: :meth:`close` releases the
    broadcast state it installed and drops its connections, leaving the
    daemons up for the next client.
    """

    kind = "remote"

    def __init__(
        self,
        workers: Sequence[str],
        *,
        connect_timeout: float = 5.0,
        reconnects: int = 1,
        channel_factory: Optional[Callable[[int, str, int], object]] = None,
    ) -> None:
        if not workers:
            raise ConfigurationError(
                "remote executor needs at least one worker address "
                "('host:port'); start daemons with "
                "`python -m repro.worker --listen host:port`"
            )
        self._reconnects = int(reconnects)
        self._connect_timeout = float(connect_timeout)
        self._channel_factory = channel_factory
        self._lanes = [
            _Lane(index, address, self._reconnects)
            for index, address in enumerate(workers)
        ]
        self._payloads: Dict[str, bytes] = {}
        self._closed = False
        #: exact frame bytes spent on broadcast requests (including
        #: re-broadcasts after failures) — deterministic, benchmarked.
        self.broadcast_sent_bytes = 0
        self._retired_sent = 0
        self._retired_received = 0

    # ----------------------------------------------------------- telemetry

    @property
    def degree(self) -> int:  # type: ignore[override]
        """Live lanes.  Excluded lanes stop counting, so shard-count and
        chunk-split decisions taken after a failure see the real capacity
        (``CPAConfig.resolve_backend`` sizes K from this)."""
        return sum(1 for lane in self._lanes if not lane.dead)

    @property
    def sent_bytes(self) -> int:
        """Total frame bytes sent over every channel this executor opened."""
        return self._retired_sent + sum(
            lane.channel.sent_bytes
            for lane in self._lanes
            if lane.channel is not None
        )

    @property
    def received_bytes(self) -> int:
        return self._retired_received + sum(
            lane.channel.received_bytes
            for lane in self._lanes
            if lane.channel is not None
        )

    def live_workers(self) -> List[str]:
        """Addresses of the lanes not (yet) excluded."""
        return [lane.address for lane in self._lanes if not lane.dead]

    # ------------------------------------------------------ lane lifecycle

    def add_worker(self, address: str) -> None:
        """Attach a replacement/extra worker daemon as a new lane.

        The new lane holds no broadcast state; every key it needs is
        re-broadcast from the client's retained copy the first time a
        ``map_on`` task lands on it.
        """
        self._check_open()
        self._lanes.append(_Lane(len(self._lanes), address, self._reconnects))

    def _live_lanes(self) -> List[_Lane]:
        lanes = [lane for lane in self._lanes if not lane.dead]
        if not lanes:
            raise TransportError(
                "all remote workers are gone (every lane was excluded after "
                "its reconnect budget); attach replacements with add_worker() "
                "or restart the daemons and build a fresh executor"
            )
        return lanes

    def _connect_lane(self, lane: _Lane) -> None:
        if lane.channel is not None:
            return
        if self._channel_factory is not None:
            lane.channel = self._channel_factory(lane.index, lane.host, lane.port)
        else:
            lane.channel = _transport.connect(
                lane.host, lane.port, timeout=self._connect_timeout
            )

    def _drop_channel(self, lane: _Lane) -> None:
        if lane.channel is not None:
            self._retired_sent += lane.channel.sent_bytes
            self._retired_received += lane.channel.received_bytes
            lane.channel.close()
            lane.channel = None

    def _fail_lane(self, lane: _Lane) -> None:
        """Channel failure: reconnect within budget, else exclude the lane.

        ``resident_keys`` is kept across reconnects — if the daemon
        actually lost state (it died and something respawned it on the
        same address), its ``stale`` replies trigger re-broadcast anyway.
        """
        self._drop_channel(lane)
        while lane.reconnects_left > 0:
            lane.reconnects_left -= 1
            try:
                self._connect_lane(lane)
                return
            except TransportError:
                self._drop_channel(lane)
        lane.dead = True

    # ------------------------------------------------------------ dispatch

    def _ensure_resident(self, lane: _Lane, key: str) -> None:
        """Connect the lane and (re-)broadcast ``key`` if it lacks it."""
        self._connect_lane(lane)
        if key is None or key in lane.resident_keys:
            return
        blob = self._payloads[key]
        before = lane.channel.sent_bytes
        try:
            _transport.request(lane.channel, ("broadcast", key, blob))
        finally:
            self.broadcast_sent_bytes += lane.channel.sent_bytes - before
        lane.resident_keys.add(key)

    def _dispatch(
        self,
        make_message: Callable[[List], tuple],
        tasks: Sequence,
        key: Optional[str] = None,
    ) -> List:
        """Scatter ``tasks`` over live lanes, gather results in task order.

        Rounds repeat until every task has a result; each round excludes
        (or reconnects) the lanes that failed, so the loop terminates —
        lane reconnect budgets are finite and the stale-broadcast budget
        bounds daemon-side eviction churn.
        """
        results: List = [None] * len(tasks)
        done = [False] * len(tasks)
        pending = list(range(len(tasks)))
        stale_budget = 4 + 2 * len(self._lanes)
        while pending:
            lanes = self._live_lanes()
            sent: List[Tuple[_Lane, List[int]]] = []
            send_error: Optional[BaseException] = None
            for offset, lane in enumerate(lanes):
                indices = pending[offset :: len(lanes)]
                if not indices:
                    continue
                try:
                    self._ensure_resident(lane, key)
                    lane.channel.send(make_message([tasks[i] for i in indices]))
                except TransportError:
                    self._fail_lane(lane)
                    continue
                except Exception as exc:  # noqa: BLE001 - worker err reply
                    # An in-dispatch re-broadcast can come back ("err", ...)
                    # (the daemon failed to unpickle the payload).  Stop
                    # sending, but the raise must wait until every
                    # already-sent lane has been drained below — an early
                    # raise would leave replies in their sockets and
                    # desync those channels.
                    send_error = exc
                    break
                sent.append((lane, indices))
            # Any error discovered while reading replies is raised only
            # *after* every sent lane has been drained: an early raise
            # would leave the other lanes' replies sitting in their
            # sockets, desyncing those channels (the next request would
            # read this call's leftover reply as its own).
            deferred_error: Optional[BaseException] = None
            for lane, indices in sent:
                try:
                    reply = lane.channel.recv()
                except TransportError:
                    self._fail_lane(lane)
                    continue
                try:
                    values = _transport.unwrap_reply(reply)
                except _transport.StaleBroadcast:
                    # The daemon evicted (or never had) the payload: the
                    # next round re-broadcasts from the retained copy.
                    lane.resident_keys.discard(key)
                    stale_budget -= 1
                    if stale_budget < 0 and deferred_error is None:
                        deferred_error = TransportError(
                            f"broadcast key {key!r} keeps getting evicted by "
                            "the worker daemons; raise their --payload-cap"
                        )
                    continue
                except TransportError:
                    # malformed envelope: the lane is broken/version-skewed,
                    # same treatment as a short reply below
                    self._fail_lane(lane)
                    continue
                except Exception as exc:  # noqa: BLE001 - worker task error
                    # A *task* exception is the caller's bug, not a lane
                    # failure; no retry.
                    if deferred_error is None:
                        deferred_error = exc
                    continue
                if not isinstance(values, list) or len(values) != len(indices):
                    # Reply-shape protocol violation (version-skewed or
                    # buggy daemon): a silent zip-truncation would strand
                    # the surplus tasks in an endless re-dispatch loop, so
                    # distrust the lane instead — its tasks stay pending
                    # and land elsewhere (or the call fails loudly when
                    # no lane survives).
                    self._fail_lane(lane)
                    continue
                for index, value in zip(indices, values):
                    results[index] = value
                    done[index] = True
            if send_error is not None:
                raise send_error
            if deferred_error is not None:
                raise deferred_error
            pending = [index for index in pending if not done[index]]
        return results

    # ------------------------------------------------------- lane contract

    def map_chunks(self, func: Callable[[Sequence[int]], R], n: int) -> List[R]:
        self._check_open()
        chunks = split_chunks(n, len(self._live_lanes()))
        return self.map_tasks(func, chunks)

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        self._check_open()
        return self._dispatch(
            lambda lane_tasks: ("map_tasks", func, lane_tasks), tasks
        )

    def broadcast(self, key: str, payload: object) -> None:
        blob = _transport.dumps(payload)
        self._check_open()
        self._payloads[key] = blob
        for lane in self._lanes:
            # a re-broadcast replaces the payload everywhere: stale lane
            # copies must never be addressed again
            lane.resident_keys.discard(key)
        # Pipelined like _dispatch: push the frame to every lane first so
        # N transfers overlap on the wire, then collect the N acks — a
        # shard plan is tens of MB, so sequential send+wait per lane
        # would serialise the slowest part of the fan-out.
        targets: List[_Lane] = []
        for lane in self._live_lanes():
            try:
                self._connect_lane(lane)
                before = lane.channel.sent_bytes
                try:
                    lane.channel.send(("broadcast", key, blob))
                finally:
                    self.broadcast_sent_bytes += lane.channel.sent_bytes - before
            except TransportError:
                self._fail_lane(lane)
                continue
            targets.append(lane)
        deferred_error: Optional[BaseException] = None
        for lane in targets:
            try:
                _transport.unwrap_reply(lane.channel.recv())
            except TransportError:
                self._fail_lane(lane)
                continue
            except Exception as exc:  # noqa: BLE001 - daemon failed to load
                if deferred_error is None:
                    deferred_error = exc
                continue
            lane.resident_keys.add(key)
        if deferred_error is not None:
            raise deferred_error
        self._live_lanes()  # loud if the broadcast left no lane standing

    def map_on(
        self, key: str, func: Callable[[Any, T], R], tasks: Sequence[T]
    ) -> List[R]:
        self._check_open()
        if key not in self._payloads:
            raise self._missing_key(key)
        return self._dispatch(
            lambda lane_tasks: ("map_on", key, func, lane_tasks), tasks, key=key
        )

    def release(self, key: str) -> None:
        """Best-effort: drop the retained copy and the daemons' copies.

        Cleanup must never raise — a lane that fails here is simply left
        for the regular retry path to deal with on next use.
        """
        if self._closed:
            return
        self._payloads.pop(key, None)
        for lane in self._lanes:
            if lane.dead or lane.channel is None:
                lane.resident_keys.discard(key)
                continue
            if key in lane.resident_keys:
                try:
                    _transport.request(lane.channel, ("release", key))
                except TransportError:
                    self._drop_channel(lane)
                lane.resident_keys.discard(key)

    def close(self) -> None:
        """Release installed broadcast state, drop connections; idempotent.

        The worker daemons stay up — their lifetime belongs to whoever
        launched them, not to this client.
        """
        if self._closed:
            return
        for key in list(self._payloads):
            self.release(key)
        self._closed = True
        for lane in self._lanes:
            self._drop_channel(lane)


def make_executor(
    kind: str = "serial",
    degree: int | None = None,
    workers: Sequence[str] | None = None,
) -> Executor:
    """Factory: ``kind`` must be one of :data:`EXECUTOR_KINDS`.

    An unknown ``kind`` raises :class:`~repro.errors.ConfigurationError`
    naming the valid choices — misconfiguration must fail loudly at the
    seam, not surface later as an attribute error on ``None``.  A
    ``degree`` below 1 is rejected the same way for *every* kind (the
    serial backend used to swallow it silently).  ``workers`` (a list of
    ``"host:port"`` daemon addresses) is required by — and only
    meaningful for — the ``"remote"`` kind; ``degree`` there optionally
    caps how many of the listed daemons become lanes.
    """
    if degree is not None and degree < 1:
        raise ConfigurationError(
            f"degree must be at least 1 for the {kind!r} executor, got {degree}"
        )
    if workers is not None and kind != "remote":
        raise ConfigurationError(
            f"worker addresses only apply to the 'remote' executor, "
            f"not {kind!r}"
        )
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(degree)
    if kind == "process":
        return ProcessExecutor(degree)
    if kind == "remote":
        if not workers:
            raise ConfigurationError(
                "the 'remote' executor needs worker addresses "
                "(workers=['host:port', ...]); start daemons with "
                "`python -m repro.worker --listen host:port`"
            )
        lanes = list(workers)[:degree] if degree else list(workers)
        return RemoteExecutor(lanes)
    raise ConfigurationError(
        f"unknown executor kind {kind!r}; expected one of {', '.join(EXECUTOR_KINDS)}"
    )
