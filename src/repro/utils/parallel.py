"""Execution backends for the MapReduce-style inference of paper Alg. 3.

The paper parallelises the *local* variational updates (the MAP phase) over
workers and reduces the global statistics centrally.  This module provides
interchangeable executors with that exact contract:

* :class:`SerialExecutor` — baseline, zero overhead.
* :class:`ThreadExecutor` — threads; useful when the map function releases
  the GIL (large BLAS calls).
* :class:`ProcessExecutor` — a process pool; true scale-up on multicore
  machines, used by the Fig-7 runtime experiment.

Executors map a function over *chunks* of an index range so per-task
overhead is amortised, mirroring how Alg. 3 shards the answer matrix by
worker key.

Stateful lanes (DESIGN.md §6 "Lane-resident shard state"): every executor
additionally supports :meth:`Executor.broadcast` /
:meth:`Executor.map_on`, the pair the sharded sweep backend uses to keep
large read-only payloads (shard kernels) resident at the lanes so that
per-sweep tasks carry only the small updated posteriors.  Serial and
thread backends hold broadcast state in-process; the process backend
spills each payload to a per-executor scratch file and installs a
path registry into every worker via the pool initializer (spawn-safe —
nothing relies on fork inheritance), with workers lazily unpickling a
payload the first time a ``map_on`` task lands on them.  Broadcasting
after the pool is up therefore never recycles worker processes: the new
payload's path rides along with the next ``map_on`` call.  All broadcast
state — registry, scratch files, and the worker processes holding
unpickled copies — is released by :meth:`Executor.close`.

Remote lanes (DESIGN.md §6 "Remote lanes"): :class:`RemoteExecutor`
implements the same contract over TCP against ``python -m repro.worker``
daemons — ``broadcast`` ships a payload once per plan to every lane,
``map_on`` ships only the small per-sweep tasks, ``map_tasks``
round-robins stateless tasks — with per-lane retry/exclusion on
connection loss: a lost lane's pending tasks are reassigned to the
survivors, payloads are re-broadcast to lanes that lost them
(reconnects, LRU eviction on the daemon, replacement workers), and only
when *every* lane is gone does a call fail.  The elastic-fleet layer
(DESIGN.md §6 "Elastic fleet") extends the pair with per-request
deadlines + straggler mitigation (a hung daemon delays, never stalls),
runtime membership (``add_worker`` / ``remove_worker``), and a
content-addressed chunk store so recovering lanes re-fetch only the
broadcast bytes they are actually missing.
"""

from __future__ import annotations

import functools
import os
import pickle
import random
import shutil
import tempfile
import time
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError, TransportError, ValidationError
from repro.utils import transport as _transport

#: executor kinds :func:`make_executor` understands.
EXECUTOR_KINDS = ("serial", "thread", "process", "remote")

#: seam for the reconnect backoff sleeps — tests monkeypatch this to
#: record the exact delay sequence without waiting it out.
_sleep = time.sleep

T = TypeVar("T")
R = TypeVar("R")


def split_chunks(n: int, parts: int) -> List[range]:
    """Split ``range(n)`` into at most ``parts`` contiguous, balanced ranges.

    ``n == 0`` yields **no** chunks (``[]``), so :meth:`Executor.map_chunks`
    over an empty index range returns an empty result list — callers that
    fold the pieces must treat "no pieces" as the identity of their
    reduction (all in-repo callers do; ``tests/test_utils_misc.py`` pins
    the contract so a reduction step cannot be dropped silently).
    """
    if n < 0:
        raise ValidationError("n must be non-negative")
    if parts <= 0:
        raise ValidationError("parts must be positive")
    parts = min(parts, n) if n > 0 else 0
    chunks: List[range] = []
    base, extra = divmod(n, parts) if parts else (0, 0)
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


class Executor:
    """Maps work over chunks, explicit task lists, or lane-resident state."""

    #: number of parallel lanes the executor exposes (1 for serial).
    degree: int = 1

    #: executor kind, used by error messages (loud-failure policy).
    kind: str = "abstract"

    def map_chunks(
        self, func: Callable[[Sequence[int]], R], n: int
    ) -> List[R]:
        """Apply ``func`` to each chunk of ``range(n)`` and collect results."""
        raise NotImplementedError

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Apply ``func`` to each prepared task (one task per lane, ideally).

        Unlike :meth:`map_chunks`, the caller pre-slices the data so a
        process backend ships only each lane's share — the pattern the
        SVI MAP phase uses.
        """
        raise NotImplementedError

    # ------------------------------------------------------------ resident

    def broadcast(self, key: str, payload: object) -> None:
        """Install ``payload`` as lane-resident state under ``key``.

        The payload becomes available to every lane for subsequent
        :meth:`map_on` calls; re-broadcasting a key replaces its payload.
        Process lanes receive the payload **once** (not per task), which
        is the point: a sharded sweep broadcasts its shard kernels once
        per plan and then ships only small per-sweep posteriors.
        """
        raise NotImplementedError

    def map_on(
        self, key: str, func: Callable[[Any, T], R], tasks: Sequence[T]
    ) -> List[R]:
        """Apply ``func(payload, task)`` per task against the resident payload.

        ``payload`` is the object last :meth:`broadcast` under ``key``;
        an unknown key raises :class:`~repro.errors.ConfigurationError`.
        Results preserve task order (the fixed-order merge contract of
        the sharded backend relies on this).
        """
        raise NotImplementedError

    def release(self, key: str) -> None:
        """Drop the resident payload under ``key`` (missing keys are a no-op)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources **and all broadcast state**; idempotent."""

    def _check_open(self) -> None:
        if getattr(self, "_closed", False):
            raise ConfigurationError(
                f"{self.kind} executor has been closed; create a fresh "
                "executor (closed pools evict their broadcast state and "
                "never restart)"
            )

    def _missing_key(self, key: str) -> ConfigurationError:
        return ConfigurationError(
            f"no broadcast state under key {key!r} on this {self.kind} "
            "executor; call broadcast() first (state is evicted on close())"
        )

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run every chunk in the calling thread (the default backend)."""

    degree = 1
    kind = "serial"

    def __init__(self) -> None:
        self._resident: Dict[str, object] = {}
        self._closed = False

    def map_chunks(self, func: Callable[[Sequence[int]], R], n: int) -> List[R]:
        self._check_open()
        return [func(chunk) for chunk in split_chunks(n, 1)]

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        self._check_open()
        return [func(task) for task in tasks]

    def broadcast(self, key: str, payload: object) -> None:
        self._check_open()
        self._resident[key] = payload

    def map_on(
        self, key: str, func: Callable[[Any, T], R], tasks: Sequence[T]
    ) -> List[R]:
        self._check_open()
        if key not in self._resident:
            raise self._missing_key(key)
        payload = self._resident[key]
        return [func(payload, task) for task in tasks]

    def release(self, key: str) -> None:
        self._resident.pop(key, None)

    def close(self) -> None:
        self._closed = True
        self._resident.clear()


class ThreadExecutor(Executor):
    """Thread-pool backend; ``degree`` threads over ``degree`` chunks.

    The pool is created lazily on first use, so constructing an executor
    that is never exercised cannot leak worker threads.  Broadcast state
    lives in-process (threads share the address space), so :meth:`map_on`
    hands every worker the same payload object by reference.
    """

    kind = "thread"

    def __init__(self, degree: int | None = None) -> None:
        if degree is not None and degree <= 0:
            raise ValidationError("degree must be positive")
        self.degree = int(degree or os.cpu_count() or 1)
        self._pool: ThreadPoolExecutor | None = None
        self._resident: Dict[str, object] = {}
        self._closed = False

    def _ensure_pool(self) -> ThreadPoolExecutor:
        self._check_open()
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.degree)
        return self._pool

    def map_chunks(self, func: Callable[[Sequence[int]], R], n: int) -> List[R]:
        chunks = split_chunks(n, self.degree)
        return list(self._ensure_pool().map(func, chunks))

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        return list(self._ensure_pool().map(func, tasks))

    def broadcast(self, key: str, payload: object) -> None:
        self._check_open()
        self._resident[key] = payload

    def map_on(
        self, key: str, func: Callable[[Any, T], R], tasks: Sequence[T]
    ) -> List[R]:
        self._check_open()
        if key not in self._resident:
            # validate before _ensure_pool: a bad key must not cost a pool
            raise self._missing_key(key)
        payload = self._resident[key]
        return list(self._ensure_pool().map(lambda task: func(payload, task), tasks))

    def release(self, key: str) -> None:
        self._resident.pop(key, None)

    def close(self) -> None:
        self._closed = True
        self._resident.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ------------------------------------------------------------ process lanes
#
# Worker-side registry for ProcessExecutor broadcast state.  Each worker
# process holds {spill_path: payload}; keying by the spill file's path (not
# the logical key) makes re-broadcasts self-invalidating — a new payload
# gets a new path, so stale worker copies are simply never addressed again
# (the LRU drops them) and every copy dies with the worker on close().

_WORKER_PAYLOADS: Dict[str, object] = {}

#: resident payloads a worker keeps unpickled at once; older entries are
#: dropped (and reload from their spill file if ever addressed again), so
#: a long stream of per-batch broadcasts cannot grow worker memory without
#: bound.
_WORKER_PAYLOAD_CAP = 8


def _install_worker_payloads(paths: Tuple[str, ...]) -> None:
    """Pool initializer: install every already-broadcast payload.

    Runs once per worker process at start-up (spawn-safe — the paths
    arrive through ``initargs``, nothing relies on fork inheritance), so
    in the common flow — broadcast the plan, then sweep — workers begin
    life with the resident state unpickled.  Payloads broadcast *after*
    the pool is up load lazily on first ``map_on`` touch instead; a path
    released between pool creation and worker start simply no longer
    exists and is skipped (its tasks can never arrive).
    """
    _WORKER_PAYLOADS.clear()
    for path in paths:
        try:
            with open(path, "rb") as handle:
                _WORKER_PAYLOADS[path] = pickle.load(handle)
        except OSError:
            pass


def _resident_call(path: str, key: str, func: Callable[[Any, T], R], task: T) -> R:
    """Run one ``map_on`` task against the worker-resident payload."""
    payload = _WORKER_PAYLOADS.pop(path, None)
    if payload is None:
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except OSError as exc:
            raise ConfigurationError(
                f"broadcast state for key {key!r} is gone ({exc}); it was "
                "evicted — re-broadcast before calling map_on"
            ) from exc
    # Re-insert at the back: the registry doubles as an LRU over payloads.
    _WORKER_PAYLOADS[path] = payload
    while len(_WORKER_PAYLOADS) > _WORKER_PAYLOAD_CAP:
        _WORKER_PAYLOADS.pop(next(iter(_WORKER_PAYLOADS)))
    return func(payload, task)


class ProcessExecutor(Executor):
    """Process-pool backend used for the scalability experiments.

    ``map_tasks`` payloads are pickled to the worker processes on every
    call, so that path only pays off when each task carries substantial
    compute relative to its data — exactly the regime of paper Fig 7.
    ``broadcast`` / ``map_on`` break that trade-off for large *reused*
    payloads: a broadcast pickles its payload once into a per-executor
    scratch file, the pool initializer installs the path registry into
    each worker at start-up (spawn-safe), and workers unpickle a payload
    the first time one of its tasks lands on them.  Re-broadcasting after
    the pool is up never recycles workers — the fresh path travels with
    the next ``map_on`` call — and :meth:`close` removes the scratch
    directory and shuts the workers down, releasing every resident copy.
    """

    kind = "process"

    def __init__(self, degree: int | None = None) -> None:
        if degree is not None and degree <= 0:
            raise ValidationError("degree must be positive")
        self.degree = int(degree or os.cpu_count() or 1)
        self._pool: ProcessPoolExecutor | None = None
        self._resident_paths: Dict[str, str] = {}
        self._scratch_dir: str | None = None
        self._spill_count = 0
        self._closed = False

    def _ensure_pool(self) -> ProcessPoolExecutor:
        # Lazy: forking worker processes is expensive and constructing an
        # executor must never leak them if it goes unused.
        self._check_open()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.degree,
                initializer=_install_worker_payloads,
                initargs=(tuple(self._resident_paths.values()),),
            )
        return self._pool

    def map_chunks(self, func: Callable[[Sequence[int]], R], n: int) -> List[R]:
        chunks = split_chunks(n, self.degree)
        return list(self._ensure_pool().map(func, chunks))

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        return list(self._ensure_pool().map(func, tasks))

    def broadcast(self, key: str, payload: object) -> None:
        self._check_open()
        if self._scratch_dir is None:
            self._scratch_dir = tempfile.mkdtemp(prefix="repro-broadcast-")
            # Abandoned executors (never closed, or interrupted mid-fit)
            # must not leak spilled payloads: the finalizer removes the
            # scratch directory when the executor is collected; close()
            # runs it eagerly.
            self._scratch_finalizer = weakref.finalize(
                self, shutil.rmtree, self._scratch_dir, ignore_errors=True
            )
        # A fresh path per broadcast: worker caches key on the path, so a
        # re-broadcast invalidates stale copies without touching the pool.
        self._spill_count += 1
        path = os.path.join(self._scratch_dir, f"b{self._spill_count}.pkl")
        with open(path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        stale = self._resident_paths.get(key)
        self._resident_paths[key] = path
        if stale is not None and os.path.exists(stale):
            os.unlink(stale)

    def map_on(
        self, key: str, func: Callable[[Any, T], R], tasks: Sequence[T]
    ) -> List[R]:
        self._check_open()
        path = self._resident_paths.get(key)
        if path is None:
            # validate before _ensure_pool: a bad key must not spawn workers
            raise self._missing_key(key)
        call = functools.partial(_resident_call, path, key, func)
        return list(self._ensure_pool().map(call, tasks))

    def release(self, key: str) -> None:
        path = self._resident_paths.pop(key, None)
        if path is not None and os.path.exists(path):
            os.unlink(path)

    def close(self) -> None:
        self._closed = True
        self._resident_paths.clear()
        if self._scratch_dir is not None:
            self._scratch_finalizer()  # rmtree now; finalizer runs once
            self._scratch_dir = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# -------------------------------------------------------------- remote lanes


class _Lane:
    """Client-side record of one remote worker daemon.

    ``resident_keys`` tracks which broadcast keys the *daemon* is
    believed to hold; the belief is optimistic — a daemon that lost a
    payload (LRU eviction, restart) replies ``stale`` and the client
    re-broadcasts — so reconnecting never has to guess daemon state.

    The lane state machine (DESIGN.md §6 "Elastic fleet") lives in a
    shared :class:`~repro.utils.transport.LaneHealth` instance:
    ``"live"`` (usable), ``"suspect"`` (a per-request deadline expired
    with a reply still owed; the channel is kept — partial frames are
    buffered client-side — and the lane is polled for the late reply
    until ``suspect_deadline``, after which it is reconnected or
    excluded), ``"excluded"`` (terminal).  The same machine drives
    read-replica failover in :mod:`repro.fleet`; the ``dead``/``health``
    properties below are the executor's historical view of it.
    """

    __slots__ = (
        "index",
        "host",
        "port",
        "address",
        "channel",
        "resident_keys",
        "health_machine",
        "outstanding",
    )

    def __init__(self, index: int, address: str, reconnects: int) -> None:
        self.index = index
        self.host, self.port = _transport.parse_address(address)
        self.address = _transport.format_address(self.host, self.port)
        self.channel: Optional[_transport.Channel] = None
        self.resident_keys: set = set()
        self.health_machine = _transport.LaneHealth(reconnects)
        #: (dispatch token, task indices, broadcast key) of the one
        #: request whose reply this suspect lane still owes.
        self.outstanding: Optional[Tuple[int, List[int], Optional[str]]] = None

    @property
    def dead(self) -> bool:
        return self.health_machine.excluded

    @dead.setter
    def dead(self, value: bool) -> None:
        if value:
            self.health_machine.exclude()
        else:
            self.health_machine.recover()

    @property
    def health(self) -> str:
        return self.health_machine.state

    @health.setter
    def health(self, state: str) -> None:
        if state == _transport.LaneHealth.LIVE:
            self.health_machine.recover()
        elif state == _transport.LaneHealth.SUSPECT:
            self.health_machine.mark_suspect(self.health_machine.suspect_deadline)
        else:
            self.health_machine.exclude()

    @property
    def reconnects_left(self) -> int:
        return self.health_machine.reconnects_left

    @reconnects_left.setter
    def reconnects_left(self, value: int) -> None:
        self.health_machine.reconnects_left = int(value)

    @property
    def suspect_deadline(self) -> float:
        return self.health_machine.suspect_deadline

    @suspect_deadline.setter
    def suspect_deadline(self, value: float) -> None:
        self.health_machine.suspect_deadline = float(value)


class RemoteExecutor(Executor):
    """Lane contract over TCP against ``python -m repro.worker`` daemons.

    One persistent framed channel per worker (lazy connect, like the
    local pools).  Transport policy, per call:

    * **broadcast** pickles the payload once, retains the bytes
      client-side, and ships them to every live lane — once per plan, the
      same shape as the process pool's spill-file registry.  The retained
      copy is what makes recovery possible: any lane that later proves to
      be missing the key (reconnect after a drop, daemon-side LRU
      eviction, a replacement worker attached via :meth:`add_worker`)
      gets the bytes re-sent before its next ``map_on`` tasks.
    * **map_on / map_tasks** round-robin the task list over the live
      lanes, pipelined (all sends, then all receives), and reassemble
      results by task index — so results are in task order regardless of
      which lane computed what, preserving the fixed-order merge
      contract of the sharded backend bitwise.
    * **failure handling** — a lane whose channel fails (connection
      refused, reset, truncated frame) is reconnected up to
      ``reconnects`` times (jittered exponential backoff under a
      wall-clock budget) and then excluded; its pending tasks rejoin
      the pool and land on the survivors in the next round.  Only when
      every lane is excluded does the call raise
      :class:`~repro.errors.TransportError`.  Worker-side *task*
      exceptions are re-raised as-is — a bug in the task is the caller's
      problem, not a lane failure, and must not trigger retries.
    * **straggler mitigation** (``request_timeout > 0``) — a lane whose
      reply misses its deadline is not failed but marked *suspect*: its
      channel is kept (the partial frame stays buffered client-side, so
      the stream never desyncs), its pending tasks are speculatively
      re-dispatched to the live lanes, and the suspect is polled for the
      late reply.  First result per task wins; task functions are pure,
      so either copy is bitwise identical and results match serial.  A
      suspect silent past its grace window is reconnected (a hung
      *handler* on a live daemon is cured by a fresh connection) or
      excluded.  ``request_timeout=0`` (the default) disables deadlines
      entirely — replies are awaited forever, the pre-elastic behaviour.
    * **membership** — :meth:`add_worker` attaches lanes at runtime,
      :meth:`remove_worker` drains them; ``degree`` tracks the live
      count, which is what lets the sharded backend re-plan between
      sweeps without restarting inference.
    * **chunked broadcast** (``chunk_bytes > 0``) — payloads above the
      chunk size are split into content-hashed chunks kept in a
      client-side object store; a lane is armed by probing which digests
      its daemon already holds and shipping only the missing ones, so a
      reconnecting or replacement daemon with a warm chunk cache costs a
      probe instead of the full blob.

    The executor never owns daemon lifetime: :meth:`close` releases the
    broadcast state it installed and drops its connections, leaving the
    daemons up for the next client.
    """

    kind = "remote"

    def __init__(
        self,
        workers: Sequence[str],
        *,
        connect_timeout: float = 5.0,
        reconnects: int = 1,
        channel_factory: Optional[Callable[[int, str, int], object]] = None,
        request_timeout: float = 0.0,
        straggler_grace: Optional[float] = None,
        chunk_bytes: int = _transport.DEFAULT_BROADCAST_CHUNK_BYTES,
        reconnect_backoff: float = 0.05,
        reconnect_budget: float = 5.0,
    ) -> None:
        if not workers:
            raise ConfigurationError(
                "remote executor needs at least one worker address "
                "('host:port'); start daemons with "
                "`python -m repro.worker --listen host:port`"
            )
        if request_timeout < 0:
            raise ConfigurationError("request_timeout cannot be negative")
        if chunk_bytes < 0:
            raise ConfigurationError("chunk_bytes cannot be negative")
        self._reconnects = int(reconnects)
        self._connect_timeout = float(connect_timeout)
        self._channel_factory = channel_factory
        self._request_timeout = float(request_timeout)
        #: how long a suspect lane may stay silent before it is
        #: reconnected/excluded; defaults to two more request timeouts.
        self._straggler_grace = (
            float(straggler_grace)
            if straggler_grace is not None
            else 2.0 * self._request_timeout
        )
        self._chunk_bytes = int(chunk_bytes)
        self._reconnect_backoff = float(reconnect_backoff)
        self._reconnect_budget = float(reconnect_budget)
        #: jitter desynchronises reconnect storms across clients; seeded
        #: so a test run's delay sequence is reproducible.
        self._backoff_jitter = random.Random(0x5EED)
        self._lanes: List[_Lane] = []
        #: monotonic lane index: never reused after remove_worker, so
        #: (lane, attempt) keying in channel factories stays unambiguous.
        self._next_lane_index = 0
        for address in workers:
            self._attach_lane(address)
        self._payloads: Dict[str, bytes] = {}
        #: content-addressed object store: chunk digest → raw bytes,
        #: refcounted across the broadcast keys whose manifests share them.
        self._manifests: Dict[str, List[bytes]] = {}
        self._chunk_store: Dict[bytes, bytes] = {}
        self._chunk_refs: Dict[bytes, int] = {}
        #: distinguishes which _dispatch call a harvested late reply
        #: belongs to — replies for finished calls are discarded.
        self._dispatch_token = 0
        self._closed = False
        #: exact frame bytes spent on broadcast requests (including
        #: re-broadcasts after failures) — deterministic, benchmarked.
        self.broadcast_sent_bytes = 0
        self._retired_sent = 0
        self._retired_received = 0

    def _attach_lane(self, address: str) -> _Lane:
        lane = _Lane(self._next_lane_index, address, self._reconnects)
        self._next_lane_index += 1
        self._lanes.append(lane)
        return lane

    # ----------------------------------------------------------- telemetry

    @property
    def degree(self) -> int:  # type: ignore[override]
        """Live lanes.  Excluded lanes stop counting, so shard-count and
        chunk-split decisions taken after a failure see the real capacity
        (``CPAConfig.resolve_backend`` sizes K from this)."""
        return sum(1 for lane in self._lanes if not lane.dead)

    @property
    def sent_bytes(self) -> int:
        """Total frame bytes sent over every channel this executor opened."""
        return self._retired_sent + sum(
            lane.channel.sent_bytes
            for lane in self._lanes
            if lane.channel is not None
        )

    @property
    def received_bytes(self) -> int:
        return self._retired_received + sum(
            lane.channel.received_bytes
            for lane in self._lanes
            if lane.channel is not None
        )

    def live_workers(self) -> List[str]:
        """Addresses of the lanes not (yet) excluded."""
        return [lane.address for lane in self._lanes if not lane.dead]

    # ------------------------------------------------------ lane lifecycle

    def add_worker(self, address: str) -> None:
        """Attach a replacement/extra worker daemon as a new lane.

        The new lane holds no broadcast state; every key it needs is
        re-broadcast from the client's retained copy the first time a
        ``map_on`` task lands on it.
        """
        self._check_open()
        self._attach_lane(address)

    def remove_worker(self, address: str) -> None:
        """Drain and detach the lane for ``address`` at runtime.

        Drain semantics: an in-flight straggler reply is settled first
        (so no result computed for a live call is lost), the daemon's
        resident payloads installed by *this* client are released
        best-effort, and the lane leaves the pool — the daemon itself
        stays up for other clients.  Removing an address this executor
        does not hold, or the last non-excluded lane, raises
        :class:`~repro.errors.ConfigurationError` — a fleet of zero
        lanes cannot make progress and must be refused loudly.
        """
        self._check_open()
        host, port = _transport.parse_address(address)
        normalized = _transport.format_address(host, port)
        lane = next(
            (ln for ln in self._lanes if ln.address == normalized), None
        )
        if lane is None:
            raise ConfigurationError(
                f"no lane for worker {normalized!r} on this {self.kind} "
                f"executor; current lanes: {self.live_workers()}"
            )
        if not lane.dead and all(
            ln.dead for ln in self._lanes if ln is not lane
        ):
            raise ConfigurationError(
                f"cannot remove {normalized!r}: it is the last live lane "
                f"of this {self.kind} executor; attach a replacement with "
                "add_worker() first"
            )
        if lane.health == "suspect":
            self._settle_suspects(only=lane)
        if not lane.dead and lane.channel is not None:
            for key in sorted(lane.resident_keys):
                try:
                    _transport.request(
                        lane.channel,
                        ("release", key),
                        timeout=self._request_timeout or None,
                    )
                except TransportError:
                    break  # drain is best-effort; the lane leaves anyway
        self._drop_channel(lane)
        self._lanes.remove(lane)

    def _live_lanes(self) -> List[_Lane]:
        """Member (non-excluded) lanes, suspects included; loud if none."""
        lanes = [lane for lane in self._lanes if not lane.dead]
        if not lanes:
            raise TransportError(
                "all remote workers are gone (every lane was excluded after "
                "its reconnect budget); attach replacements with add_worker() "
                "or restart the daemons and build a fresh executor"
            )
        return lanes

    def _scatter_lanes(self) -> List[_Lane]:
        """Lanes that may be sent new work right now (live, not suspect —
        a suspect's channel still owes a reply, so a new request on it
        would interleave frames)."""
        return [
            lane
            for lane in self._lanes
            if not lane.dead and lane.health == "live"
        ]

    def _connect_lane(self, lane: _Lane) -> None:
        if lane.channel is not None:
            return
        if self._channel_factory is not None:
            lane.channel = self._channel_factory(lane.index, lane.host, lane.port)
        else:
            lane.channel = _transport.connect(
                lane.host, lane.port, timeout=self._connect_timeout
            )

    def _drop_channel(self, lane: _Lane) -> None:
        if lane.channel is not None:
            self._retired_sent += lane.channel.sent_bytes
            self._retired_received += lane.channel.received_bytes
            lane.channel.close()
            lane.channel = None

    def _fail_lane(self, lane: _Lane) -> None:
        """Channel failure: reconnect within budget, else exclude the lane.

        ``resident_keys`` is kept across reconnects — if the daemon
        actually lost state (it died and something respawned it on the
        same address), its ``stale`` replies trigger re-broadcast anyway.

        Reconnect attempts after the first back off exponentially with
        jitter (base ``reconnect_backoff``, capped at 2 s per gap) under
        a total wall-clock budget (``reconnect_budget``) — a refused
        port must not be hammered in a tight loop, and a network that
        stays down must not stall the caller unboundedly.
        """
        self._drop_channel(lane)
        lane.health = "live"
        lane.outstanding = None
        deadline = time.monotonic() + self._reconnect_budget
        attempt = 0
        while lane.reconnects_left > 0:
            if attempt > 0:
                gap = min(2.0, self._reconnect_backoff * (2 ** (attempt - 1)))
                gap *= 0.5 + self._backoff_jitter.random()  # [0.5x, 1.5x)
                if time.monotonic() + gap > deadline:
                    break  # out of wall-clock budget: exclude
                _sleep(gap)
            attempt += 1
            lane.reconnects_left -= 1
            try:
                self._connect_lane(lane)
                return
            except TransportError:
                self._drop_channel(lane)
        lane.dead = True

    # ----------------------------------------------------------- stragglers

    def _settle_suspects(self, only: Optional[_Lane] = None) -> None:
        """Block until no suspect lane remains (reply harvested, lane
        reconnected, or lane excluded).  Public entry points that write
        to channels (broadcast, remove_worker) call this first — a
        suspect's channel owes a reply, and writing a new request before
        it lands would interleave frames."""
        while True:
            suspects = [
                lane
                for lane in self._lanes
                if not lane.dead
                and lane.health == "suspect"
                and (only is None or lane is only)
            ]
            if not suspects:
                return
            self._poll_suspects(block=True, only=only)

    def _poll_suspects(
        self, block: bool = False, only: Optional[_Lane] = None
    ) -> List[Tuple[int, List[int], List]]:
        """Try to collect late replies from suspect lanes.

        Non-blocking by default (one poll per suspect); ``block=True``
        waits up to the request timeout per suspect.  A suspect whose
        grace window has expired is reconnected (fresh channel — which
        cures a hung handler thread on an otherwise-live daemon) or
        excluded by :meth:`_fail_lane`.  Returns the settled replies as
        ``(dispatch token, task indices, values)`` triples; the caller
        decides whether a triple belongs to the dispatch call it is
        currently assembling or is a stale leftover to discard.
        """
        settled: List[Tuple[int, List[int], List]] = []
        for lane in list(self._lanes):
            if lane.dead or lane.health != "suspect":
                continue
            if only is not None and lane is not only:
                continue
            timeout = (self._request_timeout or 1.0) if block else 0.0
            try:
                reply = lane.channel.recv(timeout=timeout)
            except _transport.LaneTimeout:
                if time.monotonic() >= lane.suspect_deadline:
                    self._fail_lane(lane)  # resets health/outstanding
                continue
            except TransportError:
                self._fail_lane(lane)
                continue
            outcome = self._settle_reply(lane, reply)
            if outcome is not None:
                settled.append(outcome)
        return settled

    def _settle_reply(
        self, lane: _Lane, reply: object
    ) -> Optional[Tuple[int, List[int], List]]:
        """A suspect lane finally answered: recover it to *live* and
        decide whether the reply's values are usable."""
        token, indices, key = lane.outstanding
        lane.outstanding = None
        lane.health = "live"
        lane.suspect_deadline = 0.0
        try:
            values = _transport.unwrap_reply(reply)
        except _transport.StaleBroadcast:
            lane.resident_keys.discard(key)
            return None
        except TransportError:
            self._fail_lane(lane)
            return None
        except Exception:  # noqa: BLE001 - late worker task error
            # The task was (or will be) speculatively re-run on a live
            # lane; task functions are pure, so that copy raises the
            # same error deterministically if the call still cares.
            return None
        if not isinstance(values, list) or len(values) != len(indices):
            self._fail_lane(lane)
            return None
        return (token, list(indices), values)

    # ----------------------------------------------------- broadcast store

    def _store_payload(self, key: str, blob: bytes) -> None:
        """Retain ``blob`` client-side; chunk it into the object store
        when it crosses the chunk threshold (small payloads ship
        monolithically — a probe round-trip would cost more than it
        saves)."""
        self._release_chunks(key)
        self._payloads[key] = blob
        if self._chunk_bytes > 0 and len(blob) > self._chunk_bytes:
            digests: List[bytes] = []
            for chunk in _transport.split_chunks(blob, self._chunk_bytes):
                digest = _transport.chunk_digest(chunk)
                digests.append(digest)
                self._chunk_refs[digest] = self._chunk_refs.get(digest, 0) + 1
                self._chunk_store.setdefault(digest, chunk)
            self._manifests[key] = digests

    def _release_chunks(self, key: str) -> None:
        for digest in self._manifests.pop(key, ()):
            refs = self._chunk_refs.get(digest, 0) - 1
            if refs <= 0:
                self._chunk_refs.pop(digest, None)
                self._chunk_store.pop(digest, None)
            else:
                self._chunk_refs[digest] = refs

    def _install_payload(self, lane: _Lane, key: str) -> None:
        """Arm one connected lane with the payload under ``key``,
        accounting the exact broadcast bytes spent."""
        before = lane.channel.sent_bytes
        try:
            if key in self._manifests:
                self._install_chunked(lane, key)
            else:
                _transport.request(
                    lane.channel,
                    ("broadcast", key, self._payloads[key]),
                    timeout=self._request_timeout or None,
                )
        finally:
            if lane.channel is not None:
                self.broadcast_sent_bytes += lane.channel.sent_bytes - before
        lane.resident_keys.add(key)

    def _install_chunked(self, lane: _Lane, key: str) -> None:
        """Content-addressed install: probe, ship missing chunks
        (pipelined), assemble.  A daemon that still holds the chunks —
        replacement on a warm cache, payload-LRU churn — pays only the
        probe."""
        timeout = self._request_timeout or None
        channel = lane.channel
        digests = self._manifests[key]
        missing = _transport.request(
            channel, ("chunk_probe", list(digests)), timeout=timeout
        )
        if not isinstance(missing, list):
            raise TransportError(
                f"malformed chunk_probe reply: {missing!r}"
            )
        for digest in missing:
            channel.send(("chunk_put", digest, self._chunk_store[digest]))
        channel.send(("chunk_assemble", key, list(digests)))
        # drain all replies before raising anything: the channel must
        # stay aligned (a TransportError is exempt — the caller drops
        # the channel, so leftover replies die with it)
        deferred_error: Optional[BaseException] = None
        for _ in missing:
            try:
                _transport.unwrap_reply(channel.recv(timeout=timeout))
            except TransportError:
                raise
            except Exception as exc:  # noqa: BLE001 - daemon-side put error
                if deferred_error is None:
                    deferred_error = exc
        need_fallback = False
        try:
            _transport.unwrap_reply(channel.recv(timeout=timeout))
        except _transport.ChunksMissing:
            # evicted between probe and assemble (undersized daemon
            # cache): one bounded fallback to the monolithic path
            need_fallback = True
        except TransportError:
            raise
        except Exception as exc:  # noqa: BLE001 - assemble error deferred past drain
            if deferred_error is None:
                deferred_error = exc
        if deferred_error is not None:
            raise deferred_error
        if need_fallback:
            _transport.request(
                channel,
                ("broadcast", key, self._payloads[key]),
                timeout=timeout,
            )

    # ------------------------------------------------------------ dispatch

    def _ensure_resident(self, lane: _Lane, key: str) -> None:
        """Connect the lane and (re-)broadcast ``key`` if it lacks it."""
        self._connect_lane(lane)
        if key is None or key in lane.resident_keys:
            return
        self._install_payload(lane, key)

    def _dispatch(
        self,
        make_message: Callable[[List], tuple],
        tasks: Sequence,
        key: Optional[str] = None,
    ) -> List:
        """Scatter ``tasks`` over live lanes, gather results in task order.

        Rounds repeat until every task has a result; each round excludes
        (or reconnects) the lanes that failed, so the loop terminates —
        lane reconnect budgets are finite, suspect grace windows are
        finite, and the stale-broadcast budget bounds daemon-side
        eviction churn.

        Straggler rule: a lane that misses its reply deadline goes
        *suspect* and its tasks stay pending, to be speculatively
        re-dispatched to the live lanes next round.  Harvested late
        replies fill only still-open slots (first result per task wins);
        since task functions are pure, the speculative copy and the late
        original are bitwise identical, so dedup cannot change results.
        """
        results: List = [None] * len(tasks)
        done = [False] * len(tasks)
        pending = list(range(len(tasks)))
        stale_budget = 4 + 2 * len(self._lanes)
        self._dispatch_token += 1
        token = self._dispatch_token
        while pending:
            # settle stragglers first: a late reply may retire pending
            # tasks, and an expired grace reconnects/excludes the lane.
            # Block only when no lane is available for new work —
            # progress then depends entirely on the suspects.
            block = not self._scatter_lanes()
            for s_token, indices, values in self._poll_suspects(block=block):
                if s_token != token:
                    continue  # a finished call's reply: long since recomputed
                for index, value in zip(indices, values):
                    if not done[index]:
                        results[index] = value
                        done[index] = True
            pending = [index for index in pending if not done[index]]
            if not pending:
                break
            lanes = self._scatter_lanes()
            if not lanes:
                if any(
                    lane.health == "suspect" for lane in self._live_lanes()
                ):
                    continue  # only suspects remain: keep harvesting
                continue  # _live_lanes() raised if truly nobody is left
            sent: List[Tuple[_Lane, List[int]]] = []
            send_error: Optional[BaseException] = None
            for offset, lane in enumerate(lanes):
                indices = pending[offset :: len(lanes)]
                if not indices:
                    continue
                try:
                    self._ensure_resident(lane, key)
                    lane.channel.send(make_message([tasks[i] for i in indices]))
                except TransportError:
                    self._fail_lane(lane)
                    continue
                except Exception as exc:  # noqa: BLE001 - worker err reply
                    # An in-dispatch re-broadcast can come back ("err", ...)
                    # (the daemon failed to unpickle the payload).  Stop
                    # sending, but the raise must wait until every
                    # already-sent lane has been drained below — an early
                    # raise would leave replies in their sockets and
                    # desync those channels.
                    send_error = exc
                    break
                sent.append((lane, indices))
            # Any error discovered while reading replies is raised only
            # *after* every sent lane has been drained: an early raise
            # would leave the other lanes' replies sitting in their
            # sockets, desyncing those channels (the next request would
            # read this call's leftover reply as its own).
            deferred_error: Optional[BaseException] = None
            for lane, indices in sent:
                try:
                    reply = lane.channel.recv(
                        timeout=self._request_timeout or None
                    )
                except _transport.LaneTimeout:
                    # straggler: channel kept (partial frame buffered),
                    # tasks stay pending for speculative re-dispatch
                    lane.health = "suspect"
                    lane.outstanding = (token, list(indices), key)
                    lane.suspect_deadline = (
                        time.monotonic() + self._straggler_grace
                    )
                    continue
                except TransportError:
                    self._fail_lane(lane)
                    continue
                try:
                    values = _transport.unwrap_reply(reply)
                except _transport.StaleBroadcast:
                    # The daemon evicted (or never had) the payload: the
                    # next round re-broadcasts from the retained copy.
                    lane.resident_keys.discard(key)
                    stale_budget -= 1
                    if stale_budget < 0 and deferred_error is None:
                        deferred_error = TransportError(
                            f"broadcast key {key!r} keeps getting evicted by "
                            "the worker daemons; raise their --payload-cap"
                        )
                    continue
                except TransportError:
                    # malformed envelope: the lane is broken/version-skewed,
                    # same treatment as a short reply below
                    self._fail_lane(lane)
                    continue
                except Exception as exc:  # noqa: BLE001 - worker task error
                    # A *task* exception is the caller's bug, not a lane
                    # failure; no retry.
                    if deferred_error is None:
                        deferred_error = exc
                    continue
                if not isinstance(values, list) or len(values) != len(indices):
                    # Reply-shape protocol violation (version-skewed or
                    # buggy daemon): a silent zip-truncation would strand
                    # the surplus tasks in an endless re-dispatch loop, so
                    # distrust the lane instead — its tasks stay pending
                    # and land elsewhere (or the call fails loudly when
                    # no lane survives).
                    self._fail_lane(lane)
                    continue
                for index, value in zip(indices, values):
                    results[index] = value
                    done[index] = True
            if send_error is not None:
                raise send_error
            if deferred_error is not None:
                raise deferred_error
            pending = [index for index in pending if not done[index]]
        return results

    # ------------------------------------------------------- lane contract

    def map_chunks(self, func: Callable[[Sequence[int]], R], n: int) -> List[R]:
        self._check_open()
        chunks = split_chunks(n, len(self._live_lanes()))
        return self.map_tasks(func, chunks)

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        self._check_open()
        return self._dispatch(
            lambda lane_tasks: ("map_tasks", func, lane_tasks), tasks
        )

    def broadcast(self, key: str, payload: object) -> None:
        blob = _transport.dumps(payload)
        self._check_open()
        # a suspect's channel owes a reply; settle before writing to it
        self._settle_suspects()
        self._store_payload(key, blob)
        for lane in self._lanes:
            # a re-broadcast replaces the payload everywhere: stale lane
            # copies must never be addressed again
            lane.resident_keys.discard(key)
        # Lanes are armed sequentially: the chunked install is a
        # conversation (probe → ship missing → assemble), not a single
        # push, so cross-lane send pipelining would interleave frames.
        # The tradeoff is deliberate — the shared client NIC serialises
        # the bulk transfer anyway, and the dedup typically removes far
        # more wire time than overlap could (DESIGN.md §6).
        deferred_error: Optional[BaseException] = None
        for lane in self._live_lanes():
            if lane.health != "live":
                continue  # settled above; only a freshly-failed race lands here
            try:
                self._connect_lane(lane)
                self._install_payload(lane, key)
            except TransportError:
                self._fail_lane(lane)
                continue
            except Exception as exc:  # noqa: BLE001 - daemon failed to load
                if deferred_error is None:
                    deferred_error = exc
                continue
        if deferred_error is not None:
            raise deferred_error
        self._live_lanes()  # loud if the broadcast left no lane standing

    def map_on(
        self, key: str, func: Callable[[Any, T], R], tasks: Sequence[T]
    ) -> List[R]:
        self._check_open()
        if key not in self._payloads:
            raise self._missing_key(key)
        return self._dispatch(
            lambda lane_tasks: ("map_on", key, func, lane_tasks), tasks, key=key
        )

    def release(self, key: str) -> None:
        """Best-effort: drop the retained copy and the daemons' copies.

        Cleanup must never raise — a lane that fails here is simply left
        for the regular retry path to deal with on next use.
        """
        if self._closed:
            return
        self._payloads.pop(key, None)
        self._release_chunks(key)
        for lane in self._lanes:
            if lane.dead or lane.channel is None or lane.health != "live":
                # a suspect's channel owes a reply — skip the wire op
                # (best-effort cleanup; the daemon LRU reclaims it)
                lane.resident_keys.discard(key)
                continue
            if key in lane.resident_keys:
                try:
                    _transport.request(
                        lane.channel,
                        ("release", key),
                        timeout=self._request_timeout or None,
                    )
                except TransportError:
                    self._drop_channel(lane)
                lane.resident_keys.discard(key)

    def close(self) -> None:
        """Release installed broadcast state, drop connections; idempotent.

        The worker daemons stay up — their lifetime belongs to whoever
        launched them, not to this client.
        """
        if self._closed:
            return
        for key in list(self._payloads):
            self.release(key)
        self._closed = True
        for lane in self._lanes:
            self._drop_channel(lane)


def make_executor(
    kind: str = "serial",
    degree: int | None = None,
    workers: Sequence[str] | None = None,
    request_timeout: float | None = None,
) -> Executor:
    """Factory: ``kind`` must be one of :data:`EXECUTOR_KINDS`.

    An unknown ``kind`` raises :class:`~repro.errors.ConfigurationError`
    naming the valid choices — misconfiguration must fail loudly at the
    seam, not surface later as an attribute error on ``None``.  A
    ``degree`` below 1 is rejected the same way for *every* kind (the
    serial backend used to swallow it silently).  ``workers`` (a list of
    ``"host:port"`` daemon addresses) is required by — and only
    meaningful for — the ``"remote"`` kind; ``degree`` there optionally
    caps how many of the listed daemons become lanes, and
    ``request_timeout`` (seconds; 0 disables) sets the per-request reply
    deadline behind the straggler mitigation.
    """
    if degree is not None and degree < 1:
        raise ConfigurationError(
            f"degree must be at least 1 for the {kind!r} executor, got {degree}"
        )
    if workers is not None and kind != "remote":
        raise ConfigurationError(
            f"worker addresses only apply to the 'remote' executor, "
            f"not {kind!r}"
        )
    if request_timeout is not None and kind != "remote":
        raise ConfigurationError(
            f"request_timeout only applies to the 'remote' executor, "
            f"not {kind!r}"
        )
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(degree)
    if kind == "process":
        return ProcessExecutor(degree)
    if kind == "remote":
        if not workers:
            raise ConfigurationError(
                "the 'remote' executor needs worker addresses "
                "(workers=['host:port', ...]); start daemons with "
                "`python -m repro.worker --listen host:port`"
            )
        lanes = list(workers)[:degree] if degree else list(workers)
        if request_timeout is None:
            return RemoteExecutor(lanes)
        return RemoteExecutor(lanes, request_timeout=request_timeout)
    raise ConfigurationError(
        f"unknown executor kind {kind!r}; expected one of {', '.join(EXECUTOR_KINDS)}"
    )
