"""Execution backends for the MapReduce-style inference of paper Alg. 3.

The paper parallelises the *local* variational updates (the MAP phase) over
workers and reduces the global statistics centrally.  This module provides
interchangeable executors with that exact contract:

* :class:`SerialExecutor` — baseline, zero overhead.
* :class:`ThreadExecutor` — threads; useful when the map function releases
  the GIL (large BLAS calls).
* :class:`ProcessExecutor` — a process pool; true scale-up on multicore
  machines, used by the Fig-7 runtime experiment.

Executors map a function over *chunks* of an index range so per-task
overhead is amortised, mirroring how Alg. 3 shards the answer matrix by
worker key.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Sequence, TypeVar

from repro.errors import ConfigurationError, ValidationError

#: executor kinds :func:`make_executor` understands.
EXECUTOR_KINDS = ("serial", "thread", "process")

T = TypeVar("T")
R = TypeVar("R")


def split_chunks(n: int, parts: int) -> List[range]:
    """Split ``range(n)`` into at most ``parts`` contiguous, balanced ranges."""
    if n < 0:
        raise ValidationError("n must be non-negative")
    if parts <= 0:
        raise ValidationError("parts must be positive")
    parts = min(parts, n) if n > 0 else 0
    chunks: List[range] = []
    base, extra = divmod(n, parts) if parts else (0, 0)
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


class Executor:
    """Maps work over chunks or explicit task lists; see module docstring."""

    #: number of parallel lanes the executor exposes (1 for serial).
    degree: int = 1

    def map_chunks(
        self, func: Callable[[Sequence[int]], R], n: int
    ) -> List[R]:
        """Apply ``func`` to each chunk of ``range(n)`` and collect results."""
        raise NotImplementedError

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Apply ``func`` to each prepared task (one task per lane, ideally).

        Unlike :meth:`map_chunks`, the caller pre-slices the data so a
        process backend ships only each lane's share — the pattern the
        SVI MAP phase uses.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources; idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run every chunk in the calling thread (the default backend)."""

    degree = 1

    def map_chunks(self, func: Callable[[Sequence[int]], R], n: int) -> List[R]:
        return [func(chunk) for chunk in split_chunks(n, 1)]

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        return [func(task) for task in tasks]


class ThreadExecutor(Executor):
    """Thread-pool backend; ``degree`` threads over ``degree`` chunks.

    The pool is created lazily on first use, so constructing an executor
    that is never exercised cannot leak worker threads.
    """

    def __init__(self, degree: int | None = None) -> None:
        if degree is not None and degree <= 0:
            raise ValidationError("degree must be positive")
        self.degree = int(degree or os.cpu_count() or 1)
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._closed:
            raise RuntimeError("executor has been closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.degree)
        return self._pool

    def map_chunks(self, func: Callable[[Sequence[int]], R], n: int) -> List[R]:
        chunks = split_chunks(n, self.degree)
        return list(self._ensure_pool().map(func, chunks))

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        return list(self._ensure_pool().map(func, tasks))

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(Executor):
    """Process-pool backend used for the scalability experiments.

    Task payloads are pickled to the worker processes on every call, so
    this backend only pays off when each task carries substantial compute
    relative to its data — exactly the regime of paper Fig 7.
    """

    def __init__(self, degree: int | None = None) -> None:
        if degree is not None and degree <= 0:
            raise ValidationError("degree must be positive")
        self.degree = int(degree or os.cpu_count() or 1)
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False

    def _ensure_pool(self) -> ProcessPoolExecutor:
        # Lazy: forking worker processes is expensive and constructing an
        # executor must never leak them if it goes unused.
        if self._closed:
            raise RuntimeError("executor has been closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.degree)
        return self._pool

    def map_chunks(self, func: Callable[[Sequence[int]], R], n: int) -> List[R]:
        chunks = split_chunks(n, self.degree)
        return list(self._ensure_pool().map(func, chunks))

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        return list(self._ensure_pool().map(func, tasks))

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(kind: str = "serial", degree: int | None = None) -> Executor:
    """Factory: ``kind`` must be one of :data:`EXECUTOR_KINDS`.

    An unknown ``kind`` raises :class:`~repro.errors.ConfigurationError`
    naming the valid choices — misconfiguration must fail loudly at the
    seam, not surface later as an attribute error on ``None``.
    """
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(degree)
    if kind == "process":
        return ProcessExecutor(degree)
    raise ConfigurationError(
        f"unknown executor kind {kind!r}; expected one of {', '.join(EXECUTOR_KINDS)}"
    )
