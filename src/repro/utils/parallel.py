"""Execution backends for the MapReduce-style inference of paper Alg. 3.

The paper parallelises the *local* variational updates (the MAP phase) over
workers and reduces the global statistics centrally.  This module provides
interchangeable executors with that exact contract:

* :class:`SerialExecutor` — baseline, zero overhead.
* :class:`ThreadExecutor` — threads; useful when the map function releases
  the GIL (large BLAS calls).
* :class:`ProcessExecutor` — a process pool; true scale-up on multicore
  machines, used by the Fig-7 runtime experiment.

Executors map a function over *chunks* of an index range so per-task
overhead is amortised, mirroring how Alg. 3 shards the answer matrix by
worker key.

Stateful lanes (DESIGN.md §6 "Lane-resident shard state"): every executor
additionally supports :meth:`Executor.broadcast` /
:meth:`Executor.map_on`, the pair the sharded sweep backend uses to keep
large read-only payloads (shard kernels) resident at the lanes so that
per-sweep tasks carry only the small updated posteriors.  Serial and
thread backends hold broadcast state in-process; the process backend
spills each payload to a per-executor scratch file and installs a
path registry into every worker via the pool initializer (spawn-safe —
nothing relies on fork inheritance), with workers lazily unpickling a
payload the first time a ``map_on`` task lands on them.  Broadcasting
after the pool is up therefore never recycles worker processes: the new
payload's path rides along with the next ``map_on`` call.  All broadcast
state — registry, scratch files, and the worker processes holding
unpickled copies — is released by :meth:`Executor.close`.
"""

from __future__ import annotations

import functools
import os
import pickle
import shutil
import tempfile
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError, ValidationError

#: executor kinds :func:`make_executor` understands.
EXECUTOR_KINDS = ("serial", "thread", "process")

T = TypeVar("T")
R = TypeVar("R")


def split_chunks(n: int, parts: int) -> List[range]:
    """Split ``range(n)`` into at most ``parts`` contiguous, balanced ranges.

    ``n == 0`` yields **no** chunks (``[]``), so :meth:`Executor.map_chunks`
    over an empty index range returns an empty result list — callers that
    fold the pieces must treat "no pieces" as the identity of their
    reduction (all in-repo callers do; ``tests/test_utils_misc.py`` pins
    the contract so a reduction step cannot be dropped silently).
    """
    if n < 0:
        raise ValidationError("n must be non-negative")
    if parts <= 0:
        raise ValidationError("parts must be positive")
    parts = min(parts, n) if n > 0 else 0
    chunks: List[range] = []
    base, extra = divmod(n, parts) if parts else (0, 0)
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


class Executor:
    """Maps work over chunks, explicit task lists, or lane-resident state."""

    #: number of parallel lanes the executor exposes (1 for serial).
    degree: int = 1

    #: executor kind, used by error messages (loud-failure policy).
    kind: str = "abstract"

    def map_chunks(
        self, func: Callable[[Sequence[int]], R], n: int
    ) -> List[R]:
        """Apply ``func`` to each chunk of ``range(n)`` and collect results."""
        raise NotImplementedError

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Apply ``func`` to each prepared task (one task per lane, ideally).

        Unlike :meth:`map_chunks`, the caller pre-slices the data so a
        process backend ships only each lane's share — the pattern the
        SVI MAP phase uses.
        """
        raise NotImplementedError

    # ------------------------------------------------------------ resident

    def broadcast(self, key: str, payload: object) -> None:
        """Install ``payload`` as lane-resident state under ``key``.

        The payload becomes available to every lane for subsequent
        :meth:`map_on` calls; re-broadcasting a key replaces its payload.
        Process lanes receive the payload **once** (not per task), which
        is the point: a sharded sweep broadcasts its shard kernels once
        per plan and then ships only small per-sweep posteriors.
        """
        raise NotImplementedError

    def map_on(
        self, key: str, func: Callable[[Any, T], R], tasks: Sequence[T]
    ) -> List[R]:
        """Apply ``func(payload, task)`` per task against the resident payload.

        ``payload`` is the object last :meth:`broadcast` under ``key``;
        an unknown key raises :class:`~repro.errors.ConfigurationError`.
        Results preserve task order (the fixed-order merge contract of
        the sharded backend relies on this).
        """
        raise NotImplementedError

    def release(self, key: str) -> None:
        """Drop the resident payload under ``key`` (missing keys are a no-op)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources **and all broadcast state**; idempotent."""

    def _check_open(self) -> None:
        if getattr(self, "_closed", False):
            raise ConfigurationError(
                f"{self.kind} executor has been closed; create a fresh "
                "executor (closed pools evict their broadcast state and "
                "never restart)"
            )

    def _missing_key(self, key: str) -> ConfigurationError:
        return ConfigurationError(
            f"no broadcast state under key {key!r} on this {self.kind} "
            "executor; call broadcast() first (state is evicted on close())"
        )

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run every chunk in the calling thread (the default backend)."""

    degree = 1
    kind = "serial"

    def __init__(self) -> None:
        self._resident: Dict[str, object] = {}
        self._closed = False

    def map_chunks(self, func: Callable[[Sequence[int]], R], n: int) -> List[R]:
        self._check_open()
        return [func(chunk) for chunk in split_chunks(n, 1)]

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        self._check_open()
        return [func(task) for task in tasks]

    def broadcast(self, key: str, payload: object) -> None:
        self._check_open()
        self._resident[key] = payload

    def map_on(
        self, key: str, func: Callable[[Any, T], R], tasks: Sequence[T]
    ) -> List[R]:
        self._check_open()
        if key not in self._resident:
            raise self._missing_key(key)
        payload = self._resident[key]
        return [func(payload, task) for task in tasks]

    def release(self, key: str) -> None:
        self._resident.pop(key, None)

    def close(self) -> None:
        self._closed = True
        self._resident.clear()


class ThreadExecutor(Executor):
    """Thread-pool backend; ``degree`` threads over ``degree`` chunks.

    The pool is created lazily on first use, so constructing an executor
    that is never exercised cannot leak worker threads.  Broadcast state
    lives in-process (threads share the address space), so :meth:`map_on`
    hands every worker the same payload object by reference.
    """

    kind = "thread"

    def __init__(self, degree: int | None = None) -> None:
        if degree is not None and degree <= 0:
            raise ValidationError("degree must be positive")
        self.degree = int(degree or os.cpu_count() or 1)
        self._pool: ThreadPoolExecutor | None = None
        self._resident: Dict[str, object] = {}
        self._closed = False

    def _ensure_pool(self) -> ThreadPoolExecutor:
        self._check_open()
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.degree)
        return self._pool

    def map_chunks(self, func: Callable[[Sequence[int]], R], n: int) -> List[R]:
        chunks = split_chunks(n, self.degree)
        return list(self._ensure_pool().map(func, chunks))

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        return list(self._ensure_pool().map(func, tasks))

    def broadcast(self, key: str, payload: object) -> None:
        self._check_open()
        self._resident[key] = payload

    def map_on(
        self, key: str, func: Callable[[Any, T], R], tasks: Sequence[T]
    ) -> List[R]:
        self._check_open()
        if key not in self._resident:
            # validate before _ensure_pool: a bad key must not cost a pool
            raise self._missing_key(key)
        payload = self._resident[key]
        return list(self._ensure_pool().map(lambda task: func(payload, task), tasks))

    def release(self, key: str) -> None:
        self._resident.pop(key, None)

    def close(self) -> None:
        self._closed = True
        self._resident.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ------------------------------------------------------------ process lanes
#
# Worker-side registry for ProcessExecutor broadcast state.  Each worker
# process holds {spill_path: payload}; keying by the spill file's path (not
# the logical key) makes re-broadcasts self-invalidating — a new payload
# gets a new path, so stale worker copies are simply never addressed again
# (the LRU drops them) and every copy dies with the worker on close().

_WORKER_PAYLOADS: Dict[str, object] = {}

#: resident payloads a worker keeps unpickled at once; older entries are
#: dropped (and reload from their spill file if ever addressed again), so
#: a long stream of per-batch broadcasts cannot grow worker memory without
#: bound.
_WORKER_PAYLOAD_CAP = 8


def _install_worker_payloads(paths: Tuple[str, ...]) -> None:
    """Pool initializer: install every already-broadcast payload.

    Runs once per worker process at start-up (spawn-safe — the paths
    arrive through ``initargs``, nothing relies on fork inheritance), so
    in the common flow — broadcast the plan, then sweep — workers begin
    life with the resident state unpickled.  Payloads broadcast *after*
    the pool is up load lazily on first ``map_on`` touch instead; a path
    released between pool creation and worker start simply no longer
    exists and is skipped (its tasks can never arrive).
    """
    _WORKER_PAYLOADS.clear()
    for path in paths:
        try:
            with open(path, "rb") as handle:
                _WORKER_PAYLOADS[path] = pickle.load(handle)
        except OSError:
            pass


def _resident_call(path: str, key: str, func: Callable[[Any, T], R], task: T) -> R:
    """Run one ``map_on`` task against the worker-resident payload."""
    payload = _WORKER_PAYLOADS.pop(path, None)
    if payload is None:
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except OSError as exc:
            raise ConfigurationError(
                f"broadcast state for key {key!r} is gone ({exc}); it was "
                "evicted — re-broadcast before calling map_on"
            ) from exc
    # Re-insert at the back: the registry doubles as an LRU over payloads.
    _WORKER_PAYLOADS[path] = payload
    while len(_WORKER_PAYLOADS) > _WORKER_PAYLOAD_CAP:
        _WORKER_PAYLOADS.pop(next(iter(_WORKER_PAYLOADS)))
    return func(payload, task)


class ProcessExecutor(Executor):
    """Process-pool backend used for the scalability experiments.

    ``map_tasks`` payloads are pickled to the worker processes on every
    call, so that path only pays off when each task carries substantial
    compute relative to its data — exactly the regime of paper Fig 7.
    ``broadcast`` / ``map_on`` break that trade-off for large *reused*
    payloads: a broadcast pickles its payload once into a per-executor
    scratch file, the pool initializer installs the path registry into
    each worker at start-up (spawn-safe), and workers unpickle a payload
    the first time one of its tasks lands on them.  Re-broadcasting after
    the pool is up never recycles workers — the fresh path travels with
    the next ``map_on`` call — and :meth:`close` removes the scratch
    directory and shuts the workers down, releasing every resident copy.
    """

    kind = "process"

    def __init__(self, degree: int | None = None) -> None:
        if degree is not None and degree <= 0:
            raise ValidationError("degree must be positive")
        self.degree = int(degree or os.cpu_count() or 1)
        self._pool: ProcessPoolExecutor | None = None
        self._resident_paths: Dict[str, str] = {}
        self._scratch_dir: str | None = None
        self._spill_count = 0
        self._closed = False

    def _ensure_pool(self) -> ProcessPoolExecutor:
        # Lazy: forking worker processes is expensive and constructing an
        # executor must never leak them if it goes unused.
        self._check_open()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.degree,
                initializer=_install_worker_payloads,
                initargs=(tuple(self._resident_paths.values()),),
            )
        return self._pool

    def map_chunks(self, func: Callable[[Sequence[int]], R], n: int) -> List[R]:
        chunks = split_chunks(n, self.degree)
        return list(self._ensure_pool().map(func, chunks))

    def map_tasks(self, func: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        return list(self._ensure_pool().map(func, tasks))

    def broadcast(self, key: str, payload: object) -> None:
        self._check_open()
        if self._scratch_dir is None:
            self._scratch_dir = tempfile.mkdtemp(prefix="repro-broadcast-")
            # Abandoned executors (never closed, or interrupted mid-fit)
            # must not leak spilled payloads: the finalizer removes the
            # scratch directory when the executor is collected; close()
            # runs it eagerly.
            self._scratch_finalizer = weakref.finalize(
                self, shutil.rmtree, self._scratch_dir, ignore_errors=True
            )
        # A fresh path per broadcast: worker caches key on the path, so a
        # re-broadcast invalidates stale copies without touching the pool.
        self._spill_count += 1
        path = os.path.join(self._scratch_dir, f"b{self._spill_count}.pkl")
        with open(path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        stale = self._resident_paths.get(key)
        self._resident_paths[key] = path
        if stale is not None and os.path.exists(stale):
            os.unlink(stale)

    def map_on(
        self, key: str, func: Callable[[Any, T], R], tasks: Sequence[T]
    ) -> List[R]:
        self._check_open()
        path = self._resident_paths.get(key)
        if path is None:
            # validate before _ensure_pool: a bad key must not spawn workers
            raise self._missing_key(key)
        call = functools.partial(_resident_call, path, key, func)
        return list(self._ensure_pool().map(call, tasks))

    def release(self, key: str) -> None:
        path = self._resident_paths.pop(key, None)
        if path is not None and os.path.exists(path):
            os.unlink(path)

    def close(self) -> None:
        self._closed = True
        self._resident_paths.clear()
        if self._scratch_dir is not None:
            self._scratch_finalizer()  # rmtree now; finalizer runs once
            self._scratch_dir = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(kind: str = "serial", degree: int | None = None) -> Executor:
    """Factory: ``kind`` must be one of :data:`EXECUTOR_KINDS`.

    An unknown ``kind`` raises :class:`~repro.errors.ConfigurationError`
    naming the valid choices — misconfiguration must fail loudly at the
    seam, not surface later as an attribute error on ``None``.
    """
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(degree)
    if kind == "process":
        return ProcessExecutor(degree)
    raise ConfigurationError(
        f"unknown executor kind {kind!r}; expected one of {', '.join(EXECUTOR_KINDS)}"
    )
