"""Argument-contract helpers.

Small, explicit checks that raise :class:`repro.errors.ValidationError` with
actionable messages.  Used at public API boundaries; internal hot loops trust
their inputs.
"""

from __future__ import annotations

from typing import Any, Type

import numpy as np

from repro.errors import ValidationError


def check_type(name: str, value: Any, expected: Type | tuple[Type, ...]) -> Any:
    """Raise unless ``value`` is an instance of ``expected``; return it."""
    if not isinstance(value, expected):
        names = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise ValidationError(
            f"{name} must be {names}, got {type(value).__name__}"
        )
    return value


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Raise unless ``value`` is a positive (or non-negative) finite number."""
    value = float(value)
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_fraction(name: str, value: float, inclusive: bool = True) -> float:
    """Raise unless ``value`` lies in ``[0, 1]`` (or ``(0, 1)`` if exclusive)."""
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValidationError(f"{name} must lie in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValidationError(f"{name} must lie in (0, 1), got {value}")
    return value


def check_in_range(
    name: str, value: float, low: float, high: float, *, integral: bool = False
) -> float:
    """Raise unless ``low <= value <= high`` (optionally integral)."""
    if integral and int(value) != value:
        raise ValidationError(f"{name} must be an integer, got {value}")
    if not low <= value <= high:
        raise ValidationError(f"{name} must lie in [{low}, {high}], got {value}")
    return value


def check_probability_matrix(name: str, matrix: np.ndarray, axis: int = -1) -> np.ndarray:
    """Raise unless rows of ``matrix`` along ``axis`` are valid distributions."""
    matrix = np.asarray(matrix, dtype=float)
    if np.any(matrix < -1e-9) or np.any(matrix > 1 + 1e-9):
        raise ValidationError(f"{name} entries must lie in [0, 1]")
    sums = matrix.sum(axis=axis)
    if not np.allclose(sums, 1.0, atol=1e-6):
        raise ValidationError(f"{name} rows must sum to 1 along axis {axis}")
    return matrix
