"""Shared low-level utilities: math kernels, RNG plumbing, validation,
parallel execution, and plain-text table rendering.

These modules are internal plumbing for the rest of :mod:`repro`; they carry
no crowdsourcing semantics of their own.
"""

from repro.utils.math import (
    digamma_expectation_dirichlet,
    log_normalize_rows,
    logsumexp,
    normalize_rows,
    softmax_rows,
    stick_breaking_expectations,
    stick_breaking_weights,
)
from repro.utils.random import RandomState, spawn_rngs
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_positive,
    check_probability_matrix,
    check_type,
)

__all__ = [
    "digamma_expectation_dirichlet",
    "log_normalize_rows",
    "logsumexp",
    "normalize_rows",
    "softmax_rows",
    "stick_breaking_expectations",
    "stick_breaking_weights",
    "RandomState",
    "spawn_rngs",
    "format_table",
    "check_fraction",
    "check_in_range",
    "check_positive",
    "check_probability_matrix",
    "check_type",
]
