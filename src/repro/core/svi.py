"""Stochastic variational inference for CPA (paper Alg. 2 and Alg. 3).

Answers arrive as :class:`~repro.data.streams.AnswerBatch` objects; each
batch triggers

1. a **MAP phase** over worker chunks — for each batch worker, the
   community responsibilities ``κ`` (Eq. 2 on the batch answers) and the
   per-item cluster evidence ``a_it`` (Eq. 15's data term), plus partial
   sufficient statistics for the globals;
2. a **REDUCE phase** — accumulation of the partials, the canonical-µ
   update of ``ϕ`` (Eqs. 15–17), and damped natural-gradient steps on all
   globals with learning rate ``ω_b = (1 + b)^-r`` (Eqs. 9–14, 18–20).

With the default :class:`~repro.utils.parallel.SerialExecutor` this *is*
paper Alg. 2; with a process/thread executor the MAP phase fans out over
worker chunks exactly as Alg. 3 prescribes (each worker is a partition
key, globals are reduced centrally and re-broadcast).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.config import CPAConfig
from repro.core.expectations import (
    answer_log_likelihood,
    expected_log_phi_beta,
    expected_log_pi,
    expected_log_psi,
    expected_log_tau,
)
from repro.core.kernels import (
    grouped_matmul,
    grouped_outer,
    mask_cluster_scores,
    segment_sum,
    truncate_rows,
    unique_patterns,
)
from repro.core.natural_gradients import (
    compute_global_targets,
    interpolate,
    learning_rate,
)
from repro.core.sharding import ShardedSweepKernel
from repro.core.state import CPAState, initialize_state
from repro.data.dataset import GroundTruth
from repro.data.streams import AnswerBatch
from repro.errors import ValidationError
from repro.utils.math import log_normalize_rows
from repro.utils.parallel import Executor, split_chunks
from repro.utils.random import Seed


@dataclass(frozen=True)
class _BatchData:
    """Dense views of one batch, with answers sorted by batch worker.

    Sorting makes each worker's answers a contiguous slice, so a chunk of
    workers maps to a contiguous answer range (``worker_offsets``) — the
    layout the MAP phase shards on.  The batch's distinct label-set
    patterns are deduplicated once here (``patterns`` / ``pattern_index``)
    so the MAP phase evaluates the answer log-likelihood in pattern space
    and gathers per answer (DESIGN.md §6).
    """

    items: np.ndarray  # (N_b,) global item ids, worker-sorted
    indicators: np.ndarray  # (N_b, C), worker-sorted
    batch_workers: np.ndarray  # distinct global worker ids (sorted)
    batch_items: np.ndarray  # distinct global item ids (sorted)
    worker_local: np.ndarray  # (N_b,) local worker index per answer
    item_local: np.ndarray  # (N_b,) local item index per answer
    worker_offsets: np.ndarray  # (len(batch_workers)+1,) slice boundaries
    patterns: np.ndarray  # (P, C) distinct label-set patterns
    pattern_index: np.ndarray  # (N_b,) pattern row per answer, worker-sorted
    pattern_order: np.ndarray  # (N_b,) permutation grouping answers by pattern
    pattern_offsets: np.ndarray  # (P+1,) group boundaries in pattern order


def _prepare_batch(
    batch: AnswerBatch,
    dtype: np.dtype = np.float64,
    n_labels: Optional[int] = None,
) -> Optional[_BatchData]:
    items, workers, indicators = batch.matrix.to_arrays()
    if items.size == 0:
        return None
    indicators = np.ascontiguousarray(indicators, dtype=dtype)
    if n_labels is not None and indicators.shape[1] < n_labels:
        # A batch minted before the engine grew its label space (see
        # StochasticInference.grow) carries narrower indicator rows; the
        # missing labels were simply never answered — pad with zeros.
        padded = np.zeros((indicators.shape[0], n_labels), dtype=dtype)
        padded[:, : indicators.shape[1]] = indicators
        indicators = padded
    batch_workers, worker_local = np.unique(workers, return_inverse=True)
    batch_items, item_local = np.unique(items, return_inverse=True)
    order = np.argsort(worker_local, kind="stable")
    worker_local = worker_local[order]
    offsets = np.searchsorted(
        worker_local, np.arange(batch_workers.size + 1)
    ).astype(np.int64)
    indicators = indicators[order]
    patterns, pattern_index = unique_patterns(indicators)
    pattern_order = np.argsort(pattern_index, kind="stable")
    pattern_offsets = np.searchsorted(
        pattern_index[pattern_order], np.arange(patterns.shape[0] + 1)
    ).astype(np.int64)
    return _BatchData(
        items=items[order],
        indicators=indicators,
        batch_workers=batch_workers,
        batch_items=batch_items,
        worker_local=worker_local,
        item_local=item_local[order],
        worker_offsets=offsets,
        patterns=patterns,
        pattern_index=pattern_index,
        pattern_order=pattern_order,
        pattern_offsets=pattern_offsets,
    )


@dataclass(frozen=True)
class _ChunkPlan:
    """Static per-chunk layout of the MAP phase, computed once per batch.

    Everything here depends only on the batch layout and the executor
    degree — not on the variational parameters — so the
    ``svi_iterations`` local refinement passes reuse one plan instead of
    re-deriving the pattern grouping on every iteration.
    """

    start: int  # first batch-worker index of the chunk
    stop: int  # one past the last batch-worker index
    lo: int  # first answer (worker-sorted) of the chunk
    worker_starts: np.ndarray  # (stop-start,) reduceat offsets, chunk-local
    pattern_order: np.ndarray  # (n,) permutation grouping the chunk by pattern
    group_ids: np.ndarray  # patterns present in the chunk
    group_offsets: np.ndarray  # (len(group_ids)+1,) boundaries in pattern order
    local_items_p: np.ndarray  # (n,) local item ids, pattern order
    local_worker_p: np.ndarray  # (n,) chunk-local worker ids, pattern order


#: One MAP task: (plan, pattern_like, phi_p, n_batch_items, n_patterns,
#: e_log_pi).  Per-answer arrays inside the plan are pre-sliced to the
#: chunk so a process pool ships only that lane's share of the batch (plus
#: the shared (P, T, M) pattern tensor, which replaces the per-answer
#: indicator payload entirely).
_MapTask = Tuple[_ChunkPlan, np.ndarray, np.ndarray, int, int, np.ndarray]


def _map_worker_task(
    task: _MapTask,
) -> Tuple[int, int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """MAP phase of paper Alg. 3 for one chunk of batch workers.

    Module-level (hence picklable for process pools).  Returns the chunk
    bounds plus: the chunk's ``κ`` rows, its contribution to the per-item
    evidence ``a_it``, its pattern-space joint mass (the λ statistics are
    finished centrally with one matmul against the pattern table), and its
    κ column mass.  Answers are worker-sorted, so the per-worker reduction
    is a single ``np.add.reduceat`` over the plan's ``worker_starts``;
    every contraction against the likelihood tensor runs as per-pattern
    BLAS matmuls (grouped_matmul / grouped_outer) with no ``(n, T, M)``
    intermediate.
    """
    plan, pattern_like, phi_p, n_batch_items, n_patterns, e_log_pi = task
    n_chunk_workers = plan.stop - plan.start
    n_clusters, n_communities = pattern_like.shape[1], pattern_like.shape[2]

    score_dtype = np.result_type(pattern_like, e_log_pi)
    if phi_p.shape[0] == 0:
        return (
            plan.start,
            plan.stop,
            np.tile(log_normalize_rows(e_log_pi[None, :]), (n_chunk_workers, 1)),
            np.zeros((n_batch_items, n_clusters), dtype=score_dtype),
            np.zeros((n_patterns, n_clusters, n_communities), dtype=score_dtype),
            np.zeros(n_communities, dtype=score_dtype),
        )

    # κ update (Eq. 2): aggregate ϕ-weighted likelihood per worker.
    weighted_p = grouped_matmul(
        pattern_like, plan.group_ids, plan.group_offsets, phi_p, swap=False
    )
    weighted = np.empty_like(weighted_p)
    weighted[plan.pattern_order] = weighted_p  # back to worker-sorted order
    scores = e_log_pi[None, :] + np.add.reduceat(
        weighted, plan.worker_starts, axis=0
    )
    kappa_chunk = log_normalize_rows(scores)

    # a_it contribution (Eq. 15) with the freshly updated κ of this chunk.
    kappa_p = kappa_chunk[plan.local_worker_p]
    contrib_p = grouped_matmul(
        pattern_like, plan.group_ids, plan.group_offsets, kappa_p, swap=True
    )
    item_evidence = segment_sum(contrib_p, plan.local_items_p, n_batch_items)

    # Pattern-space joint mass for the global step (Eq. 6 / Eq. 9).
    joint_pattern = grouped_outer(
        phi_p, kappa_p, plan.group_ids, plan.group_offsets, n_patterns
    )
    kappa_mass = kappa_chunk.sum(axis=0)
    return plan.start, plan.stop, kappa_chunk, item_evidence, joint_pattern, kappa_mass


class StochasticInference:
    """Incremental CPA learner (paper Alg. 2; Alg. 3 with a parallel executor).

    Parameters
    ----------
    config:
        Hyperparameters; ``config.forgetting_rate`` is the ``r`` of the
        learning-rate schedule, ``config.svi_iterations`` the number of
        local refinement passes per batch.
    n_items, n_workers, n_labels:
        Full index-space sizes (the paper's ``I``, ``U``, ``C`` scaling
        constants — parameters must stay aligned across batches).
    truth:
        Optional observed true labels for items that appear in batches.
    executor:
        Backend for the MAP phase.  ``None`` defers to
        ``config.resolve_executor()`` — serial unless the config selects
        a pool or remote lanes (``CPAConfig.executor``).
    total_answers_hint:
        Expected total number of answers of the full stream.  The paper's
        ``U / U_b`` gradient scaling assumes each batch carries *whole
        workers* (Alg. 2 fetches "the answers of users U_b"); for streams
        that split a worker's answers across batches (arrival fractions,
        fixed-size answer batches) that scale underestimates the full-data
        statistics by up to the batch count.  When the hint is given, the
        scale ``N_total / N_b`` is used instead, which is correct for any
        batching policy.
    """

    def __init__(
        self,
        config: CPAConfig,
        n_items: int,
        n_workers: int,
        n_labels: int,
        truth: Optional[GroundTruth] = None,
        seed: Seed = None,
        executor: Optional[Executor] = None,
        total_answers_hint: Optional[int] = None,
    ) -> None:
        self.config = config
        self.n_items = n_items
        self.n_workers = n_workers
        self.n_labels = n_labels
        # explicit executor wins; else the config's declarative selection
        # (serial by default — see VariationalInference.__init__)
        self.executor = (
            executor if executor is not None else config.resolve_executor()
        )
        self.state = initialize_state(config, n_items, n_workers, n_labels, seed=seed)
        self.state.sync_mu_from_phi()
        self._seed = seed
        self._seeded = False
        self._pattern_like_cache: Optional[
            Tuple[_BatchData, np.ndarray, np.ndarray]
        ] = None
        self._chunk_plan_cache: Optional[Tuple[_BatchData, int, List["_ChunkPlan"]]] = None
        self._batch_kernel_cache: Optional[Tuple[_BatchData, ShardedSweepKernel]] = None
        self._truth = truth
        self.total_answers_hint = total_answers_hint
        if truth is not None and len(truth) > 0:
            self.truth_indicator = truth.to_indicator_matrix()
            mask = np.zeros(n_items, dtype=bool)
            mask[truth.known_items()] = True
            self.truth_mask = mask
        else:
            self.truth_indicator = np.zeros((n_items, n_labels), dtype=np.float64)
            self.truth_mask = np.zeros(n_items, dtype=bool)

    # -------------------------------------------------------------- checkpoints

    def checkpoint(self) -> dict:
        """Serializable snapshot of the engine's posterior and bookkeeping.

        The payload (see :mod:`repro.core.checkpoint`) carries the full
        variational state plus ``batches_seen`` and the symmetry-breaking
        ``seeded`` flag — everything :meth:`restore` needs to continue the
        SVI trajectory bitwise on another engine (or after a restart).
        """
        from repro.core.checkpoint import checkpoint_payload

        return checkpoint_payload(self.state, seeded=self._seeded)

    def restore(self, payload: dict) -> None:
        """Adopt a :meth:`checkpoint` payload as the engine's state.

        The checkpoint's index spaces must not exceed the engine's; a
        smaller checkpoint (taken before new items/workers/labels
        appeared) is grown to the engine's spaces via
        :func:`repro.core.checkpoint.grow_state`.  Per-batch caches are
        dropped — they key on batch identity and would go stale.
        """
        from repro.core.checkpoint import grow_state, state_from_payload

        state, seeded = state_from_payload(payload)
        if (state.n_items, state.n_workers, state.n_labels) != (
            self.n_items,
            self.n_workers,
            self.n_labels,
        ):
            state = grow_state(
                state,
                self.config,
                self.n_items,
                self.n_workers,
                self.n_labels,
                seed=self._seed,
            )
        if state.mu is None:
            state.sync_mu_from_phi()
        self.state = state
        self._seeded = seeded
        self._drop_batch_caches()

    def grow(self, n_items: int, n_workers: int, n_labels: int) -> None:
        """Widen the engine's index spaces mid-stream (never shrinks).

        New items/workers/labels observed after construction are absorbed
        by growing the state (:func:`repro.core.checkpoint.grow_state`)
        and padding the supervision arrays; subsequent batches may then
        reference the new ids.
        """
        from repro.core.checkpoint import grow_state

        self.state = grow_state(
            self.state, self.config, n_items, n_workers, n_labels, seed=self._seed
        )
        if self.state.mu is None:
            self.state.sync_mu_from_phi()
        if n_labels > self.n_labels or n_items > self.n_items:
            indicator = np.zeros((n_items, n_labels), dtype=np.float64)
            indicator[: self.n_items, : self.n_labels] = self.truth_indicator
            self.truth_indicator = indicator
            mask = np.zeros(n_items, dtype=bool)
            mask[: self.n_items] = self.truth_mask
            self.truth_mask = mask
        self.n_items = n_items
        self.n_workers = n_workers
        self.n_labels = n_labels
        self._drop_batch_caches()

    def _drop_batch_caches(self) -> None:
        """Forget per-batch caches (batch identity no longer recurs)."""
        self._pattern_like_cache = None
        self._chunk_plan_cache = None
        if self._batch_kernel_cache is not None:
            self._batch_kernel_cache[1].evict()
            self._batch_kernel_cache = None

    # ------------------------------------------------------------------ stream

    def fit_stream(self, batches: Iterable[AnswerBatch]) -> CPAState:
        """Consume an entire batch stream; returns the final state."""
        for batch in batches:
            self.process_batch(batch)
        return self.state

    def process_batch(self, batch: AnswerBatch) -> float:
        """One SVI step (paper Alg. 2 body); returns the learning rate used.

        Empty batches advance the batch counter but change nothing.
        """
        data = _prepare_batch(batch, self.config.resolve_dtype(), self.n_labels)
        self.state.batches_seen += 1
        rate = learning_rate(self.state.batches_seen, self.config.forgetting_rate)
        if data is None:
            return rate
        if not self._seeded:
            self._seed_from_first_batch(data)
            self._seeded = True

        state = self.state
        e_log_pi = expected_log_pi(state.rho)
        e_log_tau = expected_log_tau(state.ups)
        e_log_psi = expected_log_psi(state.lam)

        worker_scale = self._gradient_scale(data)
        item_scale = max(1.0, self.n_items / data.batch_items.size)

        phi_batch = state.phi[data.batch_items]  # provisional (I_b, T)
        kappa_batch = state.kappa[data.batch_workers]
        counts = mass = kappa_mass = None
        mu_target = np.zeros(
            (data.batch_items.size, state.n_clusters - 1), dtype=np.float64
        )
        for _ in range(self.config.svi_iterations):
            kappa_batch, evidence, counts, mass, kappa_mass = self._map_reduce(
                data, phi_batch, e_log_pi, e_log_psi
            )
            scores = np.tile(e_log_tau, (data.batch_items.size, 1))
            scores += worker_scale * evidence
            scores += self._supervised_scores(data)
            limits = self._batch_cluster_limits(data)
            if limits is not None:
                # Shard-local truncation (DESIGN.md §6): out-of-window
                # clusters received no evidence from the truncated shard,
                # so their prior-only scores would wrongly dominate the
                # in-window (negative log-likelihood) ones.  The mask's
                # finite fill keeps µ well-defined (µ is shift-invariant
                # per row); the projection removes the residual
                # ``exp(-margin)`` leak so the provisional ϕ feeding the
                # windowed statistics is exactly window-supported.
                mask_cluster_scores(scores, limits)
                mu_target = scores[:, :-1] - scores[:, -1:]
                phi_batch = truncate_rows(log_normalize_rows(scores), limits)
            else:
                mu_target = scores[:, :-1] - scores[:, -1:]
                phi_batch = log_normalize_rows(scores)

        # ---- REDUCE: commit locals, damped global steps -------------------
        state.kappa[data.batch_workers] = kappa_batch
        assert state.mu is not None
        state.mu[data.batch_items] = interpolate(
            state.mu[data.batch_items], mu_target, rate
        )
        state.sync_phi_from_mu()

        # The MAP phase accumulated cell statistics under the *provisional*
        # (undamped) ϕ of the local loop; recompute them under the committed
        # damped ϕ so single noisy batch assignments cannot drag the global
        # profiles.
        assert kappa_mass is not None
        counts, mass = self._batch_cell_statistics(
            data, state.phi[data.batch_items], kappa_batch
        )
        zeta_counts = self._batch_zeta_counts(data, state.phi[data.batch_items])
        targets = compute_global_targets(
            self.config,
            batch_counts=counts,
            batch_mass=mass,
            batch_kappa_mass=kappa_mass,
            batch_phi_mass=state.phi[data.batch_items].sum(axis=0),
            batch_zeta_counts=zeta_counts,
            worker_scale=worker_scale,
            item_scale=item_scale,
        )
        if self.config.svi_coverage_correction:
            # Scale each component's step by the share of its answer mass
            # this batch observed: components absent from the batch keep
            # their parameters instead of decaying to the prior (see
            # CPAConfig.svi_coverage_correction).
            eps = 1e-9
            cell_cov = np.minimum(
                1.0, worker_scale * mass / np.maximum(state.cell_mass, eps)
            )  # (T, M)
            cluster_cov = np.minimum(
                1.0,
                worker_scale * mass.sum(axis=1)
                / np.maximum(state.cell_mass.sum(axis=1), eps),
            )  # (T,)
            community_cov = np.minimum(
                1.0,
                worker_scale * mass.sum(axis=0)
                / np.maximum(state.cell_mass.sum(axis=0), eps),
            )  # (M,)
            lam_rate = rate * cell_cov[:, :, None]
            state.lam = (1.0 - lam_rate) * state.lam + lam_rate * targets.lam
            cm_rate = rate * cell_cov
            state.cell_mass = (
                (1.0 - cm_rate) * state.cell_mass + cm_rate * targets.cell_mass
            )
            rho_rate = rate * community_cov[:-1, None]
            state.rho = (1.0 - rho_rate) * state.rho + rho_rate * targets.rho
            ups_rate = rate * cluster_cov[:-1, None]
            state.ups = (1.0 - ups_rate) * state.ups + ups_rate * targets.ups
            zeta_rate = rate * cluster_cov[:, None, None]
            state.zeta = (1.0 - zeta_rate) * state.zeta + zeta_rate * targets.zeta
        else:
            state.lam = interpolate(state.lam, targets.lam, rate)
            state.cell_mass = interpolate(state.cell_mass, targets.cell_mass, rate)
            state.rho = interpolate(state.rho, targets.rho, rate)
            state.ups = interpolate(state.ups, targets.ups, rate)
            state.zeta = interpolate(state.zeta, targets.zeta, rate)
        return rate

    def _gradient_scale(self, data: _BatchData) -> float:
        """Gradient scale for the batch (see ``total_answers_hint``)."""
        if self.total_answers_hint is not None and data.items.size > 0:
            return max(1.0, self.total_answers_hint / data.items.size)
        return max(1.0, self.n_workers / data.batch_workers.size)

    def refreshed_state(self, matrix, sweeps: int = 2) -> CPAState:
        """Posterior refresh for online prediction (paper §4.1).

        The paper instantiates labels from "the corresponding approximated
        posterior distributions of model variables" regenerated after each
        batch; concretely we run ``sweeps`` warm-started coordinate-ascent
        sweeps over the answers accumulated so far, starting from a *copy*
        of the online state (the SVI trajectory itself is untouched).

        Truncated-DP stochastic trajectories can occasionally collapse
        components on very small streams (rich-get-richer churn); to guard
        against predicting from a collapsed basin, the same sweep budget is
        also spent from a fresh signature-seeded start and the candidate
        with the higher ELBO is returned — plain variational model
        selection.  The total cost is a handful of data scans, far below
        the tens of scans an offline refit needs, preserving the paper's
        runtime hierarchy.
        """
        from repro.core.inference import VariationalInference

        sweeps = max(1, sweeps)
        warm = VariationalInference(
            self.config, matrix, truth=self._truth, seed=self._seed
        )
        fresh_state = warm.state.copy()  # signature-seeded init
        warm.state = self.state.copy()
        for _ in range(sweeps):
            warm.sweep()
        warm_elbo = warm.elbo()
        warm_state = warm.state

        warm.state = fresh_state
        for _ in range(sweeps):
            warm.sweep()
        if warm.elbo() > warm_elbo:
            return warm.state
        return warm_state

    def _seed_from_first_batch(self, data: _BatchData) -> None:
        """Symmetry-breaking initialisation from the first batch's answers.

        The truncated-DP variational state collapses onto its first
        components when started uninformed (see
        :func:`repro.core.state._farthest_point_responsibilities`); the
        first batch provides the signatures to seed responsibilities, and
        the global parameters are set to the batch's scaled statistics so
        subsequent damped steps refine — rather than erase — the seeded
        structure.
        """
        global_workers = data.batch_workers[data.worker_local]
        item_sig = segment_sum(data.indicators, data.items, self.n_items)
        worker_sig = segment_sum(data.indicators, global_workers, self.n_workers)

        seeded = initialize_state(
            self.config,
            self.n_items,
            self.n_workers,
            self.n_labels,
            seed=self._seed,
            item_signatures=item_sig,
            worker_signatures=worker_sig,
        )
        batches_seen = self.state.batches_seen
        self.state = seeded
        self.state.batches_seen = batches_seen
        self.state.sync_mu_from_phi()

        # Align the globals with the seeded responsibilities (the online
        # analogue of batch VI's init-consistency pass).
        phi_batch = self.state.phi[data.batch_items]
        kappa_batch = self.state.kappa[data.batch_workers]
        counts, mass = self._batch_cell_statistics(data, phi_batch, kappa_batch)
        worker_scale = self._gradient_scale(data)
        item_scale = max(1.0, self.n_items / data.batch_items.size)
        targets = compute_global_targets(
            self.config,
            batch_counts=counts,
            batch_mass=mass,
            batch_kappa_mass=kappa_batch.sum(axis=0),
            batch_phi_mass=phi_batch.sum(axis=0),
            batch_zeta_counts=self._batch_zeta_counts(data, phi_batch),
            worker_scale=worker_scale,
            item_scale=item_scale,
        )
        self.state.lam = targets.lam
        self.state.cell_mass = targets.cell_mass
        self.state.rho = targets.rho
        self.state.ups = targets.ups
        self.state.zeta = targets.zeta

    # ------------------------------------------------------------------ phases

    def _pattern_likelihood(self, data: _BatchData, e_log_psi: np.ndarray) -> np.ndarray:
        """Pattern-space answer log-likelihood, evaluated once per batch.

        ``process_batch`` computes ``e_log_psi`` once and passes the same
        array to every local refinement iteration, so the identity-keyed
        cache makes the ``(P, C) @ (C, T·M)`` matmul a once-per-batch cost
        (the seed path re-evaluated the full ``(N_b, C)`` matmul inside
        every local iteration).
        """
        cache = self._pattern_like_cache
        if cache is not None and cache[0] is data and cache[1] is e_log_psi:
            return cache[2]
        pattern_like = answer_log_likelihood(data.patterns, e_log_psi)
        self._pattern_like_cache = (data, e_log_psi, pattern_like)
        return pattern_like

    def _chunk_plans(self, data: _BatchData) -> List[_ChunkPlan]:
        """Static per-chunk MAP layouts, cached per (batch, degree).

        The pattern grouping and worker/item index bookkeeping depend only
        on the batch layout, so the ``svi_iterations`` local passes (and
        their per-chunk tasks) share one plan instead of re-sorting every
        iteration.
        """
        cache = self._chunk_plan_cache
        degree = self.executor.degree
        if cache is not None and cache[0] is data and cache[1] == degree:
            return cache[2]
        plans: List[_ChunkPlan] = []
        for chunk in split_chunks(data.batch_workers.size, degree):
            lo = int(data.worker_offsets[chunk.start])
            hi = int(data.worker_offsets[chunk.stop])
            pattern_index = data.pattern_index[lo:hi]
            pattern_order = np.argsort(pattern_index, kind="stable")
            group_ids, group_starts = np.unique(
                pattern_index[pattern_order], return_index=True
            )
            worker_starts = data.worker_offsets[chunk.start : chunk.stop] - lo
            answers_per_worker = np.diff(np.append(worker_starts, pattern_index.size))
            local_worker = np.repeat(
                np.arange(chunk.stop - chunk.start), answers_per_worker
            )
            plans.append(
                _ChunkPlan(
                    start=chunk.start,
                    stop=chunk.stop,
                    lo=lo,
                    worker_starts=worker_starts,
                    pattern_order=pattern_order,
                    group_ids=group_ids,
                    group_offsets=np.append(group_starts, pattern_index.size),
                    local_items_p=data.item_local[lo:hi][pattern_order],
                    local_worker_p=local_worker[pattern_order],
                )
            )
        self._chunk_plan_cache = (data, degree, plans)
        return plans

    def _batch_backend(self, data: _BatchData) -> Tuple[str, int]:
        """Concrete ``(backend, n_shards)`` for this batch's answer count.

        Resolved per batch so ``backend="auto"`` keeps ordinary
        paper-sized batches on the fused MAP path while bulk arrival
        increments cross the sharded volume threshold.  A cached kernel
        from a *previous* batch is retired here — not only when the next
        sharded batch replaces it — so that in auto mode one bulk
        sharded batch followed by a fused-only tail cannot stay resident
        on the lanes for the rest of the stream.
        """
        cache = self._batch_kernel_cache
        if cache is not None and cache[0] is not data:
            cache[1].evict()
            self._batch_kernel_cache = None
        return self.config.resolve_backend(
            data.items.size,
            self.executor.degree,
            # every batch item is answered by construction, so the batch's
            # item count caps how many shards a plan can realise
            n_items=int(data.batch_items.size),
        )

    def _batch_kernel(self, data: _BatchData, n_shards: int) -> ShardedSweepKernel:
        """Per-batch sharded kernel over the batch-local index spaces.

        Cached on batch identity so the ``svi_iterations`` local passes
        (and the post-damping statistics recomputation) share one shard
        plan per batch — and, with the resident transport, one broadcast
        per batch.
        """
        cache = self._batch_kernel_cache
        if cache is not None and cache[0] is data:
            return cache[1]
        if cache is not None:
            # Retire the previous batch's plan from the executor lanes so a
            # long stream cannot accumulate resident payloads.
            cache[1].evict()
        kernel = ShardedSweepKernel(
            data.item_local,
            data.worker_local,
            data.indicators,
            n_items=int(data.batch_items.size),
            n_workers=int(data.batch_workers.size),
            dtype=self.config.resolve_dtype(),
            n_shards=n_shards,
            # _prepare_batch already deduplicated these exact rows; reuse
            # its tables instead of re-sorting per batch.
            patterns=data.patterns,
            pattern_index=data.pattern_index,
            resident=self.config.resident_shards,
            # shard-local truncation, gated per batch: bulk wide/sparse
            # arrival increments adapt, ordinary paper-sized batches don't
            shard_truncation=(
                self.config.shard_truncation
                if self.config.resolve_adaptive_truncation(
                    int(data.batch_items.size), int(data.items.size)
                )
                else None
            ),
        )
        self._batch_kernel_cache = (data, kernel)
        return kernel

    def _batch_cluster_limits(self, data: _BatchData) -> Optional[np.ndarray]:
        """Cluster-window limits of the current batch's sharded kernel.

        ``None`` whenever the batch ran fused or its shard windows do not
        bind — the local ϕ update is then exactly the historical one.
        The limits index *batch-local* item rows, matching the
        ``scores`` / ``phi_batch`` arrays of the local loop.
        """
        cache = self._batch_kernel_cache
        if cache is None or cache[0] is not data:
            return None
        return cache[1].cluster_limits(self.state.n_clusters)

    def _sharded_map_reduce(
        self,
        data: _BatchData,
        phi_batch: np.ndarray,
        e_log_pi: np.ndarray,
        e_log_psi: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """MAP/REDUCE of one batch routed through the sharded kernel seam.

        Same math as the fused worker-chunk path — κ update, item
        evidence under the fresh κ, Eq. 6 statistics — but each shard's
        contractions run as one executor task and the partials merge in
        fixed shard order (see :mod:`repro.core.sharding`).
        """
        kernel = self._batch_kernel(data, self._batch_backend(data)[1])
        limits = kernel.cluster_limits(self.state.n_clusters)
        if limits is not None:
            # The windowed contractions assume window-supported ϕ rows;
            # the incoming ϕ (global state sliced to the batch, or the
            # µ-synced commit) leaks mass outside this batch's shard
            # windows, which truncation would silently *drop* instead of
            # condition on.  Project first — rows renormalise over their
            # windows, so the κ update and Eq. 6 statistics see proper
            # distributions.
            phi_batch = truncate_rows(phi_batch, limits)
        kernel.begin_sweep(e_log_psi)
        scores = np.tile(e_log_pi, (data.batch_workers.size, 1))
        kernel.add_worker_scores(scores, phi_batch, self.executor)
        kappa_batch = log_normalize_rows(scores)
        evidence = np.zeros(
            (data.batch_items.size, self.state.n_clusters), dtype=self.state.lam.dtype
        )
        kernel.add_item_scores(evidence, kappa_batch, self.executor)
        counts, mass = kernel.cell_statistics(phi_batch, kappa_batch, self.executor)
        return kappa_batch, evidence, counts, mass, kappa_batch.sum(axis=0)

    def _map_reduce(
        self,
        data: _BatchData,
        phi_batch: np.ndarray,
        e_log_pi: np.ndarray,
        e_log_psi: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Run the MAP phase over worker chunks and reduce the partials.

        Tasks are pre-sliced per chunk (answers are worker-sorted, so a
        chunk of workers is a contiguous answer range) before submission,
        keeping process-pool payloads proportional to each lane's share.
        The λ counts are reduced in pattern space and finished with a
        single matmul against the batch's pattern table.  When
        :meth:`_batch_backend` resolves to ``"sharded"`` (explicit
        config, or ``"auto"`` on a large batch) the batch is instead
        routed through :meth:`_sharded_map_reduce`.
        """
        if self._batch_backend(data)[0] == "sharded":
            return self._sharded_map_reduce(data, phi_batch, e_log_pi, e_log_psi)
        pattern_like = self._pattern_likelihood(data, e_log_psi)
        n_patterns = data.patterns.shape[0]
        tasks: List[_MapTask] = [
            (
                plan,
                pattern_like,
                phi_batch[plan.local_items_p],  # ϕ rows, pattern order
                data.batch_items.size,
                n_patterns,
                e_log_pi,
            )
            for plan in self._chunk_plans(data)
        ]
        pieces = self.executor.map_tasks(_map_worker_task, tasks)

        dtype = self.state.lam.dtype
        kappa = np.empty((data.batch_workers.size, e_log_pi.size), dtype=dtype)
        evidence = np.zeros((data.batch_items.size, self.state.n_clusters), dtype=dtype)
        joint_pattern = np.zeros(
            (n_patterns, self.state.n_clusters, self.state.n_communities), dtype=dtype
        )
        kappa_mass = np.zeros(self.state.n_communities, dtype=dtype)
        for start, stop, kappa_chunk, ev, jp, km in pieces:
            kappa[start:stop] = kappa_chunk
            evidence += ev
            joint_pattern += jp
            kappa_mass += km
        counts = np.einsum("ptm,pc->tmc", joint_pattern, data.patterns, optimize=True)
        mass = joint_pattern.sum(axis=0)
        return kappa, evidence, counts, mass, kappa_mass

    def _batch_cell_statistics(
        self, data: _BatchData, phi_batch: np.ndarray, kappa_batch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Eq. 6 sufficient statistics of one batch (used by seeding).

        Reduced in pattern space: the ``O(N_b·T·M·C)`` contraction becomes
        per-pattern outer-product matmuls plus a ``(T·M, P) @ (P, C)``
        matmul against the pattern table (shard-merged under the sharded
        backend).
        """
        backend, n_shards = self._batch_backend(data)
        if backend == "sharded":
            kernel = self._batch_kernel(data, n_shards)
            limits = kernel.cluster_limits(self.state.n_clusters)
            if limits is not None:
                # as in _sharded_map_reduce: condition ϕ on the windows
                # rather than letting truncation drop the leaked mass
                phi_batch = truncate_rows(phi_batch, limits)
            return kernel.cell_statistics(phi_batch, kappa_batch, self.executor)
        n_patterns = data.patterns.shape[0]
        order = data.pattern_order  # precomputed batch-level grouping
        joint_pattern = grouped_outer(
            phi_batch[data.item_local[order]],
            kappa_batch[data.worker_local[order]],
            np.arange(n_patterns),
            data.pattern_offsets,
            n_patterns,
        )
        p, t, m = joint_pattern.shape
        counts = (joint_pattern.reshape(p, t * m).T @ data.patterns).reshape(
            t, m, data.patterns.shape[1]
        )
        return counts, joint_pattern.sum(axis=0)

    def _supervised_scores(self, data: _BatchData) -> np.ndarray:
        """Observed-truth contribution to the batch items' cluster scores."""
        scores = np.zeros(
            (data.batch_items.size, self.state.n_clusters), dtype=np.float64
        )
        observed = self.truth_mask[data.batch_items]
        if observed.any():
            e_log_phi, e_log_phi_c = expected_log_phi_beta(self.state.zeta)
            y = self.truth_indicator[data.batch_items[observed]]
            scores[observed] = y @ e_log_phi.T + (1.0 - y) @ e_log_phi_c.T
        return scores

    def _batch_zeta_counts(
        self, data: _BatchData, phi_batch: np.ndarray
    ) -> np.ndarray:
        """Observed-truth presence/absence counts for Eq. 10."""
        zeta_counts = np.zeros(
            (self.state.n_clusters, self.n_labels, 2), dtype=np.float64
        )
        observed = self.truth_mask[data.batch_items]
        if observed.any():
            phi_obs = phi_batch[observed]
            y_obs = self.truth_indicator[data.batch_items[observed]]
            zeta_counts[..., 0] = phi_obs.T @ y_obs
            zeta_counts[..., 1] = phi_obs.T @ (1.0 - y_obs)
        return zeta_counts


def stream_from_matrix(
    matrix,
    *,
    answers_per_batch: int = 0,
    workers_per_batch: int = 0,
    seed: Seed = None,
) -> List[AnswerBatch]:
    """Convenience: materialise a batch list from an answer matrix.

    Exactly one of ``answers_per_batch`` / ``workers_per_batch`` must be
    positive; the policies mirror :class:`repro.data.streams.AnswerStream`.
    """
    from repro.data.streams import AnswerStream

    if (answers_per_batch > 0) == (workers_per_batch > 0):
        raise ValidationError(
            "specify exactly one of answers_per_batch / workers_per_batch"
        )
    stream = AnswerStream(matrix, seed=seed)
    if answers_per_batch > 0:
        return list(stream.by_answers(answers_per_batch))
    return list(stream.by_workers(workers_per_batch))
