"""Batch coordinate-ascent variational inference for CPA (paper Alg. 1).

One sweep performs, in order:

1. **Local updates** — worker-community responsibilities ``κ`` (paper
   Eq. 2) and item-cluster responsibilities ``ϕ`` (Eq. 3, *corrected* to
   include the answer-likelihood term; see DESIGN.md §4.1).
2. **Global updates** — stick posteriors ``ρ`` (Eq. 4) and ``υ`` (Eq. 5),
   answer-profile posteriors ``λ`` (Eq. 6), and label-profile posteriors
   ``ζ`` (Eq. 7; per-label Beta form, DESIGN.md §4.3).

Every update is an exact coordinate maximisation of the evidence lower
bound, so the ELBO computed by :meth:`VariationalInference.elbo` is
non-decreasing across sweeps — a property the test-suite asserts.

All data-dependent terms are evaluated through the fused
:class:`~repro.core.kernels.SweepKernel` (DESIGN.md §6): the answer
log-likelihood tensor is computed once per sweep in pattern space and
feeds the κ update, the ϕ update, the λ/cell-mass statistics, and the
ELBO; scatters go through sorted segment reductions; and the chunked
local updates fan out over the configured
:class:`~repro.utils.parallel.Executor`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np
from scipy.special import digamma, gammaln

from repro.core.config import CPAConfig
from repro.core.expectations import (
    expected_log_phi_beta,
    expected_log_pi,
    expected_log_psi,
    expected_log_tau,
)
from repro.core.kernels import mask_cluster_scores, segment_sum, truncate_rows
from repro.core.sharding import build_sweep_kernel
from repro.core.state import CPAState, initialize_state
from repro.data.answers import AnswerMatrix
from repro.data.dataset import GroundTruth
from repro.errors import ConvergenceWarning, InferenceError
from repro.utils.math import log_normalize_rows
from repro.utils.parallel import Executor
from repro.utils.random import Seed


@dataclass
class InferenceResult:
    """Outcome of a full VI run."""

    state: CPAState
    converged: bool
    n_iterations: int
    elbo_history: List[float] = field(default_factory=list)
    delta_history: List[float] = field(default_factory=list)

    @property
    def final_elbo(self) -> float:
        """Last recorded ELBO value (``nan`` if tracking was disabled)."""
        return self.elbo_history[-1] if self.elbo_history else float("nan")


def _dirichlet_entropy(params: np.ndarray) -> np.ndarray:
    """Entropy of Dirichlet distributions along the last axis."""
    total = params.sum(axis=-1)
    k = params.shape[-1]
    log_b = gammaln(params).sum(axis=-1) - gammaln(total)
    return (
        log_b
        + (total - k) * digamma(total)
        - ((params - 1.0) * digamma(params)).sum(axis=-1)
    )


def _categorical_entropy(probs: np.ndarray) -> float:
    """Total entropy of categorical rows, treating ``0 ln 0 = 0``."""
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(probs > 0, probs * np.log(probs), 0.0)
    return float(-terms.sum())


class VariationalInference:
    """Runs paper Alg. 1 on a fixed answer matrix.

    Parameters
    ----------
    config:
        Hyperparameters (truncations, priors, stopping rule).
    answers:
        The observed answer matrix ``x``.
    truth:
        Observed true labels ``ȳ`` (may be empty or ``None`` — the default
        evaluation setting of the paper).
    seed:
        Overrides ``config.seed`` for state initialisation.
    executor:
        Backend for the chunked local updates and statistics (Alg. 3's
        MAP/REDUCE shape applied to the batch sweep).  ``None`` defers to
        ``config.resolve_executor()`` — serial unless the config selects
        a pool or remote lanes (``CPAConfig.executor``).
    """

    def __init__(
        self,
        config: CPAConfig,
        answers: AnswerMatrix,
        truth: Optional[GroundTruth] = None,
        seed: Seed = None,
        *,
        fix_singleton_communities: bool = False,
        fix_singleton_clusters: bool = False,
        executor: Optional[Executor] = None,
    ) -> None:
        """``fix_singleton_*`` implement the §5.4 ablations: each worker its
        own community (`No Z`) / each item its own cluster (`No L`), with
        the corresponding responsibilities pinned to the identity."""
        self.fix_singleton_communities = fix_singleton_communities
        self.fix_singleton_clusters = fix_singleton_clusters
        if fix_singleton_communities:
            config = config.with_overrides(
                truncation_communities=answers.n_workers,
                max_truncation=max(config.max_truncation, answers.n_workers),
            )
        if fix_singleton_clusters:
            config = config.with_overrides(
                truncation_clusters=answers.n_items,
                max_truncation=max(
                    config.max_truncation, answers.n_items, answers.n_workers
                ),
                # identity-pinned ϕ is incompatible with shard-local
                # cluster windows (every item must reach its own cluster)
                adaptive_truncation="off",
            )
        self.config = config
        self.answers = answers
        # An explicit executor object wins; otherwise honour the config's
        # declarative selection (serial by default, so the historical
        # behaviour is unchanged; DESIGN.md §6 "Remote lanes").  The
        # engine never closes what it builds here — `self.executor` is
        # public and pooled kinds stay usable across successive fits.
        self.executor = (
            executor if executor is not None else config.resolve_executor()
        )
        self.items, self.workers, self.indicators = answers.to_arrays()
        self.n_items = answers.n_items
        self.n_workers = answers.n_workers
        self.n_labels = answers.n_labels
        # Backend seam (DESIGN.md §6): `config.backend` selects the fused
        # serial kernel, the sharded one (lane-resident by default), or —
        # with "auto" — whichever the answer volume and executor degree
        # favour; all expose the same sweep API.
        self.kernel = build_sweep_kernel(
            config,
            self.items,
            self.workers,
            self.indicators,
            n_items=self.n_items,
            n_workers=self.n_workers,
            executor=self.executor,
        )
        #: the lane count the current shard plan was sized for; when the
        #: executor's degree drifts away from it (worker joined/drained/
        #: excluded) and K is auto, the next sweep re-plans (DESIGN.md §6
        #: "Elastic fleet").
        self._planned_degree = getattr(self.executor, "degree", 1)

        if truth is not None and len(truth) > 0:
            self.truth_indicator = truth.to_indicator_matrix()
            mask = np.zeros(self.n_items, dtype=bool)
            mask[truth.known_items()] = True
            self.truth_mask = mask
        else:
            self.truth_indicator = np.zeros((self.n_items, self.n_labels))
            self.truth_mask = np.zeros(self.n_items, dtype=bool)

        item_sig = segment_sum(self.indicators, self.items, self.n_items)
        worker_sig = segment_sum(self.indicators, self.workers, self.n_workers)
        self.state = initialize_state(
            config,
            self.n_items,
            self.n_workers,
            self.n_labels,
            seed=seed,
            item_signatures=item_sig,
            worker_signatures=worker_sig,
        )
        if fix_singleton_communities:
            self.state.kappa = np.eye(self.n_workers)
        if fix_singleton_clusters:
            self.state.phi = np.eye(self.n_items)
        # Shard-local truncation (DESIGN.md §6): when the sharded kernel
        # carries binding per-shard windows, project the initial ϕ onto
        # them.  With ϕ exactly zero outside every window, each shard's
        # windowed contractions equal the full ones, so every sweep is an
        # exact coordinate-ascent step within the constrained family (and
        # the ELBO stays monotone).
        self._cluster_limits = self.kernel.cluster_limits(self.state.n_clusters)
        if self._cluster_limits is not None:
            self.state.localize_clusters(self._cluster_limits)
        # Make the globals consistent with the seeded responsibilities so
        # the first local sweep sees differentiated profiles instead of
        # the bare prior (which would undo the initialisation).
        self._update_sticks()
        self._update_profiles()
        self._update_label_profiles()

    # ------------------------------------------------------------------ sweeps

    def run(
        self,
        callback: Optional[Callable[[int, float, float], None]] = None,
        track_elbo: bool = True,
    ) -> InferenceResult:
        """Iterate sweeps until the parameter delta drops below tolerance.

        ``callback(iteration, delta, elbo)`` is invoked after each sweep
        (``elbo`` is ``nan`` when tracking is off).  Hitting the iteration
        cap emits a :class:`ConvergenceWarning` instead of failing: a
        near-converged model is still useful for prediction.
        """
        elbo_history: List[float] = []
        delta_history: List[float] = []
        converged = False
        for iteration in range(self.config.max_iterations):
            delta = self.sweep()
            delta_history.append(delta)
            value = self.elbo() if track_elbo else float("nan")
            if track_elbo:
                elbo_history.append(value)
            if callback is not None:
                callback(iteration, delta, value)
            if delta < self.config.tolerance:
                converged = True
                break
        if not converged:
            warnings.warn(
                f"VI stopped at {self.config.max_iterations} iterations "
                f"(last delta {delta_history[-1]:.2e} > tol {self.config.tolerance})",
                ConvergenceWarning,
                stacklevel=2,
            )
        self.state.validate()
        return InferenceResult(
            state=self.state,
            converged=converged,
            n_iterations=len(delta_history),
            elbo_history=elbo_history,
            delta_history=delta_history,
        )

    def replan_shards(self, n_shards: Optional[int] = None) -> int:
        """Re-plan the sharded kernel for the executor's current capacity.

        Retires the current plan (evicting its lane-resident broadcast
        state), rebuilds the kernel with ``n_shards`` shards — default:
        the config's shard rule applied to the executor's *current*
        degree — and re-projects the shard-local truncation windows if
        the new plan carries any.  Merges are fixed-shard-order and
        deterministic, so two engines that re-plan to the same K at the
        same sweep boundary stay bitwise identical regardless of lane
        count (the chaos suite pins this).  Returns the realised shard
        count.  Safe mid-run: the variational state is K-agnostic; only
        the work partition changes.
        """
        degree = getattr(self.executor, "degree", 1)
        if n_shards is None:
            n_shards = self.config.resolve_shards(degree, self.n_items)
        if hasattr(self.kernel, "evict"):
            self.kernel.evict()
        self.kernel = build_sweep_kernel(
            self.config,
            self.items,
            self.workers,
            self.indicators,
            n_items=self.n_items,
            n_workers=self.n_workers,
            executor=self.executor,
            n_shards=n_shards,
        )
        self._planned_degree = degree
        self._cluster_limits = self.kernel.cluster_limits(self.state.n_clusters)
        if self._cluster_limits is not None:
            self.state.localize_clusters(self._cluster_limits)
        return getattr(self.kernel, "n_shards", 1)

    def _maybe_replan(self) -> None:
        """Auto re-plan between sweeps when fleet membership changed.

        Fires only for an auto-K sharded plan (``config.n_shards == 0``):
        an explicit K is a user decision that membership changes must not
        silently override, and a fused kernel has no plan to resize.
        """
        if self.config.n_shards != 0:
            return
        if not hasattr(self.kernel, "evict"):
            return  # fused kernel: nothing to re-plan
        degree = getattr(self.executor, "degree", 1)
        if degree != self._planned_degree:
            self.replan_shards()

    def sweep(self) -> float:
        """One full coordinate-ascent sweep; returns the max parameter change.

        The answer log-likelihood is evaluated exactly once (in pattern
        space, :meth:`SweepKernel.begin_sweep`) and shared by the κ and ϕ
        updates and the λ statistics — the seed implementation re-evaluated
        it for each consumer.
        """
        self._maybe_replan()
        state = self.state
        e_log_pi = expected_log_pi(state.rho)
        e_log_tau = expected_log_tau(state.ups)
        e_log_psi = expected_log_psi(state.lam)
        self.kernel.begin_sweep(e_log_psi)

        # --- local update: worker communities (Eq. 2) --------------------
        kappa_delta = 0.0
        if not self.fix_singleton_communities:
            kappa_scores = np.tile(e_log_pi, (self.n_workers, 1))
            self.kernel.add_worker_scores(kappa_scores, state.phi, self.executor)
            new_kappa = log_normalize_rows(kappa_scores)
            kappa_delta = float(np.max(np.abs(new_kappa - state.kappa)))
            state.kappa = new_kappa

        # --- local update: item clusters (corrected Eq. 3) ---------------
        phi_delta = 0.0
        if not self.fix_singleton_clusters:
            phi_scores = np.tile(e_log_tau, (self.n_items, 1))
            self.kernel.add_item_scores(phi_scores, state.kappa, self.executor)
            if self.truth_mask.any():
                e_log_phi, e_log_phi_c = expected_log_phi_beta(state.zeta)
                y = self.truth_indicator[self.truth_mask]
                supervised = y @ e_log_phi.T + (1.0 - y) @ e_log_phi_c.T
                phi_scores[self.truth_mask] += supervised
            if self._cluster_limits is not None:
                # keep each item inside its shard's cluster window: mask
                # the scores (finite fill, SIMD-friendly), then project
                # the normalised rows so ϕ is *exactly* zero outside the
                # window — the invariant that keeps the windowed kernel
                # contractions exact
                mask_cluster_scores(phi_scores, self._cluster_limits)
                new_phi = truncate_rows(
                    log_normalize_rows(phi_scores), self._cluster_limits
                )
            else:
                new_phi = log_normalize_rows(phi_scores)
            phi_delta = float(np.max(np.abs(new_phi - state.phi)))
            state.phi = new_phi

        # --- global updates (Eqs. 4-7) ------------------------------------
        self._update_sticks()
        self._update_profiles()
        self._update_label_profiles()
        return max(kappa_delta, phi_delta)

    def _update_sticks(self) -> None:
        """Stick posteriors ``ρ`` (Eq. 4) and ``υ`` (Eq. 5)."""
        state = self.state
        community_mass = state.kappa.sum(axis=0)  # (M,)
        tail = np.concatenate(
            [np.cumsum(community_mass[::-1])[::-1][1:], [0.0]]
        )  # Σ_{l>m}
        state.rho[:, 0] = 1.0 + community_mass[:-1]
        state.rho[:, 1] = self.config.alpha + tail[:-1]

        cluster_mass = state.phi.sum(axis=0)  # (T,)
        tail = np.concatenate([np.cumsum(cluster_mass[::-1])[::-1][1:], [0.0]])
        state.ups[:, 0] = 1.0 + cluster_mass[:-1]
        state.ups[:, 1] = self.config.epsilon + tail[:-1]

    def _update_profiles(self) -> None:
        """Answer-profile posteriors ``λ`` (Eq. 6) and the cell masses."""
        state = self.state
        counts, mass = self.kernel.cell_statistics(
            state.phi, state.kappa, self.executor
        )
        state.lam = self.config.gamma0 + counts
        state.cell_mass = mass

    def _update_label_profiles(self) -> None:
        """Label-profile posteriors ``ζ`` (Eq. 7, per-label Beta form)."""
        state = self.state
        eta0 = self.config.eta0
        state.zeta = np.full_like(state.zeta, eta0)
        if not self.truth_mask.any():
            return
        phi_obs = state.phi[self.truth_mask]  # (O, T)
        y_obs = self.truth_indicator[self.truth_mask]  # (O, C)
        state.zeta[..., 0] = eta0 + phi_obs.T @ y_obs
        state.zeta[..., 1] = eta0 + phi_obs.T @ (1.0 - y_obs)

    # -------------------------------------------------------------------- elbo

    def elbo(self) -> float:
        """Evidence lower bound, up to additive data constants.

        The dropped constants (multinomial coefficients of the observed
        answer and truth vectors) do not depend on any variational
        parameter, so the value is exact up to a fixed offset and strictly
        comparable across sweeps.
        """
        state = self.state
        cfg = self.config
        e_log_pi = expected_log_pi(state.rho)
        e_log_tau = expected_log_tau(state.ups)
        e_log_psi = expected_log_psi(state.lam)
        e_log_phi, e_log_phi_c = expected_log_phi_beta(state.zeta)

        value = 0.0
        # E[ln p(x | z, l, ψ)] — reuses the pattern-space joint mass cached
        # by the last cell-statistics pass when ϕ/κ are unchanged.
        value += self.kernel.data_elbo(state.phi, state.kappa, e_log_psi, self.executor)
        # E[ln p(z | π)] and E[ln p(l | τ)]
        value += float(state.kappa.sum(axis=0) @ e_log_pi)
        value += float(state.phi.sum(axis=0) @ e_log_tau)
        # E[ln p(y | l, φ)] over observed truth
        if self.truth_mask.any():
            y = self.truth_indicator[self.truth_mask]
            supervised = y @ e_log_phi.T + (1.0 - y) @ e_log_phi_c.T
            value += float(np.sum(state.phi[self.truth_mask] * supervised))
        # Priors on ψ, φ, π', τ'
        t, m, c = state.lam.shape
        value += float(
            t * m * (gammaln(c * cfg.gamma0) - c * gammaln(cfg.gamma0))
            + (cfg.gamma0 - 1.0) * e_log_psi.sum()
        )
        value += float(
            t * c * (gammaln(2 * cfg.eta0) - 2 * gammaln(cfg.eta0))
            + (cfg.eta0 - 1.0) * (e_log_phi.sum() + e_log_phi_c.sum())
        )
        value += self._stick_prior_term(state.rho, cfg.alpha)
        value += self._stick_prior_term(state.ups, cfg.epsilon)
        # Entropies
        value += _categorical_entropy(state.kappa)
        value += _categorical_entropy(state.phi)
        value += float(_dirichlet_entropy(state.lam).sum())
        value += float(_dirichlet_entropy(state.zeta).sum())
        value += float(_dirichlet_entropy(state.rho).sum())
        value += float(_dirichlet_entropy(state.ups).sum())
        if not np.isfinite(value):
            raise InferenceError("ELBO became non-finite; inference diverged")
        return value

    @staticmethod
    def _stick_prior_term(beta_params: np.ndarray, concentration: float) -> float:
        """``Σ_k E[ln Beta(v_k | 1, concentration)]`` under ``q``."""
        total = digamma(beta_params.sum(axis=1))
        e_log_1mv = digamma(beta_params[:, 1]) - total
        k = beta_params.shape[0]
        return float(
            k * (gammaln(1.0 + concentration) - gammaln(concentration))
            + (concentration - 1.0) * e_log_1mv.sum()
        )
