"""CPA — Generic Crowdsourcing Consensus with Partial Agreement (paper §3–§4).

The model couples two nonparametric clusterings — worker *communities*
(requirement R1) and item *clusters* (R3) — through per-(cluster, community)
answer profiles ``ψ_tm``, yielding partial answer validity (R2) and
adaptivity (R4).  This package contains:

* :mod:`repro.core.config` / :mod:`repro.core.state` — hyperparameters and
  variational state;
* :mod:`repro.core.expectations` — the Appendix-B expectation identities;
* :mod:`repro.core.inference` — batch coordinate-ascent VI (Alg. 1) + ELBO;
* :mod:`repro.core.svi` — stochastic variational inference (Alg. 2);
* :mod:`repro.core.mapreduce` — the parallel engine (Alg. 3);
* :mod:`repro.core.consensus` — cluster-consensus estimation (DESIGN.md §4.2);
* :mod:`repro.core.prediction` — greedy / exhaustive MAP label sets (§3.4);
* :mod:`repro.core.model` — the high-level :class:`CPAModel` API;
* :mod:`repro.core.diagnostics` — community/cluster summaries (Fig 9).
"""

from repro.core.config import CPAConfig
from repro.core.diagnostics import (
    CommunitySummary,
    community_summaries,
    worker_operating_points,
)
from repro.core.inference import VariationalInference
from repro.core.model import CPAModel
from repro.core.state import CPAState
from repro.core.svi import StochasticInference

__all__ = [
    "CPAConfig",
    "CPAModel",
    "CPAState",
    "VariationalInference",
    "StochasticInference",
    "CommunitySummary",
    "community_summaries",
    "worker_operating_points",
]
