"""The public CPA estimator.

:class:`CPAModel` ties the pieces together behind a scikit-learn-flavoured
API:

>>> from repro import CPAModel, make_scenario
>>> dataset = make_scenario("image", seed=7)
>>> model = CPAModel().fit(dataset)
>>> predictions = model.predict()           # {item: frozenset(labels)}
>>> model.worker_communities()[:5]          # inferred community per worker
>>> model.item_clusters()[:5]               # inferred cluster per item

``fit`` runs the batch variational inference of paper Alg. 1; ``fit_online``
/ ``partial_fit`` run the stochastic (incremental) inference of Alg. 2-3;
``predict`` performs the greedy MAP instantiation of §3.4 on the cluster
consensus.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.config import CPAConfig
from repro.core.consensus import ClusterConsensus, estimate_consensus
from repro.core.inference import InferenceResult, VariationalInference
from repro.core.prediction import (
    PredictionDetail,
    label_probabilities,
    predict_items,
)
from repro.core.state import CPAState
from repro.core.svi import StochasticInference
from repro.data.answers import AnswerMatrix
from repro.data.dataset import CrowdDataset, GroundTruth
from repro.data.streams import AnswerBatch
from repro.errors import NotFittedError, ValidationError
from repro.utils.parallel import Executor
from repro.utils.random import Seed

FitInput = Union[CrowdDataset, AnswerMatrix]


def _split_input(
    data: FitInput, truth: Optional[GroundTruth]
) -> tuple[AnswerMatrix, Optional[GroundTruth]]:
    if isinstance(data, CrowdDataset):
        if truth is not None:
            raise ValidationError(
                "pass truth either inside the dataset or separately, not both"
            )
        # The dataset's truth is used only if the caller asks for
        # supervision explicitly via fit(..., use_truth=True).
        return data.answers, data.truth
    if isinstance(data, AnswerMatrix):
        return data, truth
    raise ValidationError(
        f"expected CrowdDataset or AnswerMatrix, got {type(data).__name__}"
    )


class CPAModel:
    """Partial-agreement answer aggregation with the CPA model.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.CPAConfig`; defaults are sensible for
        datasets of a few hundred items.
    """

    def __init__(self, config: Optional[CPAConfig] = None) -> None:
        self.config = config or CPAConfig()
        self._state: Optional[CPAState] = None
        self._consensus: Optional[ClusterConsensus] = None
        self._answers: Optional[AnswerMatrix] = None
        self._result: Optional[InferenceResult] = None
        self._engine: Optional[StochasticInference] = None

    # ------------------------------------------------------------------ fitting

    def fit(
        self,
        data: FitInput,
        truth: Optional[GroundTruth] = None,
        *,
        use_truth: bool = False,
        seed: Seed = None,
        track_elbo: bool = False,
        executor: Optional[Executor] = None,
    ) -> "CPAModel":
        """Batch variational inference (paper Alg. 1).

        ``use_truth=True`` lets inference see the dataset's (possibly
        partial) ground truth — the paper's "test questions" setting.  The
        default matches the paper's evaluation protocol (``y = ∅``).
        ``executor`` fans the chunked local updates out over a
        thread/process pool (serial by default).
        """
        answers, dataset_truth = _split_input(data, truth)
        observed = (truth or dataset_truth) if (use_truth or truth is not None) else None
        engine = VariationalInference(
            self.config, answers, truth=observed, seed=seed, executor=executor
        )
        self._result = engine.run(track_elbo=track_elbo)
        self._state = self._result.state
        self._answers = answers
        self._consensus = estimate_consensus(self._state, self.config, self._answers)
        self._engine = None
        return self

    def fit_online(
        self,
        batches: Iterable[AnswerBatch],
        n_items: int,
        n_workers: int,
        n_labels: int,
        *,
        truth: Optional[GroundTruth] = None,
        seed: Seed = None,
        executor: Optional[Executor] = None,
        total_answers_hint: Optional[int] = None,
    ) -> "CPAModel":
        """Stochastic variational inference over a batch stream (Alg. 2/3)."""
        self._engine = StochasticInference(
            self.config,
            n_items,
            n_workers,
            n_labels,
            truth=truth,
            seed=seed,
            executor=executor,
            total_answers_hint=total_answers_hint,
        )
        from repro.data.streams import split_batch

        accumulated = AnswerMatrix(n_items, n_workers, n_labels)
        sub_batch_size = self._effective_batch_size()
        for batch in batches:
            for sub_batch in split_batch(batch, sub_batch_size):
                self._engine.process_batch(sub_batch)
            accumulated = accumulated.merged_with(batch.matrix)
        self._answers = accumulated
        self._state = (
            self._engine.refreshed_state(accumulated)
            if accumulated.n_answers
            else self._engine.state
        )
        self._consensus = estimate_consensus(self._state, self.config, self._answers)
        self._result = None
        return self

    def start_online(
        self,
        n_items: int,
        n_workers: int,
        n_labels: int,
        *,
        truth: Optional[GroundTruth] = None,
        seed: Seed = None,
        executor: Optional[Executor] = None,
        total_answers_hint: Optional[int] = None,
    ) -> "CPAModel":
        """Initialise incremental learning without consuming any data yet."""
        self._engine = StochasticInference(
            self.config,
            n_items,
            n_workers,
            n_labels,
            truth=truth,
            seed=seed,
            executor=executor,
            total_answers_hint=total_answers_hint,
        )
        self._answers = AnswerMatrix(n_items, n_workers, n_labels)
        self._state = self._engine.state
        self._consensus = None
        self._result = None
        return self

    def partial_fit(self, batch: AnswerBatch) -> "CPAModel":
        """Feed one more batch to an online model (paper's online updates)."""
        if self._engine is None or self._answers is None:
            raise NotFittedError("call start_online or fit_online before partial_fit")
        from repro.data.streams import split_batch

        for sub_batch in split_batch(batch, self._effective_batch_size()):
            self._engine.process_batch(sub_batch)
        self._answers = self._answers.merged_with(batch.matrix)
        self._state = (
            self._engine.refreshed_state(self._answers)
            if self._answers.n_answers
            else self._engine.state
        )
        self._consensus = estimate_consensus(self._state, self.config, self._answers)
        return self

    def _effective_batch_size(self) -> int:
        """Engine batch size, capped so small streams still get many steps.

        Robbins-Monro averaging needs a reasonable number of steps to damp
        the per-batch gradient noise; with very small streams the
        configured batch size could yield fewer than ~20 steps and leave
        the stochastic trajectory noise-dominated.  When the engine knows
        the expected stream size, the batch is capped at ``hint / 20``
        (but never below 50 answers — tiny batches are noise-dominated too).
        """
        size = self.config.svi_batch_answers
        hint = self._engine.total_answers_hint if self._engine else None
        if hint:
            size = min(size, max(50, hint // 20))
        return size

    # ---------------------------------------------------------------- predicting

    @property
    def is_fitted(self) -> bool:
        return self._state is not None and self._answers is not None

    def _require_fitted(self) -> tuple[CPAState, ClusterConsensus, AnswerMatrix]:
        if self._state is None or self._answers is None:
            raise NotFittedError("model is not fitted")
        if self._consensus is None:
            self._consensus = estimate_consensus(self._state, self.config, self._answers)
        return self._state, self._consensus, self._answers

    def predict(
        self,
        items: Optional[Sequence[int]] = None,
        *,
        answers: Optional[AnswerMatrix] = None,
        exhaustive: bool = False,
    ) -> Dict[int, FrozenSet[int]]:
        """MAP label sets (paper Problem 1's deterministic assignment).

        By default predicts every item that received answers during
        fitting; pass ``answers`` to instantiate labels for new/other
        answer matrices with the fitted parameters (the paper's
        "non-grounded items" / online-prediction setting).
        """
        details = self.predict_detailed(items, answers=answers, exhaustive=exhaustive)
        return {item: detail.labels for item, detail in details.items()}

    def predict_detailed(
        self,
        items: Optional[Sequence[int]] = None,
        *,
        answers: Optional[AnswerMatrix] = None,
        exhaustive: bool = False,
    ) -> Dict[int, PredictionDetail]:
        """Predictions with per-item objective values and cluster posteriors."""
        state, consensus, fitted_answers = self._require_fitted()
        target = answers if answers is not None else fitted_answers
        return predict_items(
            state,
            consensus,
            target,
            self.config,
            items=items,
            exhaustive=exhaustive,
        )

    def predict_proba(
        self,
        items: Optional[Sequence[int]] = None,
        *,
        answers: Optional[AnswerMatrix] = None,
    ) -> np.ndarray:
        """Per-item marginal label inclusion probabilities."""
        state, consensus, fitted_answers = self._require_fitted()
        target = answers if answers is not None else fitted_answers
        return label_probabilities(state, consensus, target, self.config, items=items)

    # --------------------------------------------------------------- inspection

    @property
    def state_(self) -> CPAState:
        """The fitted variational state (raises if unfitted)."""
        state, _, _ = self._require_fitted()
        return state

    @property
    def consensus_(self) -> ClusterConsensus:
        """The fitted cluster consensus (raises if unfitted)."""
        _, consensus, _ = self._require_fitted()
        return consensus

    @property
    def inference_result_(self) -> Optional[InferenceResult]:
        """Batch-VI convergence record (``None`` after online fitting)."""
        return self._result

    def worker_communities(self) -> List[int]:
        """MAP community index per worker."""
        state, _, _ = self._require_fitted()
        return [int(c) for c in state.hard_communities()]

    def item_clusters(self) -> List[int]:
        """MAP cluster index per item."""
        state, _, _ = self._require_fitted()
        return [int(c) for c in state.hard_clusters()]

    def n_effective_communities(self) -> int:
        """Communities with non-negligible expected membership."""
        state, _, _ = self._require_fitted()
        return state.effective_communities()

    def n_effective_clusters(self) -> int:
        """Item clusters with non-negligible expected occupancy."""
        state, _, _ = self._require_fitted()
        return state.effective_clusters()

    def community_reliability(self) -> np.ndarray:
        """Reliability weights ``w_m`` of the consensus estimator."""
        _, consensus, _ = self._require_fitted()
        return consensus.community_weights.copy()
