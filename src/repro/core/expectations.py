"""Expectation identities of paper Appendix B, vectorised.

These are the building blocks of both the batch VI (Alg. 1) and the SVI
(Alg. 2) updates:

* ``E[ln ψ_tm]`` and ``E[ln φ_t]`` under their Dirichlet/Beta posteriors
  (digamma identities);
* ``E[ln π_m]`` and ``E[ln τ_t]`` under truncated stick-breaking Beta
  posteriors;
* the answer log-likelihood matrix
  ``L[n, t, m] = E[ln p(x_n | ψ_tm)] = Σ_c x_nc E[ln ψ_tmc]`` (up to the
  multinomial coefficient, constant in ``(t, m)``).

All functions are pure and allocate their outputs; chunking for very large
answer sets lives in the callers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.special import digamma

from repro.core.state import CPAState
from repro.utils.math import stick_breaking_expectations


def expected_log_psi(lam: np.ndarray) -> np.ndarray:
    """``E[ln ψ_tmc]`` for ``ψ_tm ~ Dir(λ_tm)``; shape ``(T, M, C)``."""
    return digamma(lam) - digamma(lam.sum(axis=-1, keepdims=True))


def expected_log_phi_beta(zeta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(E[ln φ_tc], E[ln(1 - φ_tc)])`` for per-label Beta posteriors.

    ``zeta`` has shape ``(T, C, 2)`` with ``[..., 0] = a`` (presence) and
    ``[..., 1] = b`` (absence).
    """
    total = digamma(zeta.sum(axis=-1))
    return digamma(zeta[..., 0]) - total, digamma(zeta[..., 1]) - total


def expected_log_pi(rho: np.ndarray) -> np.ndarray:
    """``E[ln π_m]`` from the worker-stick Beta posteriors; shape ``(M,)``."""
    return stick_breaking_expectations(rho[:, 0], rho[:, 1])


def expected_log_tau(ups: np.ndarray) -> np.ndarray:
    """``E[ln τ_t]`` from the item-stick Beta posteriors; shape ``(T,)``."""
    return stick_breaking_expectations(ups[:, 0], ups[:, 1])


def answer_log_likelihood(
    indicators: np.ndarray,
    e_log_psi: np.ndarray,
    chunk_size: int = 8192,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``L[n, t, m] = Σ_c x_nc E[ln ψ_tmc]`` for all answers ``n``.

    ``indicators`` is the ``(N, C)`` 0/1 answer matrix; ``e_log_psi`` is
    ``(T, M, C)``.  Computed as a single matmul per chunk:
    ``(N, C) @ (C, T*M) → (N, T*M)``, reshaped to ``(N, T, M)``.
    """
    n = indicators.shape[0]
    t, m, c = e_log_psi.shape
    flat = e_log_psi.reshape(t * m, c).T  # (C, T*M)
    if out is None:
        out = np.empty((n, t, m), dtype=np.result_type(indicators, e_log_psi))
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        out[start:stop] = (indicators[start:stop] @ flat).reshape(stop - start, t, m)
    return out


def state_expectations(
    state: CPAState,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """All per-state expectation arrays in one call.

    Returns ``(E[ln π], E[ln τ], E[ln ψ], E[ln φ], E[ln(1-φ)])``.
    """
    e_log_pi = expected_log_pi(state.rho)
    e_log_tau = expected_log_tau(state.ups)
    e_log_psi = expected_log_psi(state.lam)
    e_log_phi, e_log_phi_c = expected_log_phi_beta(state.zeta)
    return e_log_pi, e_log_tau, e_log_psi, e_log_phi, e_log_phi_c


def map_estimate_dirichlet(lam: np.ndarray) -> np.ndarray:
    """MAP (mode) of Dirichlet rows along the last axis, with mean fallback.

    The mode ``(λ_c - 1) / (Σλ - C)`` exists only when every ``λ_c > 1``;
    rows violating that (common under a sparse prior) fall back to the
    posterior mean — a standard, well-defined surrogate noted in
    DESIGN.md.  Output rows are valid probability vectors.
    """
    lam = np.asarray(lam, dtype=float)
    c = lam.shape[-1]
    total = lam.sum(axis=-1, keepdims=True)
    mean = lam / total
    with np.errstate(invalid="ignore", divide="ignore"):
        mode = (lam - 1.0) / (total - c)
    use_mode = np.all(lam > 1.0, axis=-1, keepdims=True) & (total > c)
    return np.where(use_mode, mode, mean)
