"""MAP label-set prediction (paper §3.4 and Appendix D).

For item ``i`` with answering workers ``U_i``, the paper's predictive
objective is

``p(y_i, x_{U_i}) = Σ_t w_it · p(y_i | φ̂_t)``  with
``w_it = ϕ_it · Π_{u ∈ U_i} Σ_m κ_um p(x_iu | ψ_tm^MAP)``,

maximised over label sets ``y_i``.  Exhaustive maximisation is ``O(2^C)``
(NP-hard in general, §3.4), so the default is the paper's greedy search:
start from the empty set and repeatedly add the label that most increases
the objective, stopping when no label improves it.  ``p(y | φ̂_t)`` uses
per-label Bernoulli semantics (DESIGN.md §4.3), which makes the greedy
stopping rule well-posed.

All computations run in log space: the per-cluster factor ``ln G_t(y)``
starts at ``Σ_c ln(1 - φ̂_tc)`` and adding label ``c`` shifts it by the
log-odds ``ln φ̂_tc - ln(1 - φ̂_tc)``; the objective is
``logsumexp_t(ln w_it + ln G_t)``.  The per-item search is embarrassingly
parallel (paper §3.4), which :mod:`repro.core.mapreduce` exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from repro.core.config import CPAConfig
from repro.core.consensus import ClusterConsensus
from repro.core.expectations import map_estimate_dirichlet
from repro.core.state import CPAState
from repro.data.answers import AnswerMatrix
from repro.errors import PredictionError
from repro.utils.math import logsumexp, safe_log


@dataclass(frozen=True)
class PredictionDetail:
    """Per-item diagnostics accompanying a predicted label set."""

    labels: FrozenSet[int]
    log_objective: float
    cluster_weights: np.ndarray


def item_cluster_log_weights(
    state: CPAState,
    consensus: ClusterConsensus,
    answers: AnswerMatrix,
    items: Sequence[int],
    *,
    use_phi: bool = True,
) -> np.ndarray:
    """``ln w_it`` (unnormalised) for each requested item; shape ``(len, T)``.

    Follows Appendix D: the fitted responsibility ``ϕ_it`` (or the cluster
    prior for unseen items / ``use_phi=False``) times the product over the
    item's answers of the community-mixture likelihood
    ``Σ_m κ_um p(x_iu | ψ_tm^MAP)``.
    """
    psi_map = map_estimate_dirichlet(state.lam)  # (T, M, C)
    log_psi = safe_log(psi_map)
    prior = safe_log(consensus.cluster_weights)

    out = np.empty((len(items), state.n_clusters))
    for row, item in enumerate(items):
        if use_phi and 0 <= item < state.n_items:
            base = safe_log(state.phi[item])
        else:
            base = prior.copy()
        scores = base.copy()
        for worker in answers.workers_for_item(item):
            labels = answers.get(item, worker)
            if not labels:
                continue
            idx = sorted(labels)
            # ln p(x | ψ_tm) = Σ_{c in x} ln ψ_tmc   (multinomial, constant
            # coefficient dropped — it cancels in the normalisation).
            log_like = log_psi[:, :, idx].sum(axis=2)  # (T, M)
            mix = logsumexp(log_like + safe_log(state.kappa[worker])[None, :], axis=1)
            scores += mix
        out[row] = scores
    return out


def item_evidence(
    state: CPAState,
    consensus: ClusterConsensus,
    answers: AnswerMatrix,
    items: Sequence[int],
) -> np.ndarray:
    """Per-item, per-label log-likelihood-ratio evidence; shape ``(len, C)``.

    For item ``i`` and label ``c`` each answering worker ``u`` contributes
    ``ln P(x_iuc | y_ic = 1) - ln P(x_iuc | y_ic = 0)`` under the worker's
    community-mixed two-coin rates (``s_uc = Σ_m κ_um s_mc`` etc.).
    Returns zeros when the consensus carries no label rates — prediction
    then degenerates to the paper's literal Appendix-D objective.
    """
    out = np.zeros((len(items), state.n_labels))
    rates = consensus.label_rates
    if rates is None:
        return out
    for row, item in enumerate(items):
        for worker in answers.workers_for_item(item):
            labels = answers.get(item, worker)
            if not labels:
                continue
            kappa_u = state.kappa[worker]  # (M,)
            sens = kappa_u @ rates.sensitivity  # (C,) mix probabilities first
            false = kappa_u @ rates.false_rate
            x = np.zeros(state.n_labels)
            x[sorted(labels)] = 1.0
            present = x * (safe_log(sens) - safe_log(false))
            absent = (1.0 - x) * (safe_log(1.0 - sens) - safe_log(1.0 - false))
            out[row] += present + absent
    return out


def greedy_map_labels(
    log_weights: np.ndarray,
    inclusion: np.ndarray,
    *,
    evidence: Optional[np.ndarray] = None,
    max_labels: int = 0,
    min_gain: float = 1e-9,
) -> PredictionDetail:
    """Greedy MAP search for one item (paper §3.4's approximation).

    Parameters
    ----------
    log_weights:
        ``(T,)`` unnormalised ``ln w_t`` for this item.
    inclusion:
        ``(T, C)`` consensus inclusion probabilities ``φ̂``.
    evidence:
        Optional ``(C,)`` per-label log-likelihood-ratio offsets from the
        item's own answers (see :func:`item_evidence`).
    max_labels:
        Optional cap on the label-set size (0 = up to ``C``).
    min_gain:
        Minimum log-objective improvement to keep growing — guards against
        cycling on ties introduced by floating-point noise.
    """
    n_clusters, n_labels = inclusion.shape
    if log_weights.shape != (n_clusters,):
        raise PredictionError("log_weights shape disagrees with inclusion matrix")
    cap = max_labels if max_labels > 0 else n_labels

    log_incl = safe_log(inclusion)
    log_excl = safe_log(1.0 - inclusion)
    log_odds = log_incl - log_excl  # (T, C)
    if evidence is not None:
        log_odds = log_odds + np.asarray(evidence)[None, :]

    log_g = log_excl.sum(axis=1)  # ln G_t(∅)
    current = float(logsumexp(log_weights + log_g))
    chosen: List[int] = []
    available = np.ones(n_labels, dtype=bool)

    while len(chosen) < cap and available.any():
        # Candidate objective for every still-available label in one shot:
        # obj_c = logsumexp_t( ln w_t + ln G_t + log_odds_tc ).
        cand = logsumexp(
            (log_weights + log_g)[:, None] + log_odds, axis=0
        )  # (C,)
        cand[~available] = -np.inf
        best = int(np.argmax(cand))
        if cand[best] <= current + min_gain:
            break
        chosen.append(best)
        available[best] = False
        log_g = log_g + log_odds[:, best]
        current = float(cand[best])

    posterior = np.exp(log_weights + log_g - logsumexp(log_weights + log_g))
    return PredictionDetail(
        labels=frozenset(chosen),
        log_objective=current,
        cluster_weights=posterior,
    )


def exhaustive_map_labels(
    log_weights: np.ndarray,
    inclusion: np.ndarray,
    *,
    evidence: Optional[np.ndarray] = None,
    limit: int = 16,
) -> PredictionDetail:
    """Exact ``2^C`` MAP search (tractable for small label spaces only).

    Used by the `No L` ablation study (paper §5.4 runs it on the movie
    dataset only) and by tests validating the greedy approximation.
    """
    n_clusters, n_labels = inclusion.shape
    if n_labels > limit:
        raise PredictionError(
            f"exhaustive search over {n_labels} labels exceeds the limit {limit}"
        )
    log_incl = safe_log(inclusion)
    log_excl = safe_log(1.0 - inclusion)
    log_odds = log_incl - log_excl
    if evidence is not None:
        log_odds = log_odds + np.asarray(evidence)[None, :]

    subsets = np.arange(2**n_labels, dtype=np.uint64)
    bits = (subsets[:, None] >> np.arange(n_labels, dtype=np.uint64)[None, :]) & 1
    bits = bits.astype(np.float64)  # (2^C, C)

    base = log_weights + log_excl.sum(axis=1)  # (T,)
    scores = logsumexp(base[None, :] + bits @ log_odds.T, axis=1)  # (2^C,)
    best = int(np.argmax(scores))
    labels = frozenset(int(c) for c in range(n_labels) if (best >> c) & 1)

    log_g = log_excl.sum(axis=1) + bits[best] @ log_odds.T
    posterior = np.exp(log_weights + log_g - logsumexp(log_weights + log_g))
    return PredictionDetail(
        labels=labels,
        log_objective=float(scores[best]),
        cluster_weights=posterior,
    )


def predict_items(
    state: CPAState,
    consensus: ClusterConsensus,
    answers: AnswerMatrix,
    config: CPAConfig,
    items: Optional[Sequence[int]] = None,
    *,
    exhaustive: bool = False,
) -> Dict[int, PredictionDetail]:
    """Predict label sets for ``items`` (default: every item with answers)."""
    if items is None:
        items = answers.answered_items()
    items = [int(i) for i in items]
    log_weights = item_cluster_log_weights(state, consensus, answers, items)
    if config.use_item_evidence and consensus.label_rates is not None:
        evidence = config.evidence_weight * item_evidence(
            state, consensus, answers, items
        )
    else:
        evidence = np.zeros((len(items), state.n_labels))

    results: Dict[int, PredictionDetail] = {}
    for row, item in enumerate(items):
        if exhaustive:
            results[item] = exhaustive_map_labels(
                log_weights[row],
                consensus.inclusion,
                evidence=evidence[row],
                limit=config.exhaustive_label_limit,
            )
        else:
            results[item] = greedy_map_labels(
                log_weights[row],
                consensus.inclusion,
                evidence=evidence[row],
                max_labels=config.max_predicted_labels,
            )
    return results


def label_probabilities(
    state: CPAState,
    consensus: ClusterConsensus,
    answers: AnswerMatrix,
    config: Optional[CPAConfig] = None,
    items: Optional[Sequence[int]] = None,
    *,
    evidence_weight: Optional[float] = None,
) -> np.ndarray:
    """Marginal per-label posterior inclusion probabilities.

    The cluster-mixture prior ``Σ_t ŵ_it φ̂_tc`` is combined (in log-odds
    space) with the per-item evidence of :func:`item_evidence` when
    available.  A soft alternative to the MAP set — useful for ranking and
    threshold sweeps.  Rows align with ``items`` (default: all items that
    received answers).

    Evidence weighting follows the same rules as :func:`predict_items`:
    with a ``config``, evidence applies iff ``config.use_item_evidence``
    at strength ``config.evidence_weight`` — so ``predict_proba`` and
    ``predict`` agree on whether evidence is used at all.  An explicit
    ``evidence_weight`` overrides the config (``0`` disables evidence);
    without either, evidence applies at weight 1.
    """
    if evidence_weight is None:
        if config is not None:
            evidence_weight = (
                config.evidence_weight if config.use_item_evidence else 0.0
            )
        else:
            evidence_weight = 1.0
    if items is None:
        items = answers.answered_items()
    items = [int(i) for i in items]
    log_w = item_cluster_log_weights(state, consensus, answers, items)
    norm = logsumexp(log_w, axis=1, keepdims=True)
    weights = np.exp(log_w - norm)
    prior = np.clip(weights @ consensus.inclusion, 1e-6, 1.0 - 1e-6)
    logits = np.log(prior) - np.log1p(-prior)
    if evidence_weight > 0 and consensus.label_rates is not None:
        logits += evidence_weight * item_evidence(state, consensus, answers, items)
    return 1.0 / (1.0 + np.exp(-logits))
