"""The variational state of the CPA model.

Holds every variational parameter of paper §3.3 in dense numpy form:

=========  =====================  ==========================================
symbol     array (shape)          variational factor
=========  =====================  ==========================================
``rho``    ``(M-1, 2)``           ``q(π'_m) = Beta(ρ_m1, ρ_m2)``
``ups``    ``(T-1, 2)``           ``q(τ'_t) = Beta(υ_t1, υ_t2)``
``lam``    ``(T, M, C)``          ``q(ψ_tm) = Dir(λ_tm)``
``zeta``   ``(T, C, 2)``          per-label Beta posterior of ``φ_t``
``kappa``  ``(U, M)``             ``q(z_u) = Mult(κ_u)``
``phi``    ``(I, T)``             ``q(l_i) = Mult(ϕ_i)``
=========  =====================  ==========================================

``zeta`` deviates from the paper's single Dirichlet (see DESIGN.md §4.3):
true label sets are *subsets*, so each label's inclusion gets a Beta
posterior — ``zeta[t, c] = (a, b)`` with ``a`` counting observed presence
and ``b`` observed absence under cluster ``t``.

The state additionally tracks ``cell_mass`` (``(T, M)`` expected answer
counts per cluster-community cell), the sufficient statistic the consensus
estimator divides by, and — during online learning — ``mu``
(``(I, T-1)``), the canonical parameterisation of ``ϕ`` from paper §4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import CPAConfig
from repro.errors import ValidationError
from repro.utils.math import normalize_rows
from repro.utils.random import RandomState, Seed


@dataclass
class CPAState:
    """Mutable container of variational parameters (see module docstring)."""

    n_items: int
    n_workers: int
    n_labels: int
    n_clusters: int
    n_communities: int
    rho: np.ndarray
    ups: np.ndarray
    lam: np.ndarray
    zeta: np.ndarray
    kappa: np.ndarray
    phi: np.ndarray
    cell_mass: np.ndarray
    mu: Optional[np.ndarray] = None
    batches_seen: int = 0

    def validate(self) -> None:
        """Raise if any parameter has drifted out of its legal domain."""
        checks = [
            ("rho", self.rho, (self.n_communities - 1, 2)),
            ("ups", self.ups, (self.n_clusters - 1, 2)),
            ("lam", self.lam, (self.n_clusters, self.n_communities, self.n_labels)),
            ("zeta", self.zeta, (self.n_clusters, self.n_labels, 2)),
            ("kappa", self.kappa, (self.n_workers, self.n_communities)),
            ("phi", self.phi, (self.n_items, self.n_clusters)),
            ("cell_mass", self.cell_mass, (self.n_clusters, self.n_communities)),
        ]
        for name, array, shape in checks:
            if array.shape != shape:
                raise ValidationError(f"{name} has shape {array.shape}, expected {shape}")
            if not np.all(np.isfinite(array)):
                raise ValidationError(f"{name} contains non-finite values")
        for name, array in (
            ("rho", self.rho),
            ("ups", self.ups),
            ("lam", self.lam),
            ("zeta", self.zeta),
        ):
            if np.any(array <= 0):
                raise ValidationError(f"{name} must stay strictly positive")
        for name, array in (("kappa", self.kappa), ("phi", self.phi)):
            # float32 rows accumulate roundoff proportional to the row
            # length; loosen the normalisation check accordingly.
            single = array.dtype == np.float32
            atol = 1e-4 if single else 1e-6
            floor = -1e-6 if single else -1e-9
            if np.any(array < floor) or not np.allclose(array.sum(axis=-1), 1.0, atol=atol):
                raise ValidationError(f"{name} rows must be distributions")

    def copy(self) -> "CPAState":
        """Deep copy of all parameter arrays."""
        return CPAState(
            n_items=self.n_items,
            n_workers=self.n_workers,
            n_labels=self.n_labels,
            n_clusters=self.n_clusters,
            n_communities=self.n_communities,
            rho=self.rho.copy(),
            ups=self.ups.copy(),
            lam=self.lam.copy(),
            zeta=self.zeta.copy(),
            kappa=self.kappa.copy(),
            phi=self.phi.copy(),
            cell_mass=self.cell_mass.copy(),
            mu=None if self.mu is None else self.mu.copy(),
            batches_seen=self.batches_seen,
        )

    def permuted(
        self,
        item_permutation: Optional[np.ndarray] = None,
        worker_permutation: Optional[np.ndarray] = None,
    ) -> "CPAState":
        """Equivariant copy under item/worker relabelling.

        ``item_permutation[i]`` is the new id of item ``i`` (likewise for
        workers): row ``i`` of ``ϕ``/``µ`` moves to row
        ``item_permutation[i]``, row ``u`` of ``κ`` to
        ``worker_permutation[u]``.  Global parameters (``ρ``, ``υ``,
        ``λ``, ``ζ``, ``cell_mass``) are not indexed by items or workers
        and are copied unchanged.  Used by the invariance tests: running
        inference on a relabelled matrix from the correspondingly permuted
        state must track the original trajectory row-for-row.
        """

        def _check(name: str, perm: np.ndarray, size: int) -> np.ndarray:
            perm = np.asarray(perm, dtype=np.int64)
            if perm.shape != (size,) or not np.array_equal(
                np.sort(perm), np.arange(size)
            ):
                raise ValidationError(f"{name} must be a permutation of range({size})")
            return perm

        out = self.copy()
        if item_permutation is not None:
            perm = _check("item_permutation", item_permutation, self.n_items)
            out.phi[perm] = self.phi
            if self.mu is not None:
                assert out.mu is not None
                out.mu[perm] = self.mu
        if worker_permutation is not None:
            perm = _check("worker_permutation", worker_permutation, self.n_workers)
            out.kappa[perm] = self.kappa
        return out

    def localize_clusters(self, limits: np.ndarray) -> None:
        """Constrain each item's cluster posterior to a prefix window.

        ``limits[i]`` is item ``i``'s window width: ``ϕ_i`` keeps only
        clusters ``[0, limits[i])`` and is renormalised (exact
        conditioning — see :func:`repro.core.kernels.truncate_rows`).
        This is the state-level entry point of shard-local truncation
        adaptation (DESIGN.md §6): engines call it once after
        initialisation so every subsequent windowed shard contraction is
        exact, and keep ``ϕ`` inside the windows via masked updates.
        ``µ`` (when initialised) is re-synchronised from the projected
        ``ϕ``.
        """
        from repro.core.kernels import truncate_rows

        self.phi = truncate_rows(self.phi, limits)
        if self.mu is not None:
            self.sync_mu_from_phi()

    def hard_communities(self) -> np.ndarray:
        """MAP community of each worker (argmax of ``κ``)."""
        return np.argmax(self.kappa, axis=1)

    def hard_clusters(self) -> np.ndarray:
        """MAP cluster of each item (argmax of ``ϕ``)."""
        return np.argmax(self.phi, axis=1)

    def effective_communities(self, min_mass: float = 0.5) -> int:
        """Number of communities with expected membership above ``min_mass``."""
        return int((self.kappa.sum(axis=0) > min_mass).sum())

    def effective_clusters(self, min_mass: float = 0.5) -> int:
        """Number of item clusters with expected occupancy above ``min_mass``."""
        return int((self.phi.sum(axis=0) > min_mass).sum())

    def sync_mu_from_phi(self) -> None:
        """Initialise ``µ`` (canonical ϕ parameters, Eq. 16/17) from ``ϕ``."""
        safe = np.clip(self.phi, 1e-10, None)
        self.mu = np.log(safe[:, :-1]) - np.log(safe[:, -1:])

    def sync_phi_from_mu(self) -> None:
        """Recover ``ϕ`` from ``µ`` via the softmax transform (Eq. 16/17)."""
        if self.mu is None:
            raise ValidationError("mu has not been initialised")
        padded = np.concatenate(
            [self.mu, np.zeros((self.n_items, 1), dtype=self.mu.dtype)], axis=1
        )
        padded -= padded.max(axis=1, keepdims=True)
        expd = np.exp(padded)
        self.phi = expd / expd.sum(axis=1, keepdims=True)


def _farthest_point_responsibilities(
    signatures: np.ndarray,
    n_components: int,
    rng: np.random.Generator,
    hard_weight: float,
) -> np.ndarray:
    """Seeded near-hard assignment of rows to ``n_components`` groups.

    Seeds are chosen by farthest-point (kmeans++-style) sampling on cosine
    distance between row signatures; every row is then assigned to its
    nearest seed with probability mass ``hard_weight`` and the remainder
    spread uniformly.  Rows with empty signatures are assigned uniformly.

    This is the symmetry-breaking initialisation for the DP-mixture VI:
    a near-uniform start makes the stick-breaking prior collapse all mass
    onto the first components before the likelihood can differentiate
    them (a well-known failure mode of truncated DP variational
    inference), whereas seeded hard assignments give every component a
    distinct, data-backed profile from sweep one.
    """
    rows = signatures.shape[0]
    norms = np.linalg.norm(signatures, axis=1)
    valid = norms > 0
    unit = np.zeros_like(signatures)
    unit[valid] = signatures[valid] / norms[valid, None]

    seeds = [int(rng.integers(rows))]
    similarity = unit @ unit[seeds[0]]
    for _ in range(min(n_components, rows) - 1):
        distance = 1.0 - similarity
        distance[seeds] = -np.inf
        jitter = 1e-6 * rng.random(rows)
        next_seed = int(np.argmax(distance + jitter))
        seeds.append(next_seed)
        similarity = np.maximum(similarity, unit @ unit[next_seed])

    seed_matrix = unit[seeds]  # (S, D)
    assignment = np.argmax(unit @ seed_matrix.T, axis=1)  # (rows,)
    assignment[~valid] = rng.integers(len(seeds), size=int((~valid).sum()))

    responsibilities = np.full(
        (rows, n_components), (1.0 - hard_weight) / n_components
    )
    responsibilities[np.arange(rows), assignment] += hard_weight
    return normalize_rows(responsibilities)


def initialize_state(
    config: CPAConfig,
    n_items: int,
    n_workers: int,
    n_labels: int,
    seed: Seed = None,
    *,
    item_signatures: Optional[np.ndarray] = None,
    worker_signatures: Optional[np.ndarray] = None,
) -> CPAState:
    """Initialisation of all variational parameters (paper Alg. 1).

    When answer-derived ``item_signatures`` / ``worker_signatures`` are
    supplied (shape ``(I, C)`` / ``(U, C)``), responsibilities start from
    seeded near-hard assignments (see
    :func:`_farthest_point_responsibilities`); otherwise they start from
    jittered random hard assignments.  Dirichlet/Beta parameters start at
    their priors with small positive jitter.
    """
    rng = RandomState(config.seed if seed is None else seed)
    n_clusters, n_communities = config.resolve_truncations(n_items, n_workers)
    dtype = config.resolve_dtype()
    hard_weight = 0.8

    def random_hard(rows: int, cols: int) -> np.ndarray:
        responsibilities = np.full((rows, cols), (1.0 - hard_weight) / cols)
        assignment = rng.integers(cols, size=rows)
        responsibilities[np.arange(rows), assignment] += hard_weight
        noise = 1.0 + config.init_noise * rng.random((rows, cols))
        return normalize_rows(responsibilities * noise)

    if worker_signatures is not None:
        kappa = _farthest_point_responsibilities(
            worker_signatures, n_communities, rng, hard_weight
        )
    else:
        kappa = random_hard(n_workers, n_communities)
    if item_signatures is not None:
        phi = _farthest_point_responsibilities(
            item_signatures, n_clusters, rng, hard_weight
        )
    else:
        phi = random_hard(n_items, n_clusters)
    kappa = kappa.astype(dtype, copy=False)
    phi = phi.astype(dtype, copy=False)

    rho = np.empty((n_communities - 1, 2), dtype=dtype)
    rho[:, 0] = 1.0
    rho[:, 1] = config.alpha
    ups = np.empty((n_clusters - 1, 2), dtype=dtype)
    ups[:, 0] = 1.0
    ups[:, 1] = config.epsilon

    lam = (
        config.gamma0
        * (1.0 + 0.1 * rng.random((n_clusters, n_communities, n_labels)))
    ).astype(dtype, copy=False)
    zeta = np.full((n_clusters, n_labels, 2), config.eta0, dtype=dtype)
    cell_mass = np.zeros((n_clusters, n_communities), dtype=dtype)

    return CPAState(
        n_items=n_items,
        n_workers=n_workers,
        n_labels=n_labels,
        n_clusters=n_clusters,
        n_communities=n_communities,
        rho=rho,
        ups=ups,
        lam=lam,
        zeta=zeta,
        kappa=kappa,
        phi=phi,
        cell_mass=cell_mass,
    )
