"""External prior knowledge about label dependencies (paper §6 extension).

The paper notes that expert knowledge about label relations "could be
incorporated in our approach … expressed as conditional probabilities,
which are then integrated in the label selection, i.e., step 2b of the
generative process".  This module provides that hook without touching the
core inference: a :class:`LabelKnowledge` object carries implication-style
conditional probabilities ``P(label b | label a)``, and
:func:`apply_knowledge` folds them into a fitted
:class:`~repro.core.consensus.ClusterConsensus` by adjusting each
cluster's inclusion probabilities — labels implied by a cluster's
confident labels are boosted, labels whose implicants are absent are
left untouched (knowledge is used only positively, mirroring the paper's
co-occurrence semantics).

Typical use::

    knowledge = LabelKnowledge(n_labels=5)
    knowledge.add_implication(cause=0, effect=1, probability=0.9)  # sky -> cloud
    model = CPAModel().fit(dataset)
    adjusted = apply_knowledge(model.consensus_, knowledge)
    predictions = predict_items(model.state_, adjusted, dataset.answers, model.config)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.consensus import ClusterConsensus
from repro.errors import ValidationError


@dataclass
class LabelKnowledge:
    """A set of conditional label dependencies ``P(effect | cause)``.

    Only dependencies *stronger than the model would otherwise assume* are
    worth encoding; a probability of 0.5 is neutral under the log-odds
    update used by :func:`apply_knowledge`.
    """

    n_labels: int
    implications: List[Tuple[int, int, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_labels <= 0:
            raise ValidationError("n_labels must be positive")
        for cause, effect, probability in self.implications:
            self._check(cause, effect, probability)

    def _check(self, cause: int, effect: int, probability: float) -> None:
        for name, label in (("cause", cause), ("effect", effect)):
            if not 0 <= label < self.n_labels:
                raise ValidationError(f"{name} label {label} out of range")
        if cause == effect:
            raise ValidationError("a label cannot imply itself")
        if not 0.0 < probability < 1.0:
            raise ValidationError("probability must lie strictly in (0, 1)")

    def add_implication(self, cause: int, effect: int, probability: float) -> None:
        """Record ``P(effect present | cause present) = probability``."""
        self._check(cause, effect, probability)
        self.implications.append((cause, effect, float(probability)))

    def conditional_matrix(self) -> np.ndarray:
        """Dense ``(C, C)`` matrix of conditionals; 0.5 (neutral) elsewhere.

        When the same (cause, effect) pair is recorded twice, the last
        entry wins — callers can refine knowledge incrementally.
        """
        matrix = np.full((self.n_labels, self.n_labels), 0.5)
        for cause, effect, probability in self.implications:
            matrix[cause, effect] = probability
        return matrix

    @classmethod
    def from_cooccurrence_graph(
        cls, graph, n_labels: int, *, strength: float = 0.8, min_weight: float = 0.3
    ) -> "LabelKnowledge":
        """Bootstrap knowledge from a Fig-1 co-occurrence graph.

        Every edge at or above ``min_weight`` becomes a symmetric pair of
        implications with conditional probability ``strength`` — a cheap
        stand-in for curated expert rules, useful in examples and tests.
        """
        if not 0.5 < strength < 1.0:
            raise ValidationError("strength must lie in (0.5, 1)")
        knowledge = cls(n_labels=n_labels)
        for a, b, data in graph.edges(data=True):
            if data.get("weight", 0.0) >= min_weight:
                knowledge.add_implication(int(a), int(b), strength)
                knowledge.add_implication(int(b), int(a), strength)
        return knowledge


def apply_knowledge(
    consensus: ClusterConsensus,
    knowledge: LabelKnowledge,
    *,
    confidence_threshold: float = 0.6,
) -> ClusterConsensus:
    """Fold conditional label knowledge into the cluster consensus.

    For every cluster ``t`` and every implication ``a → b`` whose cause is
    confidently present (``φ̂_ta ≥ confidence_threshold``), the effect's
    inclusion odds are updated by the implication's log-odds:

    ``logit(φ̂'_tb) = logit(φ̂_tb) + φ̂_ta · logit(P(b | a))``

    The cause's confidence scales the update, so weakly-present causes
    contribute proportionally less.  Returns a new consensus; the input is
    unchanged.
    """
    if knowledge.n_labels != consensus.inclusion.shape[1]:
        raise ValidationError("knowledge and consensus disagree on label count")
    if not 0.5 <= confidence_threshold < 1.0:
        raise ValidationError("confidence_threshold must lie in [0.5, 1)")

    inclusion = np.clip(consensus.inclusion, 1e-6, 1 - 1e-6)
    logits = np.log(inclusion) - np.log1p(-inclusion)
    for cause, effect, probability in knowledge.implications:
        cause_conf = inclusion[:, cause]
        active = cause_conf >= confidence_threshold
        if not active.any():
            continue
        shift = np.log(probability) - np.log1p(-probability)
        logits[active, effect] += cause_conf[active] * shift
    adjusted = 1.0 / (1.0 + np.exp(-logits))
    adjusted = np.clip(adjusted, 1e-4, 1 - 1e-4)

    return ClusterConsensus(
        inclusion=adjusted,
        cluster_weights=consensus.cluster_weights,
        community_weights=consensus.community_weights,
        discriminability=consensus.discriminability,
        community_sizes=consensus.community_sizes,
        label_rates=consensus.label_rates,
    )


def knowledge_coverage(knowledge: LabelKnowledge) -> Dict[str, float]:
    """Summary statistics of a knowledge base (for reports/audits)."""
    if not knowledge.implications:
        return {"n_rules": 0, "labels_covered": 0, "mean_strength": 0.0}
    covered = {c for c, _, _ in knowledge.implications} | {
        e for _, e, _ in knowledge.implications
    }
    strengths = [p for _, _, p in knowledge.implications]
    return {
        "n_rules": len(knowledge.implications),
        "labels_covered": len(covered),
        "mean_strength": float(np.mean(strengths)),
    }
