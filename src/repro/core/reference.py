"""Frozen seed-PR implementations of the hot inference paths.

These classes preserve, verbatim, the pre-kernel-layer code paths: dense
per-answer likelihood evaluation repeated for every consumer, and
``np.add.at`` scatter accumulation.  They exist for two reasons only:

* **parity testing** — the fused kernels of :mod:`repro.core.kernels`
  must reproduce these trajectories within tight tolerances
  (``tests/test_kernels.py``);
* **benchmarking** — ``benchmarks/bench_kernels.py`` measures the fused
  layer's speedup against this baseline and records it in
  ``BENCH_core.json``.

Production code must not import this module.  Do not "optimise" it: its
value is being a faithful snapshot of the seed implementation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.expectations import answer_log_likelihood
from repro.core.inference import VariationalInference
from repro.core.svi import StochasticInference, _BatchData
from repro.errors import InferenceError
from repro.utils.math import log_normalize_rows
from repro.utils.parallel import split_chunks

#: the seed's chunk size for (chunk, T, M) intermediates.
CHUNK = 8192


class ReferenceVariationalInference(VariationalInference):
    """Batch VI with the seed's sweep/statistics/ELBO implementations.

    Shares ``__init__`` (and therefore the exact initial state for a given
    seed) with :class:`VariationalInference`; only the data-dependent
    evaluations differ.
    """

    def sweep(self) -> float:
        state = self.state
        from repro.core.expectations import (
            expected_log_phi_beta,
            expected_log_pi,
            expected_log_psi,
            expected_log_tau,
        )

        e_log_pi = expected_log_pi(state.rho)
        e_log_tau = expected_log_tau(state.ups)
        e_log_psi = expected_log_psi(state.lam)

        # --- local update: worker communities (Eq. 2) --------------------
        kappa_delta = 0.0
        if not self.fix_singleton_communities:
            kappa_scores = np.tile(e_log_pi, (self.n_workers, 1))
            for start in range(0, self.items.size, CHUNK):
                stop = min(start + CHUNK, self.items.size)
                like = answer_log_likelihood(
                    self.indicators[start:stop], e_log_psi
                )  # (n, T, M)
                weighted = np.einsum(
                    "nt,ntm->nm", state.phi[self.items[start:stop]], like
                )
                np.add.at(kappa_scores, self.workers[start:stop], weighted)
            new_kappa = log_normalize_rows(kappa_scores)
            kappa_delta = float(np.max(np.abs(new_kappa - state.kappa)))
            state.kappa = new_kappa

        # --- local update: item clusters (corrected Eq. 3) ---------------
        phi_delta = 0.0
        if not self.fix_singleton_clusters:
            phi_scores = np.tile(e_log_tau, (self.n_items, 1))
            for start in range(0, self.items.size, CHUNK):
                stop = min(start + CHUNK, self.items.size)
                like = answer_log_likelihood(self.indicators[start:stop], e_log_psi)
                weighted = np.einsum(
                    "nm,ntm->nt", state.kappa[self.workers[start:stop]], like
                )
                np.add.at(phi_scores, self.items[start:stop], weighted)
            if self.truth_mask.any():
                e_log_phi, e_log_phi_c = expected_log_phi_beta(state.zeta)
                y = self.truth_indicator[self.truth_mask]
                supervised = y @ e_log_phi.T + (1.0 - y) @ e_log_phi_c.T
                phi_scores[self.truth_mask] += supervised
            new_phi = log_normalize_rows(phi_scores)
            phi_delta = float(np.max(np.abs(new_phi - state.phi)))
            state.phi = new_phi

        # --- global updates (Eqs. 4-7) ------------------------------------
        self._update_sticks()
        self._update_profiles()
        self._update_label_profiles()
        return max(kappa_delta, phi_delta)

    def _update_profiles(self) -> None:
        state = self.state
        t, m, c = state.lam.shape
        counts = np.zeros((t, m, c))
        mass = np.zeros((t, m))
        for start in range(0, self.items.size, CHUNK):
            stop = min(start + CHUNK, self.items.size)
            phi_n = state.phi[self.items[start:stop]]  # (n, T)
            kappa_n = state.kappa[self.workers[start:stop]]  # (n, M)
            joint = phi_n[:, :, None] * kappa_n[:, None, :]  # (n, T, M)
            mass += joint.sum(axis=0)
            counts += np.einsum(
                "ntm,nc->tmc", joint, self.indicators[start:stop]
            )
        state.lam = self.config.gamma0 + counts
        state.cell_mass = mass

    def elbo(self) -> float:
        from scipy.special import gammaln

        from repro.core.expectations import (
            expected_log_phi_beta,
            expected_log_pi,
            expected_log_psi,
            expected_log_tau,
        )
        from repro.core.inference import _categorical_entropy, _dirichlet_entropy

        state = self.state
        cfg = self.config
        e_log_pi = expected_log_pi(state.rho)
        e_log_tau = expected_log_tau(state.ups)
        e_log_psi = expected_log_psi(state.lam)
        e_log_phi, e_log_phi_c = expected_log_phi_beta(state.zeta)

        value = 0.0
        # E[ln p(x | z, l, ψ)]
        for start in range(0, self.items.size, CHUNK):
            stop = min(start + CHUNK, self.items.size)
            like = answer_log_likelihood(self.indicators[start:stop], e_log_psi)
            joint = (
                state.phi[self.items[start:stop]][:, :, None]
                * state.kappa[self.workers[start:stop]][:, None, :]
            )
            value += float(np.sum(joint * like))
        # E[ln p(z | π)] and E[ln p(l | τ)]
        value += float(state.kappa.sum(axis=0) @ e_log_pi)
        value += float(state.phi.sum(axis=0) @ e_log_tau)
        # E[ln p(y | l, φ)] over observed truth
        if self.truth_mask.any():
            y = self.truth_indicator[self.truth_mask]
            supervised = y @ e_log_phi.T + (1.0 - y) @ e_log_phi_c.T
            value += float(np.sum(state.phi[self.truth_mask] * supervised))
        # Priors on ψ, φ, π', τ'
        t, m, c = state.lam.shape
        value += float(
            t * m * (gammaln(c * cfg.gamma0) - c * gammaln(cfg.gamma0))
            + (cfg.gamma0 - 1.0) * e_log_psi.sum()
        )
        value += float(
            t * c * (gammaln(2 * cfg.eta0) - 2 * gammaln(cfg.eta0))
            + (cfg.eta0 - 1.0) * (e_log_phi.sum() + e_log_phi_c.sum())
        )
        value += self._stick_prior_term(state.rho, cfg.alpha)
        value += self._stick_prior_term(state.ups, cfg.epsilon)
        # Entropies
        value += _categorical_entropy(state.kappa)
        value += _categorical_entropy(state.phi)
        value += float(_dirichlet_entropy(state.lam).sum())
        value += float(_dirichlet_entropy(state.zeta).sum())
        value += float(_dirichlet_entropy(state.rho).sum())
        value += float(_dirichlet_entropy(state.ups).sum())
        if not np.isfinite(value):
            raise InferenceError("ELBO became non-finite; inference diverged")
        return value


def _reference_map_worker_task(task):
    """The seed's MAP-phase task: dense likelihood + ``np.add.at`` scatters.

    Task layout: (start, stop, x, phi_n, local_items, local_worker,
    n_batch_items, e_log_pi, e_log_psi).
    """
    (
        start,
        stop,
        x,
        phi_n,
        local_items,
        local_worker,
        n_batch_items,
        e_log_pi,
        e_log_psi,
    ) = task
    n_chunk_workers = stop - start
    n_clusters, n_communities, n_labels = e_log_psi.shape

    if x.shape[0] == 0:
        return (
            start,
            stop,
            np.tile(log_normalize_rows(e_log_pi[None, :]), (n_chunk_workers, 1)),
            np.zeros((n_batch_items, n_clusters)),
            np.zeros((n_clusters, n_communities, n_labels)),
            np.zeros((n_clusters, n_communities)),
            np.zeros(n_communities),
        )

    like = answer_log_likelihood(x, e_log_psi)  # (n, T, M)

    weighted = np.einsum("nt,ntm->nm", phi_n, like)
    scores = np.tile(e_log_pi, (n_chunk_workers, 1))
    np.add.at(scores, local_worker, weighted)
    kappa_chunk = log_normalize_rows(scores)

    kappa_n = kappa_chunk[local_worker]
    contrib = np.einsum("nm,ntm->nt", kappa_n, like)
    item_evidence = np.zeros((n_batch_items, n_clusters))
    np.add.at(item_evidence, local_items, contrib)

    joint = phi_n[:, :, None] * kappa_n[:, None, :]  # (n, T, M)
    counts = np.einsum("ntm,nc->tmc", joint, x)
    mass = joint.sum(axis=0)
    kappa_mass = kappa_chunk.sum(axis=0)
    return start, stop, kappa_chunk, item_evidence, counts, mass, kappa_mass


class ReferenceStochasticInference(StochasticInference):
    """SVI with the seed's MAP phase and batch statistics.

    The likelihood is re-evaluated densely inside every local refinement
    iteration and statistics are scattered with ``np.add.at`` — exactly
    the seed behaviour the fused path is measured against.
    """

    def _map_reduce(
        self,
        data: _BatchData,
        phi_batch: np.ndarray,
        e_log_pi: np.ndarray,
        e_log_psi: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        phi_n = phi_batch[data.item_local]  # (N_b, T)
        tasks = []
        for chunk in split_chunks(data.batch_workers.size, self.executor.degree):
            lo = int(data.worker_offsets[chunk.start])
            hi = int(data.worker_offsets[chunk.stop])
            tasks.append(
                (
                    chunk.start,
                    chunk.stop,
                    data.indicators[lo:hi],
                    phi_n[lo:hi],
                    data.item_local[lo:hi],
                    data.worker_local[lo:hi] - chunk.start,
                    data.batch_items.size,
                    e_log_pi,
                    e_log_psi,
                )
            )
        pieces = self.executor.map_tasks(_reference_map_worker_task, tasks)

        kappa = np.empty((data.batch_workers.size, e_log_pi.size))
        evidence = np.zeros((data.batch_items.size, self.state.n_clusters))
        counts = np.zeros_like(self.state.lam)
        mass = np.zeros_like(self.state.cell_mass)
        kappa_mass = np.zeros(self.state.n_communities)
        for start, stop, kappa_chunk, ev, cnt, ms, km in pieces:
            kappa[start:stop] = kappa_chunk
            evidence += ev
            counts += cnt
            mass += ms
            kappa_mass += km
        return kappa, evidence, counts, mass, kappa_mass

    def _batch_cell_statistics(
        self, data: _BatchData, phi_batch: np.ndarray, kappa_batch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        phi_rows = phi_batch[data.item_local]
        kappa_rows = kappa_batch[data.worker_local]
        joint = phi_rows[:, :, None] * kappa_rows[:, None, :]  # (N_b, T, M)
        counts = np.einsum("ntm,nc->tmc", joint, data.indicators)
        return counts, joint.sum(axis=0)
