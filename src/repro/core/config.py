"""Hyperparameters of the CPA model and its inference procedures.

The paper sets the stick-breaking truncations "safely … to large values,
e.g., 1000" (§3.2); at our dataset scales a few dozen components suffice
and keep runtime proportionate, so the defaults below adapt to dataset size
via :meth:`CPAConfig.resolve_truncations`.  All symbols follow Table 2 of
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, ValidationError
from repro.utils.parallel import EXECUTOR_KINDS, Executor, make_executor

#: legal values of :attr:`CPAConfig.adaptive_truncation`.
ADAPTIVE_TRUNCATION_MODES = ("auto", "on", "off")


def clamp_truncation(t: int, space: int) -> int:
    """Clamp a truncation level ``t`` to an index space of ``space`` elements.

    The contract (pinned by ``tests/test_adaptive_truncation.py``):

    * a truncation never exceeds the space it truncates — ``T ≤ n_items``
      and ``M ≤ n_workers`` always hold, so no component can be
      structurally unreachable;
    * spaces with at least two elements keep the historical floor of two
      components (one stick), so symmetry breaking has room to work;
    * degenerate spaces (one element, or an empty dataset) resolve to a
      single component — arrays like ``ups`` become ``(0, 2)`` and the
      stick-breaking expectations collapse to the point mass, which the
      inference layer handles.

    The seed implementation applied the clamps in the wrong order
    (``max(2, min(t, n_items))``), returning 2 for 0- or 1-element
    spaces — a truncation larger than the space itself.
    """
    floor = 2 if space >= 2 else 1
    return max(floor, min(int(t), max(int(space), floor)))


@dataclass(frozen=True)
class CPAConfig:
    """Configuration for :class:`repro.core.model.CPAModel`.

    Attributes
    ----------
    truncation_communities:
        Truncation level ``M`` for worker communities (0 = auto: scales
        with the number of workers, capped at ``max_truncation``).
    truncation_clusters:
        Truncation level ``T`` for item clusters (0 = auto).
    alpha:
        CRP concentration for worker communities (paper ``α``).
    epsilon:
        CRP concentration for item clusters (paper ``ε``).
    gamma0:
        Symmetric Dirichlet prior on community answer profiles ``ψ_tm``.
    eta0:
        Symmetric Beta/Dirichlet prior on cluster label profiles ``φ_t``.
    max_iterations / tolerance:
        VI stopping rule: stop when the largest absolute change of any
        local responsibility falls below ``tolerance`` (the paper's
        "parameter differences below 1e-3"), or at the iteration cap.
    forgetting_rate:
        SVI forgetting rate ``r`` in ``ω_b = (1 + b)^-r``; the paper finds
        values in [0.85, 0.9] work best (§4.1).
    svi_iterations:
        Local (κ) refinement sweeps per SVI batch.
    svi_coverage_correction:
        When true (default), each component's SVI step is scaled by how
        much of that component's mass the batch actually observed.  The
        plain Eqs. 18-20 step decays every cluster/community absent from
        the current batch towards its prior, starving components under
        partial-coverage batches (a known failure mode of truncated-DP
        SVI); the correction is the standard importance-weighting fix for
        non-uniform subsampling and is documented as a deviation in
        DESIGN.md.
    svi_batch_answers:
        Engine-level SVI batch size in answers (the paper uses 100,
        §5.3): arrival batches handed to :meth:`CPAModel.partial_fit` are
        split into sub-batches of at most this many answers so the
        Robbins-Monro averaging sees enough steps even when data arrives
        in large increments.
    consensus_floor:
        Discriminability floor ``δ`` keeping community weights positive.
    consensus_smoothing:
        Pseudo-count used when converting cell counts to inclusion rates.
    consensus_blend:
        Pseudo-mass ``ν`` balancing the unsupervised consensus against the
        supervised (observed ground truth) estimate.
    use_item_evidence:
        When true (default), prediction augments the cluster-consensus
        prior with a per-item likelihood term built from community-level
        answering rates (DESIGN.md §4.3's evidence-augmented
        instantiation); setting it false recovers the paper's literal
        Appendix-D objective.
    evidence_weight:
        Multiplier on the per-item evidence term (1 = full Bayes update).
    max_predicted_labels:
        Hard cap on greedy label-set growth (0 = no cap beyond ``C``).
    exhaustive_label_limit:
        Maximum ``C`` for which exhaustive ``2^C`` MAP search is permitted.
    dtype:
        Floating dtype (``"float64"`` / ``"float32"``) of the variational
        state and likelihood kernels.  ``float32`` halves memory traffic
        of the ``(·, T, M)`` tensors at a small accuracy cost; the
        default keeps the paper-exact double-precision trajectories
        (DESIGN.md §6).
    backend:
        Sweep-kernel backend: ``"fused"`` (default; the serial fused
        kernel of DESIGN.md §6), ``"sharded"`` (item-partitioned
        shards whose contractions run as independent executor tasks and
        whose sufficient statistics are merged in fixed shard order;
        DESIGN.md §6 "Sharded execution"), or ``"auto"`` (pick fused vs
        sharded — and the shard count — per matrix/batch from the answer
        volume and the executor's lane count, using the measured
        crossover thresholds of :mod:`repro.core.kernels`, which the
        perf harness records in ``BENCH_core.json``).  Both engines and
        the SVI per-batch route honour the selection.
    n_shards:
        Shard count ``K`` for the sharded backend; ``0`` (auto) uses one
        shard per executor lane (``backend="auto"`` instead sizes K from
        the answer volume).  Ignored by the fused backend.  Requests are
        capped by the number of *answered* items wherever a concrete
        matrix is in hand (:meth:`resolve_shards` / the kernel factory):
        a ``ShardPlan`` can never realise more shards than answered
        items, and the realised count is what benchmarks record.
    adaptive_truncation:
        Shard-local truncation adaptation (DESIGN.md §6 "Shard-local
        truncation"): when engaged, each shard of a sharded run sizes its
        own cluster truncation ``T_s ≤ T`` from the shard's distinct
        item-profile count (:meth:`shard_truncation` — the same
        ``size // 4 + 2`` rule as :meth:`resolve_truncations`), pays
        ``(T_s, M, C)`` sufficient statistics instead of ``(T, M, C)``,
        and the engines constrain each item's cluster posterior to its
        shard's window.  ``"auto"`` (default) engages only when the
        backend is sharded **and** the matrix is wide-but-sparse
        (:func:`repro.core.kernels.adaptive_pays_off`); ``"on"`` engages
        for every sharded run; ``"off"`` disables it.  When no shard's
        ``T_s`` falls below the global ``T`` the path is bitwise
        identical to the global-truncation one; when it binds, results
        carry a documented approximation (the constrained family).
    resident_shards:
        When true (default), a sharded run broadcasts its shard kernels
        to the executor's lanes **once per plan** and per-sweep tasks
        carry only the updated posteriors (DESIGN.md §6 "Lane-resident
        shard state") — the big win for process pools, where re-shipping
        every shard's pattern tables each call dominates the payload.
        ``False`` restores the ship-per-task transport (the two paths
        are bitwise identical; the flag exists as an escape hatch and
        for the benchmarked comparison).
    executor:
        Executor kind the config describes: ``"serial"`` (default),
        ``"thread"``, ``"process"``, or ``"remote"`` (lanes on
        ``python -m repro.worker`` daemons named by ``workers``;
        DESIGN.md §6 "Remote lanes").  Both engines build their executor
        from this spec (:meth:`resolve_executor`) whenever no explicit
        :class:`~repro.utils.parallel.Executor` object is passed, so a
        run is reproducible from configuration alone; an engine-built
        executor is exposed as ``engine.executor`` and never closed by
        the engine (serial needs no closing; anything else belongs to
        the caller).
    executor_degree:
        Parallel degree for the selected executor (0 = auto: one lane
        per core for local pools, every listed worker for remote).
    workers:
        ``"host:port"`` addresses of remote worker daemons; required by
        — and only meaningful for — ``executor="remote"``.
    request_timeout:
        Per-request reply deadline in seconds for remote lanes (only
        meaningful with ``executor="remote"``).  A lane that misses the
        deadline is marked *suspect* and its tasks are speculatively
        re-dispatched to the live lanes — a hung daemon delays a sweep,
        it never stalls it (DESIGN.md §6 "Elastic fleet").  ``0``
        disables deadlines (replies are awaited forever).
    seed:
        Seed for the random initialisation of the variational state.
    """

    truncation_communities: int = 0
    truncation_clusters: int = 0
    alpha: float = 2.0
    epsilon: float = 2.0
    gamma0: float = 0.3
    eta0: float = 1.0
    max_iterations: int = 60
    tolerance: float = 1e-3
    forgetting_rate: float = 0.875
    svi_iterations: int = 3
    svi_coverage_correction: bool = True
    svi_batch_answers: int = 100
    consensus_floor: float = 0.02
    consensus_smoothing: float = 1.0
    consensus_blend: float = 2.0
    use_item_evidence: bool = True
    evidence_weight: float = 1.0
    max_predicted_labels: int = 0
    exhaustive_label_limit: int = 16
    dtype: str = "float64"
    backend: str = "fused"
    n_shards: int = 0
    adaptive_truncation: str = "auto"
    resident_shards: bool = True
    executor: str = "serial"
    executor_degree: int = 0
    workers: Tuple[str, ...] = ()
    request_timeout: float = 30.0
    seed: int = 0
    max_truncation: int = 40
    init_noise: float = 0.5

    def __post_init__(self) -> None:
        if self.truncation_communities < 0 or self.truncation_clusters < 0:
            raise ValidationError("truncations must be non-negative (0 = auto)")
        for name in ("alpha", "epsilon", "gamma0", "eta0"):
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be positive")
        if self.max_iterations <= 0:
            raise ValidationError("max_iterations must be positive")
        if self.tolerance <= 0:
            raise ValidationError("tolerance must be positive")
        if not 0.5 < self.forgetting_rate <= 1.0:
            raise ValidationError(
                "forgetting_rate must lie in (0.5, 1] for SVI convergence"
            )
        if self.svi_iterations <= 0:
            raise ValidationError("svi_iterations must be positive")
        if self.svi_batch_answers <= 0:
            raise ValidationError("svi_batch_answers must be positive")
        if self.consensus_floor < 0 or self.consensus_smoothing < 0:
            raise ValidationError("consensus parameters must be non-negative")
        if self.consensus_blend < 0:
            raise ValidationError("consensus_blend must be non-negative")
        if self.evidence_weight < 0:
            raise ValidationError("evidence_weight must be non-negative")
        if self.max_truncation < 2:
            raise ValidationError("max_truncation must be at least 2")
        if self.dtype not in ("float32", "float64"):
            raise ValidationError(
                f"dtype must be 'float32' or 'float64', got {self.dtype!r}"
            )
        if self.backend not in ("fused", "sharded", "auto"):
            raise ConfigurationError(
                f"backend must be 'fused', 'sharded', or 'auto', "
                f"got {self.backend!r}"
            )
        if self.n_shards < 0:
            raise ValidationError("n_shards must be non-negative (0 = auto)")
        if self.adaptive_truncation not in ADAPTIVE_TRUNCATION_MODES:
            raise ConfigurationError(
                f"adaptive_truncation must be one of "
                f"{', '.join(ADAPTIVE_TRUNCATION_MODES)}, "
                f"got {self.adaptive_truncation!r}"
            )
        if self.executor not in EXECUTOR_KINDS:
            raise ConfigurationError(
                f"executor must be one of {', '.join(EXECUTOR_KINDS)}, "
                f"got {self.executor!r}"
            )
        if self.executor_degree < 0:
            raise ValidationError("executor_degree must be non-negative (0 = auto)")
        if self.executor == "remote" and not self.workers:
            raise ConfigurationError(
                "executor='remote' needs worker daemon addresses "
                "(workers=('host:port', ...)); start daemons with "
                "`python -m repro.worker --listen host:port`"
            )
        if self.workers and self.executor != "remote":
            raise ConfigurationError(
                "workers are only meaningful with executor='remote', "
                f"got executor={self.executor!r}"
            )
        if self.request_timeout < 0:
            raise ValidationError(
                "request_timeout must be non-negative (0 disables deadlines)"
            )

    def resolve_dtype(self) -> np.dtype:
        """The numpy dtype of the state arrays and likelihood kernels."""
        return np.dtype(self.dtype)

    def resolve_executor(self) -> Executor:
        """Build the executor this config describes (caller owns ``close()``).

        ``executor="remote"`` connects lanes to the daemons listed in
        ``workers`` (``executor_degree`` caps how many are used); local
        kinds size their pools from ``executor_degree`` (0 = one lane
        per core).  Validation already happened in ``__post_init__``, so
        this cannot fail on configuration — only on the network.
        """
        remote = self.executor == "remote"
        return make_executor(
            self.executor,
            self.executor_degree or None,
            workers=list(self.workers) if remote else None,
            request_timeout=self.request_timeout if remote else None,
        )

    def resolve_shards(self, degree: int = 1, n_items: int = 0) -> int:
        """Concrete shard count for the sharded backend.

        Auto mode (``n_shards == 0``) matches the executor's parallel
        degree so each lane owns one shard; an explicit count is honoured
        regardless of the executor.  ``n_items`` (when known — callers
        with a concrete matrix pass the *answered* item count) caps the
        result: :class:`~repro.core.sharding.ShardPlan` partitions by
        item, so no request can realise more shards than answered items.
        """
        k = self.n_shards if self.n_shards > 0 else max(1, int(degree))
        if n_items > 0:
            k = min(k, int(n_items))
        return k

    def resolve_backend(
        self, n_answers: int, degree: int = 1, n_items: int = 0
    ) -> tuple[str, int]:
        """Concrete ``(backend, n_shards)`` for a matrix/batch of ``n_answers``.

        Explicit ``"fused"`` / ``"sharded"`` selections pass through
        (with :meth:`resolve_shards` sizing K for the latter).  ``"auto"``
        applies the measured rule of :func:`repro.core.kernels.sharded_pays_off`:
        sharded above the volume crossover (lowered when the executor has
        parallel lanes), fused below it, with K sized by
        :func:`repro.core.kernels.auto_shard_count` unless ``n_shards``
        pins it.  Callers resolve per matrix — the SVI engine per batch —
        so one config serves mixed workloads.  ``n_items`` (the answered
        item count, when the caller has a concrete matrix) caps K as in
        :meth:`resolve_shards`.
        """
        if self.backend == "fused":
            return "fused", 0
        if self.backend == "sharded":
            return "sharded", self.resolve_shards(degree, n_items)
        # Local import: kernels imports state, which imports this module.
        from repro.core.kernels import auto_shard_count, sharded_pays_off

        if sharded_pays_off(int(n_answers), int(degree)):
            if self.n_shards > 0:
                k = self.n_shards
                if n_items > 0:
                    k = min(k, int(n_items))
            else:
                k = auto_shard_count(int(n_answers), int(degree), int(n_items))
            return "sharded", max(1, k)
        return "fused", 0

    def resolve_adaptive_truncation(self, n_items: int, n_answers: int) -> bool:
        """Whether a sharded run over this matrix adapts per-shard truncations.

        ``"on"`` / ``"off"`` are unconditional; ``"auto"`` engages only on
        wide-but-sparse matrices (:func:`repro.core.kernels.adaptive_pays_off`
        — many items, few answers per item), the regime where per-shard
        item profiles are poor enough that the global ``T`` overpays.
        Only the sharded backend consults this: the fused kernel has no
        shard-local statistics to shrink.
        """
        if self.adaptive_truncation == "off":
            return False
        if self.adaptive_truncation == "on":
            return True
        from repro.core.kernels import adaptive_pays_off

        return adaptive_pays_off(int(n_items), int(n_answers))

    def shard_truncation(self, n_profiles: int, n_items: int) -> int:
        """Cluster truncation ``T_s`` for one shard's item/answer profile.

        The shared sizing rule of shard-local truncation adaptation: the
        same ``size // 4 + 2`` shape as :meth:`resolve_truncations`, fed
        with the shard's number of *distinct item answer profiles* (items
        with identical aggregated answer rows are indistinguishable to
        the clustering, so profiles — not raw items — bound the clusters
        a shard's data can support), clamped by :func:`clamp_truncation`
        to the shard's item count.  The kernel additionally caps the
        result at the global ``T``, so adaptation can only ever shrink a
        shard's truncation.
        """
        t = min(self.max_truncation, int(n_profiles) // 4 + 2)
        return clamp_truncation(t, n_items)

    def resolve_truncations(self, n_items: int, n_workers: int) -> tuple[int, int]:
        """Concrete ``(T, M)`` for a dataset of the given size.

        Auto mode uses ``min(max_truncation, size // 4 + 2)`` — generous
        relative to the handful of worker types / item themes the
        generative processes produce, so truncation does not bind, while
        keeping the cost of the ``(T, M, C)`` sufficient statistics low.
        Both levels are clamped by :func:`clamp_truncation`, so a
        truncation never exceeds the space it truncates (tiny/empty
        datasets resolve to one component, not two).
        """
        t = self.truncation_clusters or min(self.max_truncation, n_items // 4 + 2)
        m = self.truncation_communities or min(
            self.max_truncation, n_workers // 4 + 2
        )
        return clamp_truncation(t, n_items), clamp_truncation(m, n_workers)

    def with_overrides(self, **changes: object) -> "CPAConfig":
        """A modified copy (convenience for experiments)."""
        return replace(self, **changes)  # type: ignore[arg-type]
