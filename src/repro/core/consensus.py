"""Cluster-consensus estimation: recovering ``φ̂_t`` without ground truth.

The paper's Eq. 7 updates the cluster label profiles ``φ_t`` only from
*observed* true labels, yet every accuracy experiment runs with ``y = ∅``.
This module implements the resolution documented in DESIGN.md §4.2: the
per-label inclusion probability of a cluster is estimated as a
reliability-weighted mixture of its community answer statistics, where a
community's reliability weight is

``w_m = (expected size S_m) × (cluster discriminability D_m + δ)``.

*Discriminability* is the mass-weighted mean total-variation distance
between the community's per-cluster answer distributions ``E[ψ_tm]`` and
its cluster-marginal distribution.  Both spammer archetypes of §2.1 answer
independently of the item, so their profiles are (near-)identical across
clusters and ``D_m ≈ 0`` — they are automatically discounted, which is the
mechanism behind the Fig-4 spammer robustness.

When ground truth *is* partially observed, the supervised per-label Beta
posterior (``ζ``) is blended in with weight proportional to the observed
mass assigned to the cluster, recovering Eq. 7's behaviour in the fully
supervised limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import CPAConfig
from repro.core.state import CPAState
from repro.data.answers import AnswerMatrix
from repro.utils.math import total_variation


@dataclass(frozen=True)
class CommunityLabelRates:
    """Per-community, per-label answering rates relative to the consensus.

    ``sensitivity[m, c]`` estimates ``P(worker of community m includes c |
    the item truly carries c)`` and ``false_rate[m, c]`` the corresponding
    inclusion probability when the item does not carry ``c`` — with the
    cluster consensus ``φ̂`` standing in for the (unobserved) truth.  These
    are the community-level analogue of the two-coin worker model
    (Appendix A) and power the per-item evidence term of prediction
    (DESIGN.md §4.3): both spammer archetypes answer independently of the
    item, so their ``sensitivity ≈ false_rate`` and their answers carry a
    likelihood ratio of 1.
    """

    sensitivity: np.ndarray  # (M, C)
    false_rate: np.ndarray  # (M, C)


@dataclass(frozen=True)
class ClusterConsensus:
    """Output of :func:`estimate_consensus`.

    Attributes
    ----------
    inclusion:
        ``(T, C)`` matrix ``φ̂_tc`` — probability that an item of cluster
        ``t`` truly carries label ``c``; clipped away from {0, 1}.
    cluster_weights:
        ``(T,)`` occupancy-based prior over clusters (used for items
        without any answers).
    community_weights:
        ``(M,)`` reliability weights ``w_m`` (unnormalised).
    discriminability:
        ``(M,)`` the ``D_m`` scores.
    community_sizes:
        ``(M,)`` expected community sizes ``S_m = Σ_u κ_um``.
    label_rates:
        Community answering rates (``None`` when the answers were not
        available to the estimator).
    """

    inclusion: np.ndarray
    cluster_weights: np.ndarray
    community_weights: np.ndarray
    discriminability: np.ndarray
    community_sizes: np.ndarray
    label_rates: Optional[CommunityLabelRates] = None


def community_discriminability(state: CPAState) -> np.ndarray:
    """``D_m``: how strongly community ``m``'s answers track item clusters.

    Uses the posterior-mean answer distributions ``p_tm = E[ψ_tm]``; each
    community's marginal is the cell-mass-weighted average over clusters,
    and ``D_m`` the mass-weighted mean TV distance to it.  Communities with
    no answers at all get ``D_m = 0``.
    """
    p = state.lam / state.lam.sum(axis=-1, keepdims=True)  # (T, M, C)
    mass = state.cell_mass  # (T, M)
    community_mass = mass.sum(axis=0)  # (M,)
    weights = np.divide(
        mass,
        community_mass[None, :],
        out=np.zeros_like(mass),
        where=community_mass[None, :] > 0,
    )
    marginal = np.einsum("tm,tmc->mc", weights, p)  # (M, C)
    tv = total_variation(p, marginal[None, :, :])  # (T, M)
    return np.einsum("tm,tm->m", weights, tv)


def community_label_rates(
    state: CPAState,
    inclusion: np.ndarray,
    answers: AnswerMatrix,
    *,
    pseudo_count: float = 1.0,
) -> CommunityLabelRates:
    """Estimate the two-coin answering rates of every community.

    The soft presence probability of label ``c`` for answer ``n`` on item
    ``i`` is ``q_nc = Σ_t ϕ_it φ̂_tc``; community rates are then
    responsibility-weighted ratios with ``Beta(pseudo_count, pseudo_count)``
    smoothing towards the community's label-pooled rate (which keeps rare
    labels from producing extreme likelihood ratios).
    """
    items, workers, x = answers.to_arrays()
    if items.size == 0:
        shape = (state.n_communities, state.n_labels)
        half = np.full(shape, 0.5)
        return CommunityLabelRates(sensitivity=half, false_rate=half.copy())

    q = state.phi[items] @ inclusion  # (N, C) soft presence per answer
    kappa_rows = state.kappa[workers]  # (N, M)

    pos_num = kappa_rows.T @ (q * x)  # (M, C)
    pos_den = kappa_rows.T @ q
    neg_num = kappa_rows.T @ ((1.0 - q) * x)
    neg_den = kappa_rows.T @ (1.0 - q)

    # Community-pooled rates provide the smoothing centre per community.
    pooled_sens = pos_num.sum(axis=1, keepdims=True) / np.maximum(
        pos_den.sum(axis=1, keepdims=True), 1e-9
    )
    pooled_false = neg_num.sum(axis=1, keepdims=True) / np.maximum(
        neg_den.sum(axis=1, keepdims=True), 1e-9
    )
    sensitivity = (pos_num + pseudo_count * pooled_sens) / (pos_den + pseudo_count)
    false_rate = (neg_num + pseudo_count * pooled_false) / (neg_den + pseudo_count)
    clip = lambda a: np.clip(a, 1e-3, 1.0 - 1e-3)  # noqa: E731 - local helper
    return CommunityLabelRates(
        sensitivity=clip(sensitivity), false_rate=clip(false_rate)
    )


def estimate_consensus(
    state: CPAState,
    config: CPAConfig,
    answers: Optional[AnswerMatrix] = None,
) -> ClusterConsensus:
    """Compute ``φ̂`` and the community reliability weights from ``state``.

    ``answers`` additionally enables the community label-rate estimation
    used by evidence-augmented prediction.
    """
    gamma0 = config.gamma0
    counts = np.maximum(state.lam - gamma0, 0.0)  # (T, M, C) expected label counts
    mass = state.cell_mass  # (T, M) expected answers per cell

    total_mass = float(mass.sum())
    if total_mass > 0:
        global_rate = counts.sum(axis=(0, 1)) / total_mass  # (C,)
    else:
        global_rate = np.full(state.n_labels, 0.5)
    global_rate = np.clip(global_rate, 1e-4, 1.0 - 1e-4)

    smooth = config.consensus_smoothing
    rates = (counts + smooth * global_rate[None, None, :]) / (
        mass[:, :, None] + smooth
    )  # (T, M, C) inclusion rate of label c in cell (t, m)

    sizes = state.kappa.sum(axis=0)  # (M,)
    disc = community_discriminability(state)  # (M,)
    community_weights = sizes * (disc + config.consensus_floor)

    # Cells weighted by (reliability of community) x (answer mass in cell):
    # spam answers contribute only through the floor.
    cell_weight = (disc + config.consensus_floor)[None, :] * mass  # (T, M)
    weight_total = cell_weight.sum(axis=1)  # (T,)
    unsupervised = np.einsum("tm,tmc->tc", cell_weight, rates)
    unsupervised = np.divide(
        unsupervised,
        weight_total[:, None],
        out=np.tile(global_rate, (state.n_clusters, 1)),
        where=weight_total[:, None] > 0,
    )

    # Supervised estimate from zeta (per-label Beta posterior, Eq. 7) and
    # the observed mass per cluster; eta0 pseudo-counts are removed so the
    # blend weight reflects actual observations.
    eta0 = config.eta0
    observed_mass = np.maximum(state.zeta.sum(axis=-1) - 2 * eta0, 0.0)  # (T, C)
    cluster_observed = observed_mass.mean(axis=1)  # (T,)
    supervised = state.zeta[..., 0] / state.zeta.sum(axis=-1)  # Beta mean

    nu = config.consensus_blend
    blend = cluster_observed[:, None] / (cluster_observed[:, None] + nu)
    inclusion = blend * supervised + (1.0 - blend) * unsupervised
    inclusion = np.clip(inclusion, 1e-4, 1.0 - 1e-4)

    occupancy = state.phi.sum(axis=0)
    if occupancy.sum() > 0:
        cluster_weights = occupancy / occupancy.sum()
    else:
        cluster_weights = np.full(state.n_clusters, 1.0 / state.n_clusters)

    rates = None
    if answers is not None:
        rates = community_label_rates(state, inclusion, answers)

    return ClusterConsensus(
        inclusion=inclusion,
        cluster_weights=cluster_weights,
        community_weights=community_weights,
        discriminability=disc,
        community_sizes=sizes,
        label_rates=rates,
    )
