"""Versioned serialization and growth of :class:`~repro.core.state.CPAState`.

The always-on serving layer (DESIGN.md §6 "Serving") needs the variational
posterior to outlive a process: a daemon restart warm-starts from the last
checkpoint and must continue the SVI trajectory *bitwise*, and serving
replicas refresh their posterior by shipping checkpoints over the
content-addressed chunk store.  Two properties drive the format:

* **Exactness** — a round-trip reproduces every parameter array bit for
  bit (dtype included), plus the engine-level bookkeeping SVI needs to
  continue (``batches_seen`` is part of the state; the symmetry-breaking
  ``seeded`` flag rides in the metadata).
* **Chunk stability** — the byte stream is a pickled dict whose array
  buffers sit at stable offsets between snapshots of the same shapes, so
  after a small SVI step only the chunks covering the touched ``ϕ``/``µ``
  rows differ and the chunk store ships a small delta
  (:func:`repro.serve.ship_checkpoint`).

Growth (:func:`grow_state`) lets a warm-started engine absorb new items,
workers, or labels appearing mid-stream: truncations are re-resolved with
the same :func:`~repro.core.config.clamp_truncation`-consistent rule as
:meth:`CPAConfig.resolve_truncations` (never shrinking), existing
responsibility rows are padded with exact zeros on the new components
(preserving any :meth:`~repro.core.state.CPAState.localize_clusters`
windows — the new components sit outside every window), and new rows /
global parameters are initialised exactly as
:func:`~repro.core.state.initialize_state` would.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, Tuple

import numpy as np

from repro.core.config import CPAConfig, clamp_truncation
from repro.core.state import CPAState
from repro.errors import CheckpointError
from repro.utils.math import normalize_rows
from repro.utils.random import RandomState, Seed

#: Format magic — guards against feeding arbitrary pickles to the loader.
CHECKPOINT_MAGIC = "cpa-checkpoint"

#: Bump on any incompatible payload change; loaders reject other versions.
CHECKPOINT_VERSION = 1

#: Array fields serialized verbatim (``mu`` is optional and handled apart).
_ARRAY_FIELDS = ("rho", "ups", "lam", "zeta", "kappa", "phi", "cell_mass")


@dataclass(frozen=True)
class CheckpointMeta:
    """Shape/dtype header of a checkpoint, available without the arrays."""

    version: int
    dtype: str
    n_items: int
    n_workers: int
    n_labels: int
    n_clusters: int
    n_communities: int
    batches_seen: int
    seeded: bool


def checkpoint_payload(
    state: CPAState, *, seeded: bool = False
) -> Dict[str, Any]:
    """The serializable dict form of ``state`` (arrays shared, not copied).

    ``seeded`` records whether the owning SVI engine has already run its
    first-batch symmetry-breaking initialisation — without it a restored
    engine would re-seed on its next batch and erase the posterior.
    """
    payload: Dict[str, Any] = {
        "magic": CHECKPOINT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "dtype": str(state.phi.dtype),
        "n_items": state.n_items,
        "n_workers": state.n_workers,
        "n_labels": state.n_labels,
        "n_clusters": state.n_clusters,
        "n_communities": state.n_communities,
        "batches_seen": state.batches_seen,
        "seeded": bool(seeded),
        "mu": None if state.mu is None else np.ascontiguousarray(state.mu),
    }
    for name in _ARRAY_FIELDS:
        payload[name] = np.ascontiguousarray(getattr(state, name))
    return payload


def payload_meta(payload: Dict[str, Any]) -> CheckpointMeta:
    """Validate a payload's header and return it as :class:`CheckpointMeta`."""
    if not isinstance(payload, dict) or payload.get("magic") != CHECKPOINT_MAGIC:
        raise CheckpointError("not a CPA checkpoint payload")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version!r} is not supported "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    try:
        return CheckpointMeta(
            version=int(version),
            dtype=str(payload["dtype"]),
            n_items=int(payload["n_items"]),
            n_workers=int(payload["n_workers"]),
            n_labels=int(payload["n_labels"]),
            n_clusters=int(payload["n_clusters"]),
            n_communities=int(payload["n_communities"]),
            batches_seen=int(payload["batches_seen"]),
            seeded=bool(payload["seeded"]),
        )
    except KeyError as exc:  # pragma: no cover - corrupted payloads
        raise CheckpointError(f"checkpoint payload is missing field {exc}") from exc


def state_from_payload(payload: Dict[str, Any]) -> Tuple[CPAState, bool]:
    """Rebuild ``(state, seeded)`` from a payload; validates the result."""
    meta = payload_meta(payload)
    # Header dtype describes the responsibility arrays; the globals may
    # legitimately differ (SVI's seeding pass computes targets in float64
    # even under a float32 config).  Each array carries its own dtype in
    # the pickle, so round-trip exactness needs only the phi check.
    if np.dtype(meta.dtype) != np.asarray(payload["phi"]).dtype:
        raise CheckpointError(
            f"checkpoint header dtype {meta.dtype} disagrees with the "
            f"phi array ({np.asarray(payload['phi']).dtype})"
        )
    arrays = {name: np.asarray(payload[name]).copy() for name in _ARRAY_FIELDS}
    mu = payload.get("mu")
    state = CPAState(
        n_items=meta.n_items,
        n_workers=meta.n_workers,
        n_labels=meta.n_labels,
        n_clusters=meta.n_clusters,
        n_communities=meta.n_communities,
        mu=None if mu is None else np.asarray(mu).copy(),
        batches_seen=meta.batches_seen,
        **arrays,
    )
    try:
        state.validate()
    except Exception as exc:  # noqa: BLE001 - rewrapped as CheckpointError
        raise CheckpointError(f"checkpoint state fails validation: {exc}") from exc
    return state, meta.seeded


def checkpoint_bytes(state: CPAState, *, seeded: bool = False) -> bytes:
    """Pickle a checkpoint payload (the blob the chunk store ships)."""
    return pickle.dumps(
        checkpoint_payload(state, seeded=seeded), protocol=pickle.HIGHEST_PROTOCOL
    )


def checkpoint_from_bytes(blob: bytes) -> Tuple[CPAState, bool]:
    """Inverse of :func:`checkpoint_bytes`."""
    try:
        payload = pickle.loads(blob)
    except Exception as exc:  # noqa: BLE001 - rewrapped as CheckpointError
        raise CheckpointError(f"checkpoint blob is not unpicklable: {exc}") from exc
    return state_from_payload(payload)


def save_checkpoint(path: str, state: CPAState, *, seeded: bool = False) -> int:
    """Write a checkpoint file; returns the byte count written."""
    blob = checkpoint_bytes(state, seeded=seeded)
    with open(path, "wb") as handle:
        handle.write(blob)
    return len(blob)


def load_checkpoint(path: str) -> Tuple[CPAState, bool]:
    """Read ``(state, seeded)`` back from a checkpoint file."""
    with open(path, "rb") as handle:
        blob = handle.read()
    return checkpoint_from_bytes(blob)


def grown_truncations(
    config: CPAConfig,
    state: CPAState,
    n_items: int,
    n_workers: int,
) -> Tuple[int, int]:
    """``(T', M')`` for a state growing to ``n_items`` × ``n_workers``.

    Re-resolves the configured truncations at the new sizes and takes the
    maximum with the state's current levels: growth may widen a truncation
    (the new space supports more components) but never narrows one — the
    posterior's existing components must survive.  The result respects the
    :func:`~repro.core.config.clamp_truncation` contract because the
    current levels already do and the spaces only grew.
    """
    resolved_t, resolved_m = config.resolve_truncations(n_items, n_workers)
    t = max(state.n_clusters, clamp_truncation(resolved_t, n_items))
    m = max(state.n_communities, clamp_truncation(resolved_m, n_workers))
    return t, m


def grow_state(
    state: CPAState,
    config: CPAConfig,
    n_items: int,
    n_workers: int,
    n_labels: int,
    seed: Seed = None,
) -> CPAState:
    """A copy of ``state`` grown to the given index-space sizes.

    Every dimension must be at least its current size (checkpoints only
    grow).  Existing posterior rows are preserved exactly:

    * ``phi`` / ``kappa`` rows are padded with **exact zeros** on the new
      clusters/communities — row sums are untouched, and any
      ``localize_clusters`` prefix windows remain valid (the new
      components are appended after every window);
    * ``lam`` keeps the old ``(T, M, C)`` block and fills new cells with
      the jittered ``gamma0`` prior, ``zeta`` with ``eta0``, new
      ``rho``/``ups`` sticks with the ``(1, α)`` / ``(1, ε)`` priors, and
      ``cell_mass`` with zeros — exactly
      :func:`~repro.core.state.initialize_state`'s priors;
    * new item/worker rows get the same jittered random-hard
      responsibilities ``initialize_state`` draws, from a generator
      seeded by ``seed`` (default ``config.seed``), so growth is a pure
      function of ``(state, config, sizes, seed)``;
    * ``mu`` (when present) is re-synchronised from the grown ``phi``;
      ``batches_seen`` carries over.
    """
    if (
        n_items < state.n_items
        or n_workers < state.n_workers
        or n_labels < state.n_labels
    ):
        raise CheckpointError(
            f"cannot shrink a checkpoint: state is "
            f"({state.n_items} items, {state.n_workers} workers, "
            f"{state.n_labels} labels), requested "
            f"({n_items}, {n_workers}, {n_labels})"
        )
    if (n_items, n_workers, n_labels) == (
        state.n_items,
        state.n_workers,
        state.n_labels,
    ):
        return state.copy()

    dtype = state.phi.dtype  # responsibility rows follow the config dtype
    rng = RandomState(config.seed if seed is None else seed)
    t_new, m_new = grown_truncations(config, state, n_items, n_workers)
    t_old, m_old = state.n_clusters, state.n_communities
    c_old = state.n_labels
    hard_weight = 0.8

    def random_hard(rows: int, cols: int) -> np.ndarray:
        responsibilities = np.full((rows, cols), (1.0 - hard_weight) / cols)
        assignment = rng.integers(cols, size=rows)
        responsibilities[np.arange(rows), assignment] += hard_weight
        noise = 1.0 + config.init_noise * rng.random((rows, cols))
        return normalize_rows(responsibilities * noise).astype(dtype, copy=False)

    # Each array keeps its *own* dtype (SVI's seeding pass can leave the
    # globals in float64 under a float32 config); padding must not cast
    # the preserved blocks.
    rho = np.empty((m_new - 1, 2), dtype=state.rho.dtype)
    rho[:, 0] = 1.0
    rho[:, 1] = config.alpha
    rho[: m_old - 1] = state.rho
    ups = np.empty((t_new - 1, 2), dtype=state.ups.dtype)
    ups[:, 0] = 1.0
    ups[:, 1] = config.epsilon
    ups[: t_old - 1] = state.ups

    lam = (
        config.gamma0 * (1.0 + 0.1 * rng.random((t_new, m_new, n_labels)))
    ).astype(state.lam.dtype, copy=False)
    lam[:t_old, :m_old, :c_old] = state.lam
    zeta = np.full((t_new, n_labels, 2), config.eta0, dtype=state.zeta.dtype)
    zeta[:t_old, :c_old] = state.zeta
    cell_mass = np.zeros((t_new, m_new), dtype=state.cell_mass.dtype)
    cell_mass[:t_old, :m_old] = state.cell_mass

    kappa = np.zeros((n_workers, m_new), dtype=dtype)
    kappa[: state.n_workers, :m_old] = state.kappa
    if n_workers > state.n_workers:
        kappa[state.n_workers :] = random_hard(n_workers - state.n_workers, m_new)
    phi = np.zeros((n_items, t_new), dtype=dtype)
    phi[: state.n_items, :t_old] = state.phi
    if n_items > state.n_items:
        phi[state.n_items :] = random_hard(n_items - state.n_items, t_new)

    grown = CPAState(
        n_items=n_items,
        n_workers=n_workers,
        n_labels=n_labels,
        n_clusters=t_new,
        n_communities=m_new,
        rho=rho,
        ups=ups,
        lam=lam,
        zeta=zeta,
        kappa=kappa,
        phi=phi,
        cell_mass=cell_mass,
        batches_seen=state.batches_seen,
    )
    if state.mu is not None:
        grown.sync_mu_from_phi()
    grown.validate()
    return grown
