"""Fused likelihood kernels shared by the batch and stochastic engines.

This is the performance seam of the inference layer (DESIGN.md §6).  It
exploits the paper's partial-answer structure: an answer is a label *set*,
so the answer log-likelihood ``L[n, t, m] = Σ_c x_nc E[ln ψ_tmc]`` depends
only on the *distinct set pattern* of row ``n``.  With ``P`` unique
patterns (``P ≤ min(N, 2^C)``, and ``P ≪ N`` on realistic data) the
dominant ``(N, C) @ (C, T·M)`` matmul collapses to ``(P, C) @ (C, T·M)``
evaluated **once per sweep**, and every per-answer contraction against the
likelihood tensor becomes a run of per-pattern BLAS matmuls over answers
grouped by pattern — no ``(N, T, M)`` intermediate is ever materialised:

* κ-update data term:   ``Σ_t ϕ[i_n, t] L[p_n, t, m]`` → per pattern ``p``,
  one ``(n_p, T) @ (T, M)`` matmul (:func:`grouped_matmul`);
* ϕ-update data term:   symmetric, ``(n_p, M) @ (M, T)``;
* λ/cell statistics:    ``J[p] = ϕ_rowsᵀ κ_rows`` per pattern
  (:func:`grouped_outer`), then one ``(T·M, P) @ (P, C)`` matmul against
  the pattern table — ``O(N·T·M + P·T·M·C)`` instead of ``O(N·T·M·C)``;
* ELBO data term:       ``Σ_p ⟨J[p], L[p]⟩`` with ``J`` cached from the
  λ update of the same sweep.

Scatters (``np.add.at``) are replaced by sorted CSR-style layouts
(:class:`SegmentLayout` / :func:`segment_sum`) driving
``np.add.reduceat`` segment reductions.  Chunked accumulations are
expressed as task lists executed by a
:class:`~repro.utils.parallel.Executor`, so the same code path runs the
serial fused sweep and the parallel batch-VI sweep (Alg. 3's MAP/REDUCE
shape applied to Alg. 1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.expectations import answer_log_likelihood
from repro.errors import InferenceError
from repro.utils.parallel import Executor, SerialExecutor

#: answers per vectorised chunk on the non-deduplicated fallback path —
#: bounds the peak size of the ``(chunk, T, M)`` intermediates.
CHUNK = 16384

#: soft cap on rows of the pattern table; above it dedup would save
#: neither memory nor compute and the kernel falls back to direct
#: per-answer evaluation.
PATTERN_LIMIT = 200_000

_SERIAL = SerialExecutor()


def dedup_pays_off(n_patterns: int, n_answers: int) -> bool:
    """The auto rule deciding the pattern-deduplicated path.

    Dedup wins unless the matrix has (pathologically) almost as many
    distinct patterns as answers; shared by :class:`SweepKernel`'s
    ``patterned=None`` mode and the plan-level decision of
    :class:`repro.core.sharding.ShardPlan`.
    """
    return n_patterns <= min(PATTERN_LIMIT, max(64, (3 * n_answers) // 4))


# ---------------------------------------------------- backend auto-selection
#
# Thresholds behind ``CPAConfig.backend = "auto"``.  Calibrated against the
# measured trajectory in BENCH_core.json (which records them alongside the
# timings): the K=4 serial sharded sweep crosses below 1.0x the fused sweep
# between 50k and 200k answers (0.91x @ 50k is within noise of parity,
# 0.57x @ 200k is a solid win from per-shard cache locality), while at 10k
# answers the plan/merge overhead makes it ~2.3x slower.  With parallel
# lanes the fan-out also buys concurrency, so the crossover moves down.

#: answer volume above which a *serial* sharded sweep beats the fused one.
SHARDED_MIN_ANSWERS = 100_000

#: crossover with ≥2 executor lanes (shards also run concurrently).
SHARDED_MIN_ANSWERS_PARALLEL = 25_000

#: target answers per shard when auto-selecting K (matches the tracked
#: K=4 @ 200k-answers configuration of BENCH_core.json).
SHARDED_ANSWERS_PER_SHARD = 50_000

#: cap on the auto-selected shard count — beyond this, per-shard pattern
#: tables get small enough that dispatch overhead dominates.
SHARDED_MAX_AUTO_SHARDS = 16


def sharded_pays_off(n_answers: int, degree: int = 1) -> bool:
    """The ``backend="auto"`` rule: route this matrix through shards?

    Below the crossover volume the fused serial kernel wins (shard plan
    construction and per-sweep dispatch/merge are fixed costs); above it
    the smaller per-shard pattern groups fit cache markedly better, and
    parallel lanes lower the bar further.  The SVI per-batch route calls
    this with the *batch* answer count, so ordinary 100-answer batches
    stay fused while bulk arrival increments can go sharded.
    """
    floor = SHARDED_MIN_ANSWERS_PARALLEL if degree > 1 else SHARDED_MIN_ANSWERS
    return n_answers >= floor


def auto_shard_count(n_answers: int, degree: int = 1, n_items: int = 0) -> int:
    """Shard count ``K`` for an auto-selected sharded run.

    One shard per :data:`SHARDED_ANSWERS_PER_SHARD` answers, with the
    volume-driven count capped at :data:`SHARDED_MAX_AUTO_SHARDS` — but
    never fewer than the executor's lane count, which wins over the cap:
    every lane should own work.  ``n_items`` (the answered item count,
    when known) wins over everything: an item-partitioned plan cannot
    realise more shards than answered items, so requesting more would
    only misreport K to whatever records the selection.
    """
    by_volume = min(SHARDED_MAX_AUTO_SHARDS, n_answers // SHARDED_ANSWERS_PER_SHARD)
    k = max(1, int(degree), by_volume)
    if n_items > 0:
        k = min(k, int(n_items))
    return k


# ------------------------------------------- shard-local truncation adaptation
#
# Thresholds behind ``CPAConfig.adaptive_truncation = "auto"`` and the
# prefix-window helpers shared by both engines (DESIGN.md §6 "Shard-local
# truncation").  A truncated shard works on the stick-breaking *prefix*
# [0, T_s) of the global cluster space — truncation levels of a
# stick-breaking process are always prefix cutoffs, so a shard-local
# truncation is a shard-local prefix.

#: item-space width below which adaptation never auto-engages — small
#: spaces already get small global truncations from resolve_truncations.
ADAPTIVE_MIN_ITEMS = 512

#: answers-per-item density above which a matrix stops counting as
#: sparse: well-covered items support rich per-shard profiles, so the
#: per-shard rule would not bind anyway and the window bookkeeping is
#: pure overhead.
ADAPTIVE_MAX_ANSWERS_PER_ITEM = 4.0

#: margin subtracted from each row's minimum when masking out-of-window
#: scores.  Chosen so that (a) the scores stay finite (the SVI µ
#: parameterisation cannot tolerate -inf), (b) softmax leaks at most
#: ``exp(-margin) ≈ 1.6e-28`` mass per masked column — far below float64
#: resolution, and removed *exactly* by the :func:`truncate_rows`
#: projection the engines apply after normalising — and (c) the masked
#: arguments stay inside ``np.exp``'s SIMD fast range (large-negative
#: inputs fall back to a scalar loop, which measurably slows the
#: row-softmax of wide item spaces).
MASK_MARGIN = 64.0


def adaptive_pays_off(n_items: int, n_answers: int) -> bool:
    """The ``adaptive_truncation="auto"`` rule: is this matrix wide/sparse?

    Wide (at least :data:`ADAPTIVE_MIN_ITEMS` items) and sparse (at most
    :data:`ADAPTIVE_MAX_ANSWERS_PER_ITEM` answers per item on average) —
    the regime where shard-local item profiles are poor enough that
    per-shard truncations sized from them actually shrink.
    """
    return (
        n_items >= ADAPTIVE_MIN_ITEMS
        and n_answers <= ADAPTIVE_MAX_ANSWERS_PER_ITEM * n_items
    )


def mask_cluster_scores(
    scores: np.ndarray, limits: np.ndarray, margin: float = MASK_MARGIN
) -> np.ndarray:
    """Constrain per-item cluster scores to prefix windows, in place.

    Row ``i`` keeps columns ``[0, limits[i])`` untouched; columns at and
    beyond the limit are filled with that row's minimum minus ``margin``,
    so the subsequent row softmax leaves them at most ``exp(-margin)``
    mass (≈ 1.6e-28 at the default — engines remove even that exactly
    via :func:`truncate_rows`) while the scores stay finite — the
    canonical-µ SVI path subtracts score columns, so ``-inf`` fills
    would poison it.  ``scores`` must be freshly assembled (masking an
    already-masked array would ratchet the fill downward); rows with
    ``limits[i] >= scores.shape[1]`` are left untouched.  Returns
    ``scores``.
    """
    limits = np.asarray(limits)
    t = scores.shape[1]
    out_of_window = np.arange(t)[None, :] >= limits[:, None]
    if not out_of_window.any():
        return scores
    fill = scores.min(axis=1) - margin
    np.copyto(scores, fill[:, None], where=out_of_window)
    return scores


def truncate_rows(probs: np.ndarray, limits: np.ndarray) -> np.ndarray:
    """Project probability rows onto prefix windows ``[0, limits[i])``.

    Out-of-window mass is dropped and each row renormalised over its
    window — the exact conditional distribution given the window, which
    is what restricting the variational family to the window means.  A
    row with no in-window mass at all becomes uniform over its window.
    Used to localise the *initial* responsibilities so every later
    restricted contraction is exact.  Returns a new array of the same
    dtype.
    """
    limits = np.asarray(limits)
    t = probs.shape[1]
    mask = np.arange(t)[None, :] < limits[:, None]
    out = np.where(mask, probs, 0.0).astype(probs.dtype, copy=False)
    totals = out.sum(axis=1, keepdims=True)
    empty = totals[:, 0] <= 0
    if np.any(empty):
        window = mask[empty]
        out[empty] = window / window.sum(axis=1, keepdims=True)
        totals = out.sum(axis=1, keepdims=True)
    return out / totals


def unique_patterns(indicators: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Deduplicate indicator rows into ``(patterns, index)``.

    ``patterns`` is the ``(P, C)`` table of distinct label-set rows (in
    lexicographic order) and ``index`` the ``(N,)`` map from answers to
    pattern rows, so ``patterns[index]`` reconstructs ``indicators``.
    """
    patterns, index = np.unique(indicators, axis=0, return_inverse=True)
    return patterns, np.asarray(index, dtype=np.int64).reshape(-1)


def balanced_bounds(offsets: np.ndarray, total: int, parts: int) -> np.ndarray:
    """Segment-aligned cut points carrying roughly equal weight per part.

    ``offsets`` is the ``(S+1,)`` cumulative weight at each segment
    boundary (``offsets[-1] == total``); the returned strictly increasing
    bounds (first ``0``, last ``S``) split the segments into at most
    ``parts`` runs of ~``total / parts`` weight each.  Shared by the
    pattern-range partitioning of :class:`SweepKernel` and the item-range
    partitioning of :class:`repro.core.sharding.ShardPlan`.
    """
    n_segments = int(offsets.size - 1)
    if parts <= 1 or n_segments <= 1:
        return np.array([0, n_segments], dtype=np.int64)
    targets = np.linspace(0, total, parts + 1, dtype=np.float64)[1:-1]
    cuts = np.searchsorted(offsets, targets, side="left")
    return np.unique(np.concatenate([[0], cuts, [n_segments]])).astype(np.int64)


def segment_sum(values: np.ndarray, index: np.ndarray, n_segments: int) -> np.ndarray:
    """``out[s] = Σ_{n: index[n] = s} values[n]`` over the leading axis.

    Drop-in replacement for ``np.add.at(out, index, values)`` built on a
    sort plus ``np.add.reduceat`` — contiguous segment reductions instead
    of one scattered add per row.
    """
    values = np.asarray(values)
    out = np.zeros((int(n_segments),) + values.shape[1:], dtype=values.dtype)
    if values.shape[0] == 0:
        return out
    index = np.asarray(index, dtype=np.int64)
    order = np.argsort(index, kind="stable")
    sorted_index = index[order]
    ids, starts = np.unique(sorted_index, return_index=True)
    out[ids] = np.add.reduceat(values[order], starts, axis=0)
    return out


class SegmentLayout:
    """Precomputed sorted layout for repeated segment reductions.

    Sorting the answer axis by a segment key (worker, item, or pattern)
    once makes every later reduction a gather into contiguous runs plus a
    single ``np.add.reduceat`` — the CSR trick of
    :class:`repro.core.svi._BatchData` generalised to any key.
    """

    def __init__(self, index: np.ndarray, n_segments: int) -> None:
        index = np.asarray(index, dtype=np.int64)
        self.n_segments = int(n_segments)
        self.size = int(index.size)
        self.order = np.argsort(index, kind="stable")
        self.sorted_index = index[self.order]
        if self.size:
            self.segment_ids, self.starts = np.unique(
                self.sorted_index, return_index=True
            )
        else:
            self.segment_ids = np.empty(0, dtype=np.int64)
            self.starts = np.empty(0, dtype=np.int64)

    def chunk_heads(self, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        """Reduceat offsets for the sorted slice ``[lo, hi)``.

        Returns ``(local_starts, segment_ids)``: the in-chunk segment
        boundaries (first entry always 0, i.e. ``lo``) and the segment id
        of each run.  A segment spanning a chunk boundary contributes
        partial sums from both chunks; callers accumulate with ``+=``.
        """
        i0 = np.searchsorted(self.starts, lo, side="right")
        i1 = np.searchsorted(self.starts, hi, side="left")
        heads = np.concatenate([[lo], self.starts[i0:i1]]).astype(np.int64)
        return heads - lo, self.sorted_index[heads]

    def add_to(self, out: np.ndarray, values: np.ndarray) -> np.ndarray:
        """``out[s] += Σ values`` per segment, for values in *layout* order
        (the original order the layout was built from)."""
        if self.size == 0:
            return out
        sums = np.add.reduceat(values[self.order], self.starts, axis=0)
        out[self.segment_ids] += sums
        return out


# ---------------------------------------------------------- grouped matmuls


def grouped_matmul(
    pattern_like: np.ndarray,
    group_ids: np.ndarray,
    offsets: np.ndarray,
    weights: np.ndarray,
    swap: bool,
) -> np.ndarray:
    """Per-pattern contraction of weight rows against likelihood blocks.

    ``weights`` holds per-answer rows grouped by pattern: rows
    ``offsets[j]:offsets[j+1]`` belong to pattern ``group_ids[j]``.  With
    ``swap=False`` each group computes ``(n_p, T) @ (T, M)`` (the κ-update
    data term); with ``swap=True`` it computes ``(n_p, M) @ (M, T)`` (the
    ϕ-update term).  Equivalent to gathering the ``(n, T, M)`` likelihood
    rows and contracting, but runs as ``len(group_ids)`` small BLAS calls
    with no rank-3 temporary.
    """
    t, m = pattern_like.shape[1], pattern_like.shape[2]
    dtype = np.result_type(weights, pattern_like)
    out = np.empty((weights.shape[0], t if swap else m), dtype=dtype)
    for j, pattern in enumerate(group_ids):
        lo, hi = int(offsets[j]), int(offsets[j + 1])
        if lo == hi:
            continue
        block = pattern_like[pattern]
        np.matmul(weights[lo:hi], block.T if swap else block, out=out[lo:hi])
    return out


def grouped_outer(
    phi_rows: np.ndarray,
    kappa_rows: np.ndarray,
    group_ids: np.ndarray,
    offsets: np.ndarray,
    n_groups: int,
) -> np.ndarray:
    """``J[p] = Σ_{n in group p} ϕ_rows[n]ᵀ κ_rows[n]`` as per-group matmuls.

    Inputs are grouped by pattern exactly as in :func:`grouped_matmul`;
    each group is one ``(T, n_p) @ (n_p, M)`` BLAS call.  Groups absent
    from ``group_ids`` stay zero.
    """
    t, m = phi_rows.shape[1], kappa_rows.shape[1]
    out = np.zeros((int(n_groups), t, m), dtype=np.result_type(phi_rows, kappa_rows))
    for j, group in enumerate(group_ids):
        lo, hi = int(offsets[j]), int(offsets[j + 1])
        if lo == hi:
            continue
        np.matmul(phi_rows[lo:hi].T, kappa_rows[lo:hi], out=out[group])
    return out


# --------------------------------------------------------------------- tasks
#
# Module-level task functions (picklable for process pools).  Each task is a
# tuple of pre-sliced arrays so a pool lane receives only its chunk's share
# plus the shared (P, T, M) pattern tensor.


def _grouped_score_task(task) -> Tuple[int, np.ndarray]:
    """One pattern-aligned range of :func:`grouped_matmul`."""
    lo, pattern_like, group_ids, offsets, weights, swap = task
    return lo, grouped_matmul(pattern_like, group_ids, offsets, weights, swap)


def _grouped_outer_task(task) -> Tuple[np.ndarray, np.ndarray]:
    """One pattern-aligned range of :func:`grouped_outer`."""
    phi_rows, kappa_rows, group_ids, offsets = task
    joint = grouped_outer(
        phi_rows, kappa_rows, np.arange(group_ids.size), offsets, group_ids.size
    )
    return group_ids, joint


def _direct_score_task(task) -> Tuple[np.ndarray, np.ndarray]:
    """Fallback score chunk: evaluate the likelihood directly (no dedup)."""
    x, e_log_psi, weights, starts, seg_ids, subscripts = task
    like = answer_log_likelihood(x, e_log_psi)
    weighted = np.einsum(subscripts, weights, like)
    return seg_ids, np.add.reduceat(weighted, starts, axis=0)


def _direct_cell_task(task) -> Tuple[np.ndarray, np.ndarray]:
    """Fallback cell-statistics chunk: direct ``(n,T,M) × (n,C)`` contraction."""
    phi_rows, kappa_rows, x = task
    joint = phi_rows[:, :, None] * kappa_rows[:, None, :]
    counts = np.einsum("ntm,nc->tmc", joint, x, optimize=True)
    return counts, joint.sum(axis=0)


def _direct_elbo_task(task) -> float:
    """Fallback ELBO data-term chunk."""
    phi_rows, kappa_rows, x, e_log_psi = task
    like = answer_log_likelihood(x, e_log_psi)
    joint = phi_rows[:, :, None] * kappa_rows[:, None, :]
    return float(np.einsum("ntm,ntm->", joint, like))


def _iter_bounds(size: int, chunk: int) -> List[Tuple[int, int]]:
    return [(lo, min(lo + chunk, size)) for lo in range(0, size, chunk)]


class SweepKernel:
    """Per-matrix workspace fusing every likelihood consumer of one sweep.

    Parameters
    ----------
    items, workers, indicators:
        The flat answer arrays (``(N,)``, ``(N,)``, ``(N, C)``).
    n_items, n_workers:
        Sizes of the item / worker index spaces.
    dtype:
        Floating dtype of the likelihood tensors (``CPAConfig.dtype``).
    patterned:
        Force the pattern-deduplicated path on/off; ``None`` (default)
        decides automatically — dedup is used unless the matrix has
        (pathologically) almost as many distinct patterns as answers.
    patterns, pattern_index:
        Optional precomputed dedup (as returned by
        :func:`unique_patterns`): ``patterns`` the ``(P, C)`` distinct-row
        table in lexicographic order, ``pattern_index`` the ``(N,)`` map
        from answers to rows.  A sharded caller that deduplicated the full
        matrix once can hand each shard its derived sub-table instead of
        paying the ``O(N·C log N)`` row sort again per shard.
    """

    def __init__(
        self,
        items: np.ndarray,
        workers: np.ndarray,
        indicators: np.ndarray,
        n_items: int,
        n_workers: int,
        dtype: np.dtype = np.float64,
        patterned: Optional[bool] = None,
        patterns: Optional[np.ndarray] = None,
        pattern_index: Optional[np.ndarray] = None,
    ) -> None:
        self.dtype = np.dtype(dtype)
        self.items = np.asarray(items, dtype=np.int64)
        self.workers = np.asarray(workers, dtype=np.int64)
        self.indicators = np.ascontiguousarray(indicators, dtype=self.dtype)
        self.n_answers = int(self.items.size)
        self.n_items = int(n_items)
        self.n_workers = int(n_workers)
        self.n_labels = int(self.indicators.shape[1]) if self.indicators.ndim == 2 else 0

        if patterned is False:
            # Explicit fallback: skip the O(N·C log N) dedup sort entirely —
            # this path exists precisely for pattern-heavy data where the
            # dedup is most expensive and least useful.
            self.patterns = np.zeros((0, self.n_labels), dtype=self.dtype)
            self.pattern_index = np.zeros(0, dtype=np.int64)
            self.n_patterns = 0
        else:
            if patterns is not None and pattern_index is not None:
                self.patterns = np.ascontiguousarray(patterns, dtype=self.dtype)
                self.pattern_index = np.asarray(
                    pattern_index, dtype=np.int64
                ).reshape(-1)
            else:
                self.patterns, self.pattern_index = unique_patterns(self.indicators)
            self.n_patterns = int(self.patterns.shape[0])
            if patterned is None:
                patterned = dedup_pays_off(self.n_patterns, self.n_answers)
        self.patterned = bool(patterned)

        if self.patterned:
            # Pattern-sorted layout: every per-answer contraction becomes a
            # run of per-pattern BLAS matmuls (answers of one pattern are
            # contiguous), and the worker/item reductions reuse the two
            # companion layouts built over the same order.
            self.by_pattern = SegmentLayout(self.pattern_index, self.n_patterns)
            self.pattern_offsets = np.searchsorted(
                self.by_pattern.sorted_index, np.arange(self.n_patterns + 1)
            ).astype(np.int64)
            self.items_by_pattern = self.items[self.by_pattern.order]
            self.workers_by_pattern = self.workers[self.by_pattern.order]
            self.worker_from_pattern = SegmentLayout(
                self.workers_by_pattern, self.n_workers
            )
            self.item_from_pattern = SegmentLayout(self.items_by_pattern, self.n_items)
        else:
            self.by_worker = SegmentLayout(self.workers, self.n_workers)
            self.by_item = SegmentLayout(self.items, self.n_items)
            self.items_by_worker = self.items[self.by_worker.order]
            self.workers_by_item = self.workers[self.by_item.order]
            self.x_by_worker = self.indicators[self.by_worker.order]
            self.x_by_item = self.indicators[self.by_item.order]

        self._e_log_psi: Optional[np.ndarray] = None
        self._pattern_like: Optional[np.ndarray] = None
        # (phi, kappa, pattern-space joint mass) of the latest cell pass —
        # reused by the ELBO when ϕ/κ have not changed since (identity
        # checks on held references, so array replacement invalidates it).
        self._joint_cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def cluster_limits(self, n_clusters: int) -> Optional[np.ndarray]:
        """Per-item cluster-window limits, or ``None`` when unconstrained.

        The fused kernel never truncates shard-locally (there are no
        shards); the method exists so engines can consult one seam for
        every backend (:meth:`repro.core.sharding.ShardedSweepKernel.cluster_limits`
        returns real windows when adaptation binds).
        """
        return None

    # ---------------------------------------------------------------- sweep

    def begin_sweep(self, e_log_psi: np.ndarray) -> None:
        """Evaluate the answer log-likelihood once for the whole sweep.

        Every subsequent :meth:`add_worker_scores` / :meth:`add_item_scores`
        call contracts against the shared ``(P, T, M)`` tensor instead of
        re-running the ``(N, C) @ (C, T·M)`` matmul.
        """
        self._e_log_psi = np.ascontiguousarray(e_log_psi, dtype=self.dtype)
        if self.patterned:
            self._pattern_like = answer_log_likelihood(self.patterns, self._e_log_psi)

    def _pattern_ranges(self, executor: Executor) -> List[Tuple[int, int]]:
        """Pattern-aligned ranges with roughly balanced answer counts."""
        lanes = max(1, getattr(executor, "degree", 1))
        if lanes <= 1 or self.n_patterns <= 1:
            return [(0, self.n_patterns)]
        bounds = balanced_bounds(self.pattern_offsets, self.n_answers, lanes)
        return [
            (int(bounds[i]), int(bounds[i + 1])) for i in range(bounds.size - 1)
        ]

    def _pattern_weighted(
        self, weights: np.ndarray, swap: bool, executor: Executor
    ) -> np.ndarray:
        """Grouped-matmul contraction for all answers, in pattern order."""
        ranges = self._pattern_ranges(executor)
        if len(ranges) == 1:
            return grouped_matmul(
                self._pattern_like,
                np.arange(self.n_patterns),
                self.pattern_offsets,
                weights,
                swap,
            )
        tasks = []
        for p0, p1 in ranges:
            lo = int(self.pattern_offsets[p0])
            hi = int(self.pattern_offsets[p1])
            tasks.append(
                (
                    lo,
                    self._pattern_like,
                    np.arange(p0, p1),
                    self.pattern_offsets[p0 : p1 + 1] - lo,
                    weights[lo:hi],
                    swap,
                )
            )
        pieces = executor.map_tasks(_grouped_score_task, tasks)
        t_or_m = self._pattern_like.shape[1] if swap else self._pattern_like.shape[2]
        out = np.empty(
            (self.n_answers, t_or_m),
            dtype=np.result_type(weights, self._pattern_like),
        )
        for lo, piece in pieces:
            out[lo : lo + piece.shape[0]] = piece
        return out

    def add_worker_scores(
        self, out: np.ndarray, phi: np.ndarray, executor: Optional[Executor] = None
    ) -> np.ndarray:
        """``out[u] += Σ_{n: u_n=u} Σ_t ϕ[i_n, t] L[n, t, ·]`` (Eq. 2 data term)."""
        executor = executor or _SERIAL
        if self._e_log_psi is None:
            raise InferenceError("begin_sweep must be called before score accumulation")
        if self.patterned:
            weighted = self._pattern_weighted(
                phi[self.items_by_pattern], swap=False, executor=executor
            )
            return self.worker_from_pattern.add_to(out, weighted)
        return self._direct_scores(
            out, self.by_worker, phi[self.items_by_worker], self.x_by_worker,
            "nt,ntm->nm", executor,
        )

    def add_item_scores(
        self, out: np.ndarray, kappa: np.ndarray, executor: Optional[Executor] = None
    ) -> np.ndarray:
        """``out[i] += Σ_{n: i_n=i} Σ_m κ[u_n, m] L[n, ·, m]`` (Eq. 3 data term)."""
        executor = executor or _SERIAL
        if self._e_log_psi is None:
            raise InferenceError("begin_sweep must be called before score accumulation")
        if self.patterned:
            weighted = self._pattern_weighted(
                kappa[self.workers_by_pattern], swap=True, executor=executor
            )
            return self.item_from_pattern.add_to(out, weighted)
        return self._direct_scores(
            out, self.by_item, kappa[self.workers_by_item], self.x_by_item,
            "nm,ntm->nt", executor,
        )

    def _direct_scores(
        self,
        out: np.ndarray,
        layout: SegmentLayout,
        weights: np.ndarray,
        x_rows: np.ndarray,
        subscripts: str,
        executor: Executor,
    ) -> np.ndarray:
        lanes = max(1, getattr(executor, "degree", 1))
        chunk = max(1, min(CHUNK, -(-self.n_answers // lanes)))
        tasks = []
        for lo, hi in _iter_bounds(layout.size, chunk):
            starts, seg_ids = layout.chunk_heads(lo, hi)
            tasks.append(
                (x_rows[lo:hi], self._e_log_psi, weights[lo:hi], starts, seg_ids, subscripts)
            )
        for seg_ids, sums in executor.map_tasks(_direct_score_task, tasks):
            out[seg_ids] += sums
        return out

    # ------------------------------------------------------------ statistics

    def _pattern_joint(
        self, phi: np.ndarray, kappa: np.ndarray, executor: Executor
    ) -> np.ndarray:
        """``J[p, t, m] = Σ_{n: pattern(n)=p} ϕ[i_n, t] κ[u_n, m]``, cached."""
        cache = self._joint_cache
        if cache is not None and cache[0] is phi and cache[1] is kappa:
            return cache[2]
        phi_rows = phi[self.items_by_pattern]
        kappa_rows = kappa[self.workers_by_pattern]
        ranges = self._pattern_ranges(executor)
        if len(ranges) == 1:
            joint = grouped_outer(
                phi_rows,
                kappa_rows,
                np.arange(self.n_patterns),
                self.pattern_offsets,
                self.n_patterns,
            )
        else:
            joint = np.zeros(
                (self.n_patterns, phi.shape[1], kappa.shape[1]),
                dtype=np.result_type(phi, kappa),
            )
            tasks = []
            for p0, p1 in ranges:
                lo = int(self.pattern_offsets[p0])
                hi = int(self.pattern_offsets[p1])
                tasks.append(
                    (
                        phi_rows[lo:hi],
                        kappa_rows[lo:hi],
                        np.arange(p0, p1),
                        self.pattern_offsets[p0 : p1 + 1] - lo,
                    )
                )
            for group_ids, piece in executor.map_tasks(_grouped_outer_task, tasks):
                joint[group_ids] = piece
        self._joint_cache = (phi, kappa, joint)
        return joint

    def cell_statistics(
        self, phi: np.ndarray, kappa: np.ndarray, executor: Optional[Executor] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Eq. 6 sufficient statistics ``(counts (T,M,C), mass (T,M))``.

        On the pattern path the ``O(N·T·M·C)`` contraction collapses to the
        pattern-space joint mass plus one ``(T·M, P) @ (P, C)`` matmul.
        """
        executor = executor or _SERIAL
        if self.patterned:
            joint = self._pattern_joint(phi, kappa, executor)
            p, t, m = joint.shape
            counts = (joint.reshape(p, t * m).T @ self.patterns).reshape(
                t, m, self.n_labels
            )
            return counts, joint.sum(axis=0)
        t = phi.shape[1]
        m = kappa.shape[1]
        counts = np.zeros((t, m, self.n_labels), dtype=np.result_type(phi, kappa))
        mass = np.zeros((t, m), dtype=counts.dtype)
        lanes = max(1, getattr(executor, "degree", 1))
        chunk = max(1, min(CHUNK, -(-self.n_answers // lanes)))
        tasks = []
        for lo, hi in _iter_bounds(self.n_answers, chunk):
            tasks.append(
                (phi[self.items[lo:hi]], kappa[self.workers[lo:hi]], self.indicators[lo:hi])
            )
        for partial_counts, partial_mass in executor.map_tasks(_direct_cell_task, tasks):
            counts += partial_counts
            mass += partial_mass
        return counts, mass

    def data_elbo(
        self,
        phi: np.ndarray,
        kappa: np.ndarray,
        e_log_psi: np.ndarray,
        executor: Optional[Executor] = None,
    ) -> float:
        """``E[ln p(x | z, l, ψ)] = Σ_n Σ_tm ϕ κ L`` for the current globals.

        Reuses the pattern-space joint mass cached by the last
        :meth:`cell_statistics` call whenever ``ϕ``/``κ`` are unchanged —
        the common case, since the ELBO is evaluated right after a sweep.
        """
        executor = executor or _SERIAL
        if self.patterned:
            pattern_like = answer_log_likelihood(
                self.patterns, np.ascontiguousarray(e_log_psi, dtype=self.dtype)
            )
            joint = self._pattern_joint(phi, kappa, executor)
            return float(np.einsum("ptm,ptm->", joint, pattern_like))
        e_log_psi = np.ascontiguousarray(e_log_psi, dtype=self.dtype)
        lanes = max(1, getattr(executor, "degree", 1))
        chunk = max(1, min(CHUNK, -(-self.n_answers // lanes)))
        tasks = []
        for lo, hi in _iter_bounds(self.n_answers, chunk):
            tasks.append(
                (
                    phi[self.items[lo:hi]],
                    kappa[self.workers[lo:hi]],
                    self.indicators[lo:hi],
                    e_log_psi,
                )
            )
        return float(sum(executor.map_tasks(_direct_elbo_task, tasks)))
