"""Worker/community diagnostics (paper §5.5, Fig 9 and Fig 10).

The paper verifies the existence of worker communities by plotting each
worker's per-label *sensitivity* (true-positive rate) against *specificity*
(true-negative rate) relative to ground truth, then inspecting the inferred
community structure.  This module computes those operating points and
summarises inferred communities (size, dominant worker types, mean
operating point) so the Fig-9/Fig-10 experiments — and library users
auditing a crowd — can reproduce the analysis without plotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.state import CPAState
from repro.data.dataset import CrowdDataset
from repro.errors import ValidationError


@dataclass(frozen=True)
class OperatingPoint:
    """Sensitivity/specificity of one worker for one label (or overall)."""

    worker: int
    label: Optional[int]
    sensitivity: float
    specificity: float
    support_positive: int
    support_negative: int


@dataclass(frozen=True)
class CommunitySummary:
    """Aggregate description of one inferred worker community."""

    community: int
    size: float
    members: List[int]
    mean_sensitivity: float
    mean_specificity: float
    type_histogram: Dict[str, int]

    @property
    def dominant_type(self) -> Optional[str]:
        """Most frequent provenance worker type, if provenance exists."""
        if not self.type_histogram:
            return None
        return max(self.type_histogram, key=lambda key: self.type_histogram[key])


def worker_operating_points(
    dataset: CrowdDataset,
    labels: Optional[Sequence[int]] = None,
    *,
    min_support: int = 1,
) -> List[OperatingPoint]:
    """Per-worker, per-label sensitivity/specificity vs. ground truth.

    For worker ``u`` and label ``c``: sensitivity is the fraction of
    ``u``'s answered items truly carrying ``c`` where ``u`` included ``c``;
    specificity the fraction of answered items truly lacking ``c`` where
    ``u`` omitted it.  ``labels=None`` computes the label-pooled (overall)
    point per worker, as in Fig 10.  Workers/labels with fewer than
    ``min_support`` positive *and* negative items are skipped.
    """
    if len(dataset.truth) == 0:
        raise ValidationError("operating points require ground truth")
    targets: List[Optional[int]] = list(labels) if labels is not None else [None]
    points: List[OperatingPoint] = []
    for worker in dataset.answers.active_workers():
        answered = dataset.answers.items_for_worker(worker)
        for label in targets:
            tp = fp = tn = fn = 0
            for item in answered:
                truth = dataset.truth.get(item)
                answer = dataset.answers.get(item, worker)
                if truth is None or answer is None:
                    continue
                if label is None:
                    tp += len(answer & truth)
                    fn += len(truth - answer)
                    fp += len(answer - truth)
                    tn += dataset.n_labels - len(answer | truth)
                else:
                    truly_present = label in truth
                    said_present = label in answer
                    tp += truly_present and said_present
                    fn += truly_present and not said_present
                    fp += (not truly_present) and said_present
                    tn += (not truly_present) and not said_present
            pos, neg = tp + fn, fp + tn
            if pos < min_support or neg < min_support:
                continue
            points.append(
                OperatingPoint(
                    worker=worker,
                    label=label,
                    sensitivity=tp / pos,
                    specificity=tn / neg,
                    support_positive=pos,
                    support_negative=neg,
                )
            )
    return points


def community_summaries(
    state: CPAState,
    dataset: CrowdDataset,
    *,
    min_size: float = 0.5,
) -> List[CommunitySummary]:
    """Describe every non-empty inferred community.

    Sizes are expected memberships ``Σ_u κ_um``; members are workers whose
    MAP community is ``m``.  Mean operating points use the label-pooled
    sensitivity/specificity of the member workers (requires ground truth;
    reported as ``nan`` without it).
    """
    assignments = state.hard_communities()
    sizes = state.kappa.sum(axis=0)

    pooled: Dict[int, OperatingPoint] = {}
    if len(dataset.truth) > 0:
        pooled = {
            point.worker: point for point in worker_operating_points(dataset)
        }

    summaries: List[CommunitySummary] = []
    for community in range(state.n_communities):
        if sizes[community] <= min_size:
            continue
        members = [int(u) for u in np.flatnonzero(assignments == community)]
        sens = [pooled[u].sensitivity for u in members if u in pooled]
        spec = [pooled[u].specificity for u in members if u in pooled]
        histogram: Dict[str, int] = {}
        if dataset.worker_types is not None:
            for u in members:
                key = dataset.worker_types[u]
                histogram[key] = histogram.get(key, 0) + 1
        summaries.append(
            CommunitySummary(
                community=community,
                size=float(sizes[community]),
                members=members,
                mean_sensitivity=float(np.mean(sens)) if sens else float("nan"),
                mean_specificity=float(np.mean(spec)) if spec else float("nan"),
                type_histogram=histogram,
            )
        )
    return summaries


def count_label_communities(
    dataset: CrowdDataset,
    label: int,
    *,
    grid: float = 0.2,
    min_support: int = 2,
) -> int:
    """Rough community count for one label (Fig 9's per-label structure).

    Workers are binned on a ``grid``-spaced (sensitivity, specificity)
    lattice; the count of occupied, non-adjacent bins approximates the
    number of distinct per-label communities.  Deliberately simple — the
    paper reads the count off a scatter plot.
    """
    if not 0 < grid <= 1:
        raise ValidationError("grid must lie in (0, 1]")
    points = worker_operating_points(dataset, labels=[label], min_support=min_support)
    if not points:
        return 0
    occupied = {
        (int(p.sensitivity / grid), int(p.specificity / grid)) for p in points
    }
    # Merge adjacent cells (8-neighbourhood) into blobs.
    remaining = set(occupied)
    blobs = 0
    while remaining:
        stack = [remaining.pop()]
        while stack:
            cx, cy = stack.pop()
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    neighbour = (cx + dx, cy + dy)
                    if neighbour in remaining:
                        remaining.remove(neighbour)
                        stack.append(neighbour)
        blobs += 1
    return blobs
