"""Sharded sweep backend behind the :class:`SweepKernel` seam (DESIGN.md §6).

The fused kernel layer factors every data-dependent update of both
inference engines through per-answer sufficient statistics that are
*additive* over answers.  This module exploits that shape across shards:

* :class:`ShardPlan` partitions the flat answer arrays **by item** into
  ``K`` self-contained shards (contiguous item ranges, boundaries chosen
  to balance answer counts, built on :class:`SegmentLayout`'s item-sorted
  order).  Every answer lands in exactly one shard and every item's
  answers land in the *same* shard, so the ϕ-update data term never
  crosses a shard boundary.
* :class:`ShardedSweepKernel` presents the same interface as
  :class:`~repro.core.kernels.SweepKernel` but runs each shard's
  pattern-deduplicated contractions as an independent
  :meth:`~repro.utils.parallel.Executor.map_tasks` unit and merges the
  partial sufficient statistics centrally.

Combine semantics (the parity contract of ``tests/test_sharded.py``):

* **item scores** — shards own disjoint item sets, so the merge is a
  disjoint scatter; each item's segment is reduced inside one shard with
  the same per-segment summation order (pattern-major, stable) as the
  fused serial path.
* **worker scores / cell statistics / ELBO** — workers and patterns span
  shards; each shard contributes one ``reduceat``-style contiguous
  partial per segment, and partials are merged ``+=`` in **fixed shard
  order** (``k = 0..K-1``, independent of the executor's scheduling,
  since ``map_tasks`` preserves task order).  The merge is therefore
  deterministic for every executor kind; relative to the fused serial
  path it only reassociates the per-segment sums, keeping trajectories
  within ``1e-10`` on float64.

Shard-local truncation (DESIGN.md §6 "Shard-local truncation"): with
``CPAConfig.adaptive_truncation`` engaged, each shard carries a
``t_limit`` sized from its own distinct item-profile count and works on
the stick-breaking *prefix* ``[0, T_s)`` of the cluster space,
``T_s = min(T, t_limit)``: tasks receive the contiguous view
``e_log_psi[:T_s]`` and windowed ϕ rows, per-shard statistics shrink to
``(T_s, M, C)``, and merges scatter the prefixes back into the global
arrays.  Engines keep ϕ exactly zero outside each item's window
(``cluster_limits`` + the masking helpers of :mod:`repro.core.kernels`),
so the windowed contractions are *exact* — coordinate ascent within the
window-constrained variational family.  When no shard binds
(``T_s = T`` everywhere) every path below is bitwise identical to the
non-adaptive one.

Transport (DESIGN.md §6 "Lane-resident shard state"): by default the
shard kernels are **lane-resident** — :class:`ShardedSweepKernel`
broadcasts the shard tuple to the executor once per plan
(:meth:`~repro.utils.parallel.Executor.broadcast`) and every per-sweep
task then carries only the shard index plus the small updated posteriors
(ϕ/κ rows, the sweep's ``E[ln ψ]``), routed through
:meth:`~repro.utils.parallel.Executor.map_on`.  For process pools this
cuts per-sweep pickled bytes by an order of magnitude (the shard's
pattern tables and answer arrays ship once per plan instead of once per
task per call; ``BENCH_core.json`` records the measured ratio) and is
the prerequisite for a multi-node transport.  ``resident=False``
restores the ship-per-task path — both transports execute identical
numpy ops in identical order, so their results are bitwise equal
(``tests/test_resident.py``).  Broadcast state is evicted when the
executor closes.
"""

from __future__ import annotations

import itertools
import weakref
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.kernels import (
    SegmentLayout,
    SweepKernel,
    balanced_bounds,
    dedup_pays_off,
    segment_sum,
    unique_patterns,
)
from repro.errors import InferenceError, ValidationError
from repro.utils.parallel import Executor, SerialExecutor

_SERIAL = SerialExecutor()


@dataclass(frozen=True)
class Shard:
    """One self-contained slice of the answer matrix.

    ``kernel`` operates on shard-local index spaces; ``item_ids`` /
    ``worker_ids`` map local rows back to the global spaces (both sorted
    ascending, so local ids preserve global order).  ``t_limit`` is the
    shard's own cluster-truncation budget (DESIGN.md §6 "Shard-local
    truncation"), sized from the shard's item/answer profile at plan
    time; ``None`` means the shard inherits the global truncation.  The
    effective ``T_s = min(T, t_limit)`` is resolved against the global
    ``T`` by :class:`ShardedSweepKernel`, never here — the plan does not
    know ``T``.
    """

    index: int
    item_ids: np.ndarray  # (I_s,) global ids of the shard's answered items
    worker_ids: np.ndarray  # (U_s,) global ids of the shard's active workers
    kernel: SweepKernel
    t_limit: Optional[int] = None

    @property
    def n_answers(self) -> int:
        return self.kernel.n_answers


class ShardPlan:
    """Item-partition of flat answer arrays into balanced shards.

    Boundaries are drawn at item boundaries of the item-sorted layout,
    targeting equal answer counts per shard (the same balancing rule as
    ``SweepKernel._pattern_ranges``).  Ranges that contain no answers are
    dropped, so the realised ``n_shards`` can be below the request —
    ``K = 1`` always yields exactly one shard covering everything.
    """

    def __init__(
        self,
        items: np.ndarray,
        workers: np.ndarray,
        indicators: np.ndarray,
        n_items: int,
        n_workers: int,
        n_shards: int,
        dtype: np.dtype = np.float64,
        patterned: Optional[bool] = None,
        patterns: Optional[np.ndarray] = None,
        pattern_index: Optional[np.ndarray] = None,
        shard_truncation=None,
    ) -> None:
        """``patterns`` / ``pattern_index`` optionally reuse a dedup the
        caller already computed over these exact rows (the SVI batch path
        dedups once in ``_prepare_batch``) instead of re-sorting here.
        ``shard_truncation(n_profiles, n_items) -> int`` (normally
        :meth:`repro.core.config.CPAConfig.shard_truncation`) enables
        shard-local truncation adaptation: each shard's ``t_limit`` is
        sized from its count of distinct per-item answer profiles."""
        if n_shards <= 0:
            raise ValidationError("n_shards must be positive")
        self.dtype = np.dtype(dtype)
        items = np.asarray(items, dtype=np.int64)
        workers = np.asarray(workers, dtype=np.int64)
        indicators = np.ascontiguousarray(indicators, dtype=self.dtype)
        self.n_items = int(n_items)
        self.n_workers = int(n_workers)
        self.n_answers = int(items.size)
        self.n_labels = int(indicators.shape[1]) if indicators.ndim == 2 else 0

        # `patterned=False` is the explicit request to skip dedup entirely
        # (pattern-heavy data) — honour it here too instead of paying the
        # O(N·C log N) row sort only to discard the tables per shard.
        dedup = patterned is not False and self.n_answers > 0
        self.n_patterns = 0
        if not dedup:
            pattern_index = None
        elif patterns is not None and pattern_index is not None:
            patterns = np.ascontiguousarray(patterns, dtype=self.dtype)
            pattern_index = np.asarray(pattern_index, dtype=np.int64).reshape(-1)
            self.n_patterns = int(patterns.shape[0])
        else:
            patterns, pattern_index = unique_patterns(indicators)
            self.n_patterns = int(patterns.shape[0])
        if dedup and patterned is None and not dedup_pays_off(
            self.n_patterns, self.n_answers
        ):
            # Plan-level auto fallback mirroring SweepKernel's rule: on
            # pattern-heavy matrices every shard would discard its derived
            # sub-table anyway, so pin the direct path instead of deriving
            # tables shard by shard.  n_patterns reports 0 like SweepKernel
            # does on its direct path.
            patterned = False
            dedup = False
            self.n_patterns = 0

        layout = SegmentLayout(items, self.n_items)
        item_offsets = np.searchsorted(
            layout.sorted_index, np.arange(self.n_items + 1)
        ).astype(np.int64)
        sorted_items = layout.sorted_index
        sorted_workers = workers[layout.order]
        sorted_x = indicators[layout.order]
        sorted_pattern = pattern_index[layout.order] if dedup else None

        bounds = balanced_bounds(item_offsets, self.n_answers, n_shards)
        self.item_bounds = bounds

        self.shards: List[Shard] = []
        for s in range(bounds.size - 1):
            lo = int(item_offsets[bounds[s]])
            hi = int(item_offsets[bounds[s + 1]])
            if lo == hi:
                continue
            item_ids, local_items = np.unique(
                sorted_items[lo:hi], return_inverse=True
            )
            worker_ids, local_workers = np.unique(
                sorted_workers[lo:hi], return_inverse=True
            )
            dedup_tables = {}
            if dedup:
                # Shard pattern table derived from the global dedup: local
                # ids are increasing in global pattern id, so lexicographic
                # order (and with it the fused path's per-segment summation
                # order) is preserved.
                pattern_ids, local_pattern = np.unique(
                    sorted_pattern[lo:hi], return_inverse=True
                )
                dedup_tables = dict(
                    patterns=patterns[pattern_ids], pattern_index=local_pattern
                )
            kernel = SweepKernel(
                local_items,
                local_workers,
                sorted_x[lo:hi],
                n_items=int(item_ids.size),
                n_workers=int(worker_ids.size),
                dtype=self.dtype,
                patterned=patterned,
                **dedup_tables,
            )
            t_limit = None
            if shard_truncation is not None:
                # Distinct per-item answer profiles: items whose summed
                # indicator rows coincide are indistinguishable to the
                # clustering, so the profile count — not the raw item
                # count — bounds the clusters this shard's data supports.
                profiles = segment_sum(
                    sorted_x[lo:hi], local_items, int(item_ids.size)
                )
                n_profiles = int(np.unique(profiles, axis=0).shape[0])
                t_limit = int(shard_truncation(n_profiles, int(item_ids.size)))
            self.shards.append(
                Shard(
                    index=len(self.shards),
                    item_ids=item_ids,
                    worker_ids=worker_ids,
                    kernel=kernel,
                    t_limit=t_limit,
                )
            )
        self.n_shards = len(self.shards)


# --------------------------------------------------------------------- merges


def merge_cell_statistics(
    pieces: Sequence[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Combine per-shard ``(counts, mass)`` fragments by summation.

    The combine is exact segment addition — associative and commutative up
    to float roundoff — so any bracketing/order of fragments agrees within
    accumulation noise; :class:`ShardedSweepKernel` always folds in fixed
    shard order to stay deterministic across executors.
    """
    if not pieces:
        raise ValidationError("merge_cell_statistics needs at least one fragment")
    counts = pieces[0][0].copy()
    mass = pieces[0][1].copy()
    for piece_counts, piece_mass in pieces[1:]:
        counts += piece_counts
        mass += piece_mass
    return counts, mass


def merge_scores(
    out: np.ndarray,
    pieces: Sequence[Tuple[np.ndarray, np.ndarray]],
) -> np.ndarray:
    """``out[ids] += scores`` for each ``(ids, scores)`` fragment, in order."""
    for ids, scores in pieces:
        out[ids] += scores
    return out


# ---------------------------------------------------------------------- tasks
#
# Module-level task functions (picklable for process pools).  Each task
# carries the shard's SweepKernel plus only that shard's parameter rows;
# process lanes receive a pickled copy, so every task re-establishes the
# sweep tensor itself (identity-cached: with serial/thread executors the
# shared kernel object evaluates it once per sweep).


def _ensure_sweep(kernel: SweepKernel, e_log_psi: np.ndarray) -> None:
    if kernel._e_log_psi is not e_log_psi:
        kernel.begin_sweep(e_log_psi)


def _shard_worker_scores_task(task) -> np.ndarray:
    """κ-update data term of one shard, over the shard's worker space."""
    kernel, e_log_psi, phi_rows = task
    _ensure_sweep(kernel, e_log_psi)
    out = np.zeros(
        (kernel.n_workers, e_log_psi.shape[1]),
        dtype=np.result_type(phi_rows, e_log_psi),
    )
    return kernel.add_worker_scores(out, phi_rows)


def _shard_item_scores_task(task) -> np.ndarray:
    """ϕ-update data term of one shard, over the shard's item space."""
    kernel, e_log_psi, kappa_rows = task
    _ensure_sweep(kernel, e_log_psi)
    out = np.zeros(
        (kernel.n_items, e_log_psi.shape[0]),
        dtype=np.result_type(kappa_rows, e_log_psi),
    )
    return kernel.add_item_scores(out, kappa_rows)


def _shard_cell_statistics_task(task) -> Tuple[np.ndarray, np.ndarray]:
    """Eq. 6 sufficient statistics of one shard."""
    kernel, phi_rows, kappa_rows = task
    return kernel.cell_statistics(phi_rows, kappa_rows)


def _shard_data_elbo_task(task) -> float:
    """ELBO data term of one shard."""
    kernel, phi_rows, kappa_rows, e_log_psi = task
    return kernel.data_elbo(phi_rows, kappa_rows, e_log_psi)


# ------------------------------------------------------------ resident tasks
#
# map_on variants of the task functions above: the shard tuple is
# lane-resident (broadcast once per plan), so each task names its shard by
# index and carries only the per-sweep posteriors.  Bodies delegate to the
# ship-per-task functions so the two transports cannot drift.


def _resident_worker_scores(shards, task) -> np.ndarray:
    k, e_log_psi, phi_rows = task
    return _shard_worker_scores_task((shards[k].kernel, e_log_psi, phi_rows))


def _resident_item_scores(shards, task) -> np.ndarray:
    k, e_log_psi, kappa_rows = task
    return _shard_item_scores_task((shards[k].kernel, e_log_psi, kappa_rows))


def _resident_cell_statistics(shards, task) -> Tuple[np.ndarray, np.ndarray]:
    k, phi_rows, kappa_rows = task
    return _shard_cell_statistics_task((shards[k].kernel, phi_rows, kappa_rows))


def _resident_data_elbo(shards, task) -> float:
    k, phi_rows, kappa_rows, e_log_psi = task
    return _shard_data_elbo_task((shards[k].kernel, phi_rows, kappa_rows, e_log_psi))


#: process-unique suffix source for broadcast keys (two live kernels must
#: never share a key on the same executor).
_BROADCAST_KEYS = itertools.count()


def _next_broadcast_key() -> str:
    return f"shard-plan-{next(_BROADCAST_KEYS)}"


def _release_broadcast(executors, key: str) -> None:
    """Drop ``key`` from every executor still alive in the weak set.

    Module-level so a :mod:`weakref` finalizer can call it without
    keeping the kernel itself alive; ``Executor.release`` is a no-op for
    unknown/closed state, so double release is safe.
    """
    for executor in list(executors):
        executor.release(key)


# --------------------------------------------------------------------- kernel


class ShardedSweepKernel:
    """Drop-in :class:`SweepKernel` that fans shards out over an executor.

    Presents the same sweep interface (``begin_sweep`` /
    ``add_worker_scores`` / ``add_item_scores`` / ``cell_statistics`` /
    ``data_elbo``) so :class:`~repro.core.inference.VariationalInference`
    and the per-batch SVI path can select it without code changes; merge
    semantics are documented in the module docstring.

    ``resident=True`` (default) keeps the shard kernels lane-resident:
    the shard tuple is broadcast to each executor once (on first use) and
    per-sweep tasks carry only ``(shard index, posterior rows)`` through
    ``map_on``.  ``resident=False`` ships each shard's kernel inside
    every task — same ops, same order, bitwise-equal results.  The
    module-level serial fallback (methods called without an executor)
    always runs ship-per-task: serial dispatch passes references, so
    residency would only pin plan payloads into the shared default
    executor for no benefit.
    """

    def __init__(
        self,
        items: np.ndarray,
        workers: np.ndarray,
        indicators: np.ndarray,
        n_items: int,
        n_workers: int,
        dtype: np.dtype = np.float64,
        n_shards: int = 1,
        patterned: Optional[bool] = None,
        patterns: Optional[np.ndarray] = None,
        pattern_index: Optional[np.ndarray] = None,
        resident: bool = True,
        shard_truncation=None,
    ) -> None:
        self.dtype = np.dtype(dtype)
        self.resident = bool(resident)
        self._broadcast_key = _next_broadcast_key()
        #: executors that already hold this plan (weak: an executor's
        #: lifetime is the caller's business, not the kernel's).  The
        #: finalizer retires the plan from surviving executors when the
        #: kernel is collected, so long-lived executors serving many
        #: successive fits do not accumulate dead plans.
        self._installed: "weakref.WeakSet" = weakref.WeakSet()
        self._finalizer = weakref.finalize(
            self, _release_broadcast, self._installed, self._broadcast_key
        )
        self.plan = ShardPlan(
            items,
            workers,
            indicators,
            n_items=n_items,
            n_workers=n_workers,
            n_shards=n_shards,
            dtype=self.dtype,
            patterned=patterned,
            patterns=patterns,
            pattern_index=pattern_index,
            shard_truncation=shard_truncation,
        )
        self.n_items = self.plan.n_items
        self.n_workers = self.plan.n_workers
        self.n_answers = self.plan.n_answers
        self.n_labels = self.plan.n_labels
        self.n_patterns = self.plan.n_patterns
        self.n_shards = self.plan.n_shards
        #: shard-local truncation adaptation is armed (some shard carries
        #: a t_limit); whether it *binds* depends on the global T of each
        #: call (see _shard_ts) — when no shard's limit falls below T,
        #: every code path below is identical to the non-adaptive one.
        self.adaptive = any(
            shard.t_limit is not None for shard in self.plan.shards
        )
        self._shard_ts_cache: dict = {}
        self._limits_cache: dict = {}
        self._e_log_psi: Optional[np.ndarray] = None
        self._psi_views: Optional[List[np.ndarray]] = None
        self._psi_view_cache: Optional[Tuple[np.ndarray, List[np.ndarray]]] = None
        # Identity-keyed row-slice caches: reusing the same sliced arrays
        # across cell_statistics -> data_elbo lets each shard's joint-mass
        # cache hit (serial/thread executors share the kernel objects).
        self._phi_slices: Optional[Tuple[np.ndarray, List[np.ndarray]]] = None
        self._kappa_slices: Optional[Tuple[np.ndarray, List[np.ndarray]]] = None

    # ------------------------------------------------- shard-local truncation

    def _shard_ts(self, n_clusters: int) -> List[int]:
        """Effective per-shard truncations ``T_s = min(T, t_limit)``."""
        t = int(n_clusters)
        cached = self._shard_ts_cache.get(t)
        if cached is None:
            cached = [
                t if shard.t_limit is None else max(1, min(t, shard.t_limit))
                for shard in self.plan.shards
            ]
            self._shard_ts_cache[t] = cached
        return cached

    def _binding(self, n_clusters: int) -> bool:
        """Does any shard truncate below the global ``T`` at this width?"""
        return self.adaptive and any(
            t_s < int(n_clusters) for t_s in self._shard_ts(int(n_clusters))
        )

    def cluster_limits(self, n_clusters: int) -> Optional[np.ndarray]:
        """Per-item cluster-window limits at global truncation ``n_clusters``.

        ``None`` when adaptation is off or no shard binds (the engines
        then run the untouched global-truncation updates).  Otherwise an
        ``(n_items,)`` int64 array: item ``i`` of a truncated shard may
        only occupy clusters ``[0, limits[i])``; items outside every
        shard (unanswered) keep the full window.  Engines feed this to
        :func:`repro.core.kernels.mask_cluster_scores` /
        :func:`repro.core.kernels.truncate_rows` so ``ϕ`` rows carry
        exactly zero mass outside their windows — which is what makes
        every restricted shard contraction exact.
        """
        t = int(n_clusters)
        if not self._binding(t):
            return None
        cached = self._limits_cache.get(t)
        if cached is None:
            cached = np.full(self.n_items, t, dtype=np.int64)
            for shard, t_s in zip(self.plan.shards, self._shard_ts(t)):
                cached[shard.item_ids] = t_s
            self._limits_cache[t] = cached
        return cached

    def _psi_for(self, e_log_psi: np.ndarray) -> List[np.ndarray]:
        """Per-shard likelihood tensors: prefix views when truncating.

        A binding shard receives the contiguous prefix view
        ``e_log_psi[:T_s]`` — no copy, and its pattern-space tensor and
        sufficient statistics shrink to ``(·, T_s, M)`` / ``(T_s, M, C)``.
        Non-binding shards receive the original array object, so the
        per-sweep identity caches (and bitwise behaviour) match the
        non-adaptive path exactly.  Views are identity-cached on the
        input array: repeated calls with the same tensor (the SVI local
        loop re-enters ``begin_sweep`` every refinement pass) hand the
        shard kernels the *same* view objects, keeping their per-sweep
        likelihood caches warm.
        """
        t = int(e_log_psi.shape[0])
        if not self._binding(t):
            return [e_log_psi] * len(self.plan.shards)
        cache = self._psi_view_cache
        if cache is None or cache[0] is not e_log_psi:
            self._psi_view_cache = (
                e_log_psi,
                [
                    e_log_psi if t_s >= t else e_log_psi[:t_s]
                    for t_s in self._shard_ts(t)
                ],
            )
        return self._psi_view_cache[1]

    # ------------------------------------------------------------ transport

    def __getstate__(self) -> dict:
        # WeakSets and finalizers do not pickle; a clone starts with no
        # lanes installed and a fresh key (sharing the original's key
        # could alias another kernel's broadcast in the unpickling
        # process).
        state = self.__dict__.copy()
        state["_installed"] = None
        state["_finalizer"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._installed = weakref.WeakSet()
        self._broadcast_key = _next_broadcast_key()
        self._finalizer = weakref.finalize(
            self, _release_broadcast, self._installed, self._broadcast_key
        )

    def evict(self) -> None:
        """Release this plan's broadcast state from every installed executor.

        Called when a plan is retired while its executor lives on (the SVI
        engine replaces its per-batch kernel every batch); the finalizer
        does the same when the kernel is garbage-collected, and the
        executor's own :meth:`~repro.utils.parallel.Executor.close`
        evicts everything — so calling this is an optimisation, not a
        duty.
        """
        _release_broadcast(self._installed, self._broadcast_key)
        self._installed.clear()

    def _fan_out(self, executor: Executor, resident_func, reship_func, tasks):
        """Run per-shard tasks on ``executor`` via the selected transport.

        ``tasks`` lead with the shard index; the re-ship path swaps that
        index for the shard's kernel object so both transports execute
        the exact same task bodies.  Results come back in task order —
        the fixed-order merge contract.
        """
        if self.resident and executor is not _SERIAL:
            if executor not in self._installed:
                executor.broadcast(self._broadcast_key, tuple(self.plan.shards))
                self._installed.add(executor)
            return executor.map_on(self._broadcast_key, resident_func, tasks)
        shards = self.plan.shards
        return executor.map_tasks(
            reship_func, [(shards[task[0]].kernel,) + task[1:] for task in tasks]
        )

    # ---------------------------------------------------------------- sweep

    def begin_sweep(self, e_log_psi: np.ndarray) -> None:
        """Pin the sweep's likelihood tensor; shards evaluate lazily.

        Each shard task establishes its pattern-space likelihood on first
        use (identity-cached per sweep for in-process executors; process
        lanes re-evaluate on their pickled copies).  Under binding
        shard-local truncation each truncated shard is pinned to the
        contiguous prefix view ``e_log_psi[:T_s]`` for the whole sweep.
        """
        self._e_log_psi = np.ascontiguousarray(e_log_psi, dtype=self.dtype)
        self._psi_views = self._psi_for(self._e_log_psi)

    def _item_rows(self, phi: np.ndarray) -> List[np.ndarray]:
        cache = self._phi_slices
        if cache is None or cache[0] is not phi:
            rows = [phi[shard.item_ids] for shard in self.plan.shards]
            if self._binding(phi.shape[1]):
                # Window the ϕ rows to each shard's prefix.  The engines
                # keep ϕ at exactly zero outside the windows, so the
                # truncated contraction equals the full one.  Contiguous
                # copies: the rows feed per-pattern BLAS matmuls, which
                # would otherwise re-pack the strided slice per group.
                rows = [
                    r if t_s >= phi.shape[1]
                    else np.ascontiguousarray(r[:, :t_s])
                    for r, t_s in zip(rows, self._shard_ts(phi.shape[1]))
                ]
            self._phi_slices = (phi, rows)
        return self._phi_slices[1]

    def _worker_rows(self, kappa: np.ndarray) -> List[np.ndarray]:
        cache = self._kappa_slices
        if cache is None or cache[0] is not kappa:
            self._kappa_slices = (
                kappa,
                [kappa[shard.worker_ids] for shard in self.plan.shards],
            )
        return self._kappa_slices[1]

    def add_worker_scores(
        self, out: np.ndarray, phi: np.ndarray, executor: Optional[Executor] = None
    ) -> np.ndarray:
        """``out[u] += Σ_{n: u_n=u} Σ_t ϕ[i_n, t] L[n, t, ·]``, shard-merged."""
        executor = executor or _SERIAL
        if self._e_log_psi is None:
            raise InferenceError("begin_sweep must be called before score accumulation")
        tasks = [
            (shard.index, psi, rows)
            for shard, psi, rows in zip(
                self.plan.shards, self._psi_views, self._item_rows(phi)
            )
        ]
        pieces = self._fan_out(
            executor, _resident_worker_scores, _shard_worker_scores_task, tasks
        )
        return merge_scores(
            out,
            [
                (shard.worker_ids, scores)
                for shard, scores in zip(self.plan.shards, pieces)
            ],
        )

    def add_item_scores(
        self, out: np.ndarray, kappa: np.ndarray, executor: Optional[Executor] = None
    ) -> np.ndarray:
        """``out[i] += Σ_{n: i_n=i} Σ_m κ[u_n, m] L[n, ·, m]``; disjoint merge.

        Under binding shard-local truncation a truncated shard returns
        ``(I_s, T_s)`` scores which scatter into the prefix columns of
        its (disjoint) item rows; out-of-window columns are left
        untouched — the engines mask them out of the ϕ update entirely.
        """
        executor = executor or _SERIAL
        if self._e_log_psi is None:
            raise InferenceError("begin_sweep must be called before score accumulation")
        tasks = [
            (shard.index, psi, rows)
            for shard, psi, rows in zip(
                self.plan.shards, self._psi_views, self._worker_rows(kappa)
            )
        ]
        pieces = self._fan_out(
            executor, _resident_item_scores, _shard_item_scores_task, tasks
        )
        if self._binding(out.shape[1]):
            for shard, t_s, scores in zip(
                self.plan.shards, self._shard_ts(out.shape[1]), pieces
            ):
                out[shard.item_ids, :t_s] += scores
            return out
        return merge_scores(
            out,
            [
                (shard.item_ids, scores)
                for shard, scores in zip(self.plan.shards, pieces)
            ],
        )

    # ------------------------------------------------------------ statistics

    def cell_statistics(
        self, phi: np.ndarray, kappa: np.ndarray, executor: Optional[Executor] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Eq. 6 sufficient statistics merged over shards (fixed order)."""
        executor = executor or _SERIAL
        t, m = phi.shape[1], kappa.shape[1]
        if not self.plan.shards:
            dtype = np.result_type(phi, kappa)
            return (
                np.zeros((t, m, self.n_labels), dtype=dtype),
                np.zeros((t, m), dtype=dtype),
            )
        tasks = [
            (shard.index, phi_rows, kappa_rows)
            for shard, phi_rows, kappa_rows in zip(
                self.plan.shards, self._item_rows(phi), self._worker_rows(kappa)
            )
        ]
        pieces = self._fan_out(
            executor, _resident_cell_statistics, _shard_cell_statistics_task, tasks
        )
        if self._binding(t):
            # Truncated shards return (T_s, M, C) partials; scatter each
            # into the prefix rows of the global statistics.  Clusters no
            # shard reaches keep zero counts (λ stays at its prior).
            dtype = np.result_type(phi, kappa)
            counts = np.zeros((t, m, self.n_labels), dtype=dtype)
            mass = np.zeros((t, m), dtype=dtype)
            for t_s, (piece_counts, piece_mass) in zip(self._shard_ts(t), pieces):
                counts[:t_s] += piece_counts
                mass[:t_s] += piece_mass
            return counts, mass
        return merge_cell_statistics(pieces)

    def data_elbo(
        self,
        phi: np.ndarray,
        kappa: np.ndarray,
        e_log_psi: np.ndarray,
        executor: Optional[Executor] = None,
    ) -> float:
        """``E[ln p(x | z, l, ψ)]`` summed over shards in fixed order."""
        executor = executor or _SERIAL
        e_log_psi = np.ascontiguousarray(e_log_psi, dtype=self.dtype)
        tasks = [
            (shard.index, phi_rows, kappa_rows, psi)
            for shard, phi_rows, kappa_rows, psi in zip(
                self.plan.shards,
                self._item_rows(phi),
                self._worker_rows(kappa),
                self._psi_for(e_log_psi),
            )
        ]
        return float(
            sum(self._fan_out(executor, _resident_data_elbo, _shard_data_elbo_task, tasks))
        )


# -------------------------------------------------------------------- factory


def build_sweep_kernel(
    config,
    items: np.ndarray,
    workers: np.ndarray,
    indicators: np.ndarray,
    *,
    n_items: int,
    n_workers: int,
    executor: Optional[Executor] = None,
    n_shards: Optional[int] = None,
):
    """Kernel-backend selection seam for both engines.

    The concrete backend comes from
    :meth:`~repro.core.config.CPAConfig.resolve_backend` on the matrix's
    answer count and the executor's lane count — explicit ``"fused"`` /
    ``"sharded"`` selections pass through, ``"auto"`` applies the
    measured volume thresholds of :mod:`repro.core.kernels`.  A sharded
    selection caps K at the matrix's *answered* item count (an
    item-partitioned plan cannot realise more shards; callers read the
    realised count back from ``kernel.n_shards``), honours
    ``config.resident_shards`` (lane-resident vs ship-per-task
    transport), and engages shard-local truncation adaptation when
    :meth:`~repro.core.config.CPAConfig.resolve_adaptive_truncation`
    says the matrix is wide/sparse enough (or the knob forces it).
    ``CPAConfig`` already validated the backend name.

    An explicit ``n_shards`` overrides the resolved count and forces the
    sharded backend — the shard re-planning path
    (:meth:`~repro.core.inference.VariationalInference.replan_shards`)
    uses it to rebuild the plan for a changed lane count without
    re-resolving (and possibly flipping) the backend choice mid-run.
    """
    dtype = config.resolve_dtype()
    degree = getattr(executor, "degree", 1) if executor is not None else 1
    items_array = np.asarray(items)
    n_answers = int(items_array.size)
    if n_shards is not None:
        if n_shards < 1:
            raise ValidationError("n_shards override must be at least 1")
        backend = "sharded"
    else:
        backend, n_shards = config.resolve_backend(n_answers, degree)
    if backend == "sharded":
        if n_shards > 1:
            # Cap the request by the answered-item count so requested and
            # realised K agree (the plan would drop the empty ranges
            # anyway, but a capped request is what records report); K = 1
            # needs no cap, so skip the O(N log N) unique there.
            answered = int(np.unique(items_array).size)
            n_shards = max(1, min(n_shards, max(1, answered)))
        return ShardedSweepKernel(
            items,
            workers,
            indicators,
            n_items=n_items,
            n_workers=n_workers,
            dtype=dtype,
            n_shards=n_shards,
            resident=config.resident_shards,
            shard_truncation=(
                config.shard_truncation
                if config.resolve_adaptive_truncation(n_items, n_answers)
                else None
            ),
        )
    return SweepKernel(
        items,
        workers,
        indicators,
        n_items=n_items,
        n_workers=n_workers,
        dtype=dtype,
    )
