"""Natural-gradient targets for stochastic variational inference.

Paper Eqs. 9–15 give per-worker natural gradients of the ELBO; summed over
a batch ``U_b`` and scaled by ``U / U_b`` (the update rule of Eqs. 18–20),
every global parameter's SVI step takes the standard convex-combination
form

``θ ← (1 - ω_b) θ + ω_b θ̂``,

where ``θ̂`` is the value the batch *alone* would imply for the full
dataset (prior + scaled batch statistics).  This module computes those
targets; :mod:`repro.core.svi` applies the steps.  Item-side statistics are
scaled by ``I / |N_b|`` (the batch's item coverage) — the analogue of the
worker-side ``U / U_b`` scaling, required for unbiased stochastic gradients
when batches cover only part of the item set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import CPAConfig
from repro.errors import ValidationError


@dataclass(frozen=True)
class GlobalTargets:
    """Scaled full-dataset estimates implied by one batch."""

    lam: np.ndarray  # (T, M, C)
    cell_mass: np.ndarray  # (T, M)
    rho: np.ndarray  # (M-1, 2)
    ups: np.ndarray  # (T-1, 2)
    zeta: np.ndarray  # (T, C, 2)


def stick_targets(mass: np.ndarray, concentration: float) -> np.ndarray:
    """Beta-parameter targets from (scaled) component masses (Eqs. 11-14).

    ``target_k1 = 1 + mass_k`` and ``target_k2 = concentration +
    Σ_{l>k} mass_l`` for the first ``K-1`` sticks.
    """
    tail = np.concatenate([np.cumsum(mass[::-1])[::-1][1:], [0.0]])
    out = np.empty((mass.shape[0] - 1, 2))
    out[:, 0] = 1.0 + mass[:-1]
    out[:, 1] = concentration + tail[:-1]
    return out


def compute_global_targets(
    config: CPAConfig,
    *,
    batch_counts: np.ndarray,
    batch_mass: np.ndarray,
    batch_kappa_mass: np.ndarray,
    batch_phi_mass: np.ndarray,
    batch_zeta_counts: np.ndarray,
    worker_scale: float,
    item_scale: float,
) -> GlobalTargets:
    """Assemble all global targets from batch sufficient statistics.

    Parameters
    ----------
    batch_counts:
        ``(T, M, C)`` — ``Σ_{(i,u) ∈ b} ϕ_it κ_um x_iuc`` (Eq. 9's data term).
    batch_mass:
        ``(T, M)`` — ``Σ_{(i,u) ∈ b} ϕ_it κ_um`` (answer mass per cell).
    batch_kappa_mass:
        ``(M,)`` — ``Σ_{u ∈ U_b} κ_um`` (Eqs. 11/12's data term).
    batch_phi_mass:
        ``(T,)`` — ``Σ_{i ∈ N_b} ϕ_it`` (Eqs. 13/14's data term).
    batch_zeta_counts:
        ``(T, C, 2)`` — observed-truth presence/absence counts in the batch
        (Eq. 10's data term, per-label Beta form).
    worker_scale / item_scale:
        ``U / U_b`` and ``I / |N_b|`` respectively.
    """
    lam = config.gamma0 + worker_scale * batch_counts
    cell_mass = worker_scale * batch_mass
    rho = stick_targets(worker_scale * batch_kappa_mass, config.alpha)
    ups = stick_targets(item_scale * batch_phi_mass, config.epsilon)
    zeta = config.eta0 + item_scale * batch_zeta_counts
    return GlobalTargets(lam=lam, cell_mass=cell_mass, rho=rho, ups=ups, zeta=zeta)


def learning_rate(batch_index: int, forgetting_rate: float) -> float:
    """``ω_b = (1 + b)^-r`` (paper §4.1).

    ``batch_index`` is 1-based; any ``r ∈ (0.5, 1]`` satisfies the
    Robbins-Monro conditions ``Σω = ∞``, ``Σω² < ∞``.
    """
    if batch_index < 1:
        raise ValidationError("batch_index is 1-based")
    return float((1.0 + batch_index) ** (-forgetting_rate))


def interpolate(old: np.ndarray, target: np.ndarray, rate: float) -> np.ndarray:
    """The SVI step ``(1 - ω) old + ω target`` (Eqs. 18-20)."""
    return (1.0 - rate) * old + rate * target
