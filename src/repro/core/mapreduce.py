"""MapReduce-style scale-out for inference and prediction (paper Alg. 3).

:class:`~repro.core.svi.StochasticInference` already factors each batch
into a MAP phase over worker chunks and a central REDUCE; this module
provides the deployment-facing pieces:

* :func:`parallel_inference` — an SVI engine bound to a process/thread pool
  of a chosen degree (the paper's ``P``);
* :func:`parallel_predict` — label-set instantiation fanned out over item
  chunks ("the instantiation of labels is independent for all items and
  therefore can be done in parallel", §4.2);
* :func:`speedup_model` — the analytical runtime model of §4.3
  (``(T1 / (B·P) + T2) · C2 · B``), used by the Fig-7 experiment to put
  measured numbers next to the paper's expectation.
"""

from __future__ import annotations

import functools
from typing import Dict, FrozenSet, Optional, Sequence

import numpy as np

from repro.core.config import CPAConfig
from repro.core.consensus import ClusterConsensus
from repro.core.prediction import greedy_map_labels, item_cluster_log_weights
from repro.core.state import CPAState
from repro.core.svi import StochasticInference
from repro.data.answers import AnswerMatrix
from repro.data.dataset import GroundTruth
from repro.errors import ValidationError
from repro.utils.parallel import Executor, make_executor
from repro.utils.random import Seed


def parallel_inference(
    config: CPAConfig,
    n_items: int,
    n_workers: int,
    n_labels: int,
    *,
    degree: int,
    backend: str = "process",
    kernel_backend: Optional[str] = None,
    n_shards: Optional[int] = None,
    truth: Optional[GroundTruth] = None,
    seed: Seed = None,
) -> StochasticInference:
    """An SVI engine whose MAP phase runs on ``degree`` parallel lanes.

    ``backend`` is ``'process'`` (true multicore, Alg. 3's setting) or
    ``'thread'`` — an unknown kind raises
    :class:`~repro.errors.ConfigurationError`.  ``kernel_backend`` /
    ``n_shards`` override ``config.backend`` / ``config.n_shards`` so the
    per-batch contractions themselves run sharded (DESIGN.md §6 "Sharded
    execution"); left at ``None`` the config's selection stands.  The
    caller owns the engine's executor lifetime; use :func:`close_engine`
    or ``engine.executor.close()`` when done.
    """
    if degree <= 0:
        raise ValidationError("degree must be positive")
    overrides = {}
    if kernel_backend is not None:
        overrides["backend"] = kernel_backend
    if n_shards is not None:
        overrides["n_shards"] = n_shards
    if overrides:
        config = config.with_overrides(**overrides)
    executor: Executor = make_executor(backend, degree)
    return StochasticInference(
        config,
        n_items,
        n_workers,
        n_labels,
        truth=truth,
        seed=seed,
        executor=executor,
    )


def close_engine(engine: StochasticInference) -> None:
    """Release the engine's executor resources (idempotent)."""
    engine.executor.close()


def _predict_item_chunk(
    chunk: range,
    *,
    log_weights: np.ndarray,
    inclusion: np.ndarray,
    item_ids: np.ndarray,
    max_labels: int,
) -> list[tuple[int, FrozenSet[int]]]:
    """Greedy MAP search for a contiguous chunk of items (picklable)."""
    out: list[tuple[int, FrozenSet[int]]] = []
    for row in chunk:
        detail = greedy_map_labels(
            log_weights[row], inclusion, max_labels=max_labels
        )
        out.append((int(item_ids[row]), detail.labels))
    return out


def parallel_predict(
    state: CPAState,
    consensus: ClusterConsensus,
    answers: AnswerMatrix,
    config: CPAConfig,
    *,
    executor: Executor,
    items: Optional[Sequence[int]] = None,
) -> Dict[int, FrozenSet[int]]:
    """Predict label sets for ``items`` with the search fanned out.

    The cluster-weight computation (which touches the shared answer matrix)
    runs once in the caller; only the embarrassingly-parallel per-item
    greedy searches are distributed.
    """
    if items is None:
        items = answers.answered_items()
    item_ids = np.asarray(list(items), dtype=int)
    log_weights = item_cluster_log_weights(state, consensus, answers, item_ids.tolist())

    map_fn = functools.partial(
        _predict_item_chunk,
        log_weights=log_weights,
        inclusion=consensus.inclusion,
        item_ids=item_ids,
        max_labels=config.max_predicted_labels,
    )
    pieces = executor.map_chunks(map_fn, item_ids.size)
    result: Dict[int, FrozenSet[int]] = {}
    for piece in pieces:
        result.update(piece)
    return result


def speedup_model(
    t_local: float,
    t_global: float,
    *,
    n_batches: int,
    degree: int,
    iterations_offline: int,
    iterations_online: int = 1,
) -> tuple[float, float]:
    """The §4.3 analytical runtimes ``(offline, online-parallel)``.

    Offline: ``(T1 + T2) · C1``.  Online with ``B`` batches on ``P``
    processors: ``(T1 / (B·P) + T2) · C2 · B`` where ``C2`` is the
    per-batch iteration count (≈ 1 for SVI).  Useful for sanity-checking
    measured Fig-7 curves against the paper's model.
    """
    if min(t_local, t_global) < 0 or min(n_batches, degree) <= 0:
        raise ValidationError("runtime components must be non-negative, counts positive")
    offline = (t_local + t_global) * iterations_offline
    online = (t_local / (n_batches * degree) + t_global) * iterations_online * n_batches
    return offline, online
