"""Replica-fleet serving: one writer, N read replicas, a staleness-aware
router (DESIGN.md §6 "Replica fleet").

:mod:`repro.serve` keeps a single CPA posterior alive; this module scales
the *read* side out.  The expensive part of consensus serving — folding
the answer stream into the posterior — stays on one writer daemon, while
item-consensus / label-probability queries fan out over N read replicas
that are refreshed from the writer's snapshots over the content-addressed
chunk store (:func:`repro.serve.ship_checkpoint`), so a refresh after a
few SVI steps costs chunk-*delta* bytes, not a full posterior.  Queries
are embarrassingly parallel against a fixed snapshot, which is what makes
consensus tractable at crowd scale (PAPERS.md, Mossel & Tamuz).

Three pieces:

* :class:`FleetManager` — owns the writer :class:`~repro.serve.ConsensusServer`
  plus N read replicas (in-process threads or ``python -m repro.serve
  --read-only`` subprocesses), refreshes every replica via
  :func:`~repro.serve.ship_checkpoint` chunk deltas, and runs a background
  snapshot thread on a timer (``refresh_interval``) — the periodic
  snapshot that PR 7's on-demand ``snapshot`` op lacked.  Only this
  refresh path calls :meth:`~repro.serve.ConsensusEngine.mark_snapshot`,
  so the writer's ``snapshot_age_*`` metrics measure real durability.
* :class:`FleetRouter` — client-side routing policy over the replica set:
  ``round_robin`` or ``least_staleness`` (per-replica ``answers_behind``
  and ``snapshot_age_steps``, tracked from ``status`` replies).  Replica
  failover reuses the live → suspect → excluded
  :class:`~repro.utils.transport.LaneHealth` machine of the PR 6 compute
  lanes: a dead or hung replica is excluded after its reconnect budget
  and its queries re-route — every replica serves the same shipped
  snapshot, so the re-routed answer is bitwise identical.
* :class:`FleetClient` — the user-facing client: ``ingest``/``step`` are
  pinned to the writer, ``predict``/``label_probabilities``/``status``
  are routed to replicas through the router (optionally falling back to
  the writer when every replica is gone).

No new wire ops: the fleet speaks the existing serving protocol
(:mod:`repro.serve` docstring), replicas simply refuse ``ingest``/``step``
(``read_only=True``).

Run a whole fleet with ``python -m repro.fleet --items I --workers U
--labels C --replicas N`` (see ``--help``); the ``--port-file`` lists the
writer address on the first line and one replica address per further line.

One client instance (router included) serves one thread; give each query
thread its own :class:`FleetClient` — channels are not shareable.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import CPAConfig
from repro.errors import ConfigurationError, ReproError, TransportError
from repro.serve import (
    CHECKPOINT_KEY,
    DEFAULT_CHECKPOINT_CHUNK_BYTES,
    ConsensusEngine,
    ConsensusServer,
    ServeClient,
    ShipReport,
    ship_checkpoint,
)
from repro.utils.random import Seed
from repro.utils.transport import (
    Channel,
    LaneHealth,
    LaneTimeout,
    connect,
    dumps,
    format_address,
    parse_address,
)

#: routing policies the router accepts.
POLICIES = ("round_robin", "least_staleness")

#: replica hosting modes the manager accepts.
REPLICA_MODES = ("thread", "process")


# ---------------------------------------------------------------- manager


class _Replica:
    """Manager-side record of one read replica."""

    __slots__ = (
        "index",
        "address",
        "host",
        "port",
        "mode",
        "server",
        "process",
        "port_dir",
        "channel",
        "health",
        "last_report",
    )

    def __init__(self, index: int, mode: str, reconnects: int) -> None:
        self.index = index
        self.address = ""
        self.host = ""
        self.port = 0
        self.mode = mode
        self.server: Optional[ConsensusServer] = None  # thread mode
        self.process: Optional[subprocess.Popen] = None  # process mode
        self.port_dir: Optional[str] = None
        self.channel: Optional[Channel] = None
        self.health = LaneHealth(reconnects)
        self.last_report: Optional[ShipReport] = None


class FleetManager:
    """One writer + N read replicas, refreshed over chunk deltas.

    The writer is a normal :class:`~repro.serve.ConsensusServer` (ingest,
    fold, query) served on an in-process thread with its engine owned by
    the manager; replicas are ``read_only`` daemons, either in-process
    threads (``replica_mode="thread"`` — cheap, shares the GIL; the test
    default) or ``python -m repro.serve --read-only`` subprocesses
    (``"process"`` — real CPU parallelism for read scaling; the benchmark
    default).

    ``refresh_interval > 0`` starts the background snapshot thread: every
    interval the writer's snapshot is shipped to all live replicas (and
    optionally written to ``snapshot_path``), replacing PR 7's
    on-demand-only snapshots.  :meth:`refresh_replicas` runs the same
    path on demand — tests and the CLI call it directly.

    Replicas are provisioned at the writer's construction sizes.
    Thread-mode replicas are grown automatically when the writer's index
    spaces grow mid-stream; process-mode replicas cannot be (the snapshot
    would be refused by their restore guard), so size the fleet for the
    stream, or accept that an outgrown process replica is excluded at its
    next refresh.  Process-mode replicas rebuild their ``CPAConfig`` from
    CLI-expressible fields (seed, dtype, step size); use thread mode when
    bitwise parity under a non-default config matters.
    """

    def __init__(
        self,
        config: CPAConfig,
        n_items: int,
        n_workers: int,
        n_labels: int,
        *,
        n_replicas: int = 2,
        seed: Seed = 0,
        total_answers_hint: Optional[int] = None,
        replica_mode: str = "thread",
        host: str = "127.0.0.1",
        auto_step: bool = True,
        refresh_interval: float = 0.0,
        snapshot_path: Optional[str] = None,
        reconnects: int = 1,
        request_timeout: float = 30.0,
        chunk_bytes: int = DEFAULT_CHECKPOINT_CHUNK_BYTES,
        payload_cap: int = 8,
        chunk_cache_bytes: int = 64 << 20,
    ) -> None:
        if replica_mode not in REPLICA_MODES:
            raise ConfigurationError(
                f"unknown replica_mode {replica_mode!r}; choose from "
                f"{REPLICA_MODES}"
            )
        if n_replicas < 0:
            raise ConfigurationError(f"n_replicas must be >= 0, got {n_replicas}")
        self.config = config
        self.n_items = int(n_items)
        self.n_workers = int(n_workers)
        self.n_labels = int(n_labels)
        self.seed = seed
        self.total_answers_hint = total_answers_hint
        self.replica_mode = replica_mode
        self.host = host
        self.auto_step = auto_step
        self.refresh_interval = float(refresh_interval)
        self.snapshot_path = snapshot_path
        self._reconnects = int(reconnects)
        self._request_timeout = float(request_timeout)
        self._chunk_bytes = int(chunk_bytes)
        self._payload_cap = int(payload_cap)
        self._chunk_cache_bytes = int(chunk_cache_bytes)
        self.engine = ConsensusEngine(
            config,
            n_items,
            n_workers,
            n_labels,
            seed=seed,
            total_answers_hint=total_answers_hint,
        )
        self._writer_server: Optional[ConsensusServer] = None
        self._replicas: List[_Replica] = [
            _Replica(i, replica_mode, self._reconnects) for i in range(n_replicas)
        ]
        self._lock = threading.Lock()
        # Serializes the slow lifecycle paths (start/refresh/close) so
        # they never overlap, without holding ``_lock`` — the state lock
        # is only ever taken for brief snapshot/commit sections, never
        # across subprocess spawns, socket I/O, or process waits.
        self._lifecycle_serial = threading.Lock()
        self._stop = threading.Event()
        self._refresh_thread: Optional[threading.Thread] = None
        self._refresh_count = 0
        self._started = False
        self._closed = False
        self.last_errors: Dict[str, str] = {}

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "FleetManager":
        """Bind the writer, launch every replica, arm the refresh timer."""
        with self._lifecycle_serial:
            return self._start_once()

    def _start_once(self) -> "FleetManager":
        """The body of :meth:`start`, already serialized.

        The writer bind and every replica launch (subprocess spawn +
        port-file poll for process replicas) run *outside* ``_lock``;
        the state lock is only taken to publish results.  A failed
        launch leaves ``_started`` false with the writer already
        published, so :meth:`close` can clean up the partial fleet.
        """
        with self._lock:
            if self._started:
                return self
        writer = ConsensusServer(
            self.engine,
            self.host,
            0,
            auto_step=self.auto_step,
            payload_cap=self._payload_cap,
            chunk_cache_bytes=self._chunk_cache_bytes,
        ).serve_in_thread()
        with self._lock:
            self._writer_server = writer
        for replica in self._replicas:
            self._launch_replica(replica)
        with self._lock:
            self._started = True
            if self.refresh_interval > 0:
                self._refresh_thread = threading.Thread(
                    target=self._refresh_loop,
                    name="fleet-refresh",
                    daemon=True,
                )
                self._refresh_thread.start()
        return self

    def _launch_replica(self, replica: _Replica) -> None:
        if replica.mode == "thread":
            engine = ConsensusEngine(
                self.config,
                self.n_items,
                self.n_workers,
                self.n_labels,
                seed=self.seed,
                total_answers_hint=self.total_answers_hint,
            )
            replica.server = ConsensusServer(
                engine,
                self.host,
                0,
                auto_step=False,
                read_only=True,
                payload_cap=self._payload_cap,
                chunk_cache_bytes=self._chunk_cache_bytes,
            ).serve_in_thread()
            replica.address = replica.server.address
        else:
            replica.port_dir = tempfile.mkdtemp(prefix="repro-fleet-")
            port_file = os.path.join(replica.port_dir, "port")
            env = dict(os.environ)
            src = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
            env["PYTHONPATH"] = src + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            command = [
                sys.executable,
                "-m",
                "repro.serve",
                "--listen",
                f"{self.host}:0",
                "--items",
                str(self.n_items),
                "--workers",
                str(self.n_workers),
                "--labels",
                str(self.n_labels),
                "--seed",
                str(int(self.seed) if self.seed is not None else 0),
                "--dtype",
                str(self.config.dtype),
                "--step-answers",
                str(self.config.svi_batch_answers),
                "--no-auto-step",
                "--read-only",
                "--port-file",
                port_file,
                "--payload-cap",
                str(self._payload_cap),
            ]
            if self.total_answers_hint is not None:
                command += ["--total-answers-hint", str(self.total_answers_hint)]
            replica.process = subprocess.Popen(
                command,
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if os.path.exists(port_file) and os.path.getsize(port_file) > 0:
                    break
                if replica.process.poll() is not None:
                    raise TransportError(
                        f"replica daemon #{replica.index} exited during "
                        f"startup (code {replica.process.returncode})"
                    )
                time.sleep(0.02)
            else:
                replica.process.kill()
                raise TransportError(
                    f"replica daemon #{replica.index} did not announce its "
                    "port in time"
                )
            with open(port_file, "r", encoding="utf-8") as handle:
                replica.address = handle.read().strip()
        replica.host, replica.port = parse_address(replica.address)
        replica.address = format_address(replica.host, replica.port)

    def close(self) -> None:
        """Stop the refresh thread, every replica, and the writer.

        The refresh thread is joined *before* taking
        ``_lifecycle_serial`` (it may be inside a serialized refresh);
        the teardown itself — process terminate/wait, server and channel
        closes — then runs under the serial mutex but outside ``_lock``,
        so status queries keep answering while replicas drain.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        if self._refresh_thread is not None:
            self._refresh_thread.join(timeout=30.0)
        with self._lifecycle_serial:
            self._teardown()

    def _teardown(self) -> None:
        with self._lock:
            replicas = list(self._replicas)
            writer = self._writer_server
        for replica in replicas:
            if replica.channel is not None:
                replica.channel.close()
                replica.channel = None
            if replica.server is not None:
                replica.server.close()
            if replica.process is not None and replica.process.poll() is None:
                replica.process.terminate()
                with contextlib.suppress(subprocess.TimeoutExpired):
                    replica.process.wait(timeout=10.0)
                if replica.process.poll() is None:
                    replica.process.kill()
                    replica.process.wait(timeout=10.0)
            if replica.port_dir is not None:
                with contextlib.suppress(OSError):
                    for name in os.listdir(replica.port_dir):
                        os.unlink(os.path.join(replica.port_dir, name))
                    os.rmdir(replica.port_dir)
                replica.port_dir = None
        if writer is not None:
            writer.close()

    def __enter__(self) -> "FleetManager":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ addresses

    @property
    def writer_address(self) -> str:
        if self._writer_server is None:
            raise ConfigurationError("fleet is not started; call start() first")
        return self._writer_server.address

    def replica_addresses(self, live_only: bool = False) -> List[str]:
        with self._lock:
            return [
                replica.address
                for replica in self._replicas
                if replica.address
                and (not live_only or not replica.health.excluded)
            ]

    def client(self, **kwargs: Any) -> "FleetClient":
        """A fresh :class:`FleetClient` bound to this fleet's addresses."""
        return FleetClient(
            self.writer_address, self.replica_addresses(live_only=True), **kwargs
        )

    # -------------------------------------------------------------- refresh

    def _refresh_loop(self) -> None:
        """Background snapshot timer: refresh every ``refresh_interval``
        seconds until :meth:`close`."""
        while not self._stop.wait(self.refresh_interval):
            try:
                self.refresh_replicas()
            except ReproError:
                # every replica failing in one round must not kill the
                # timer — the writer keeps serving and the next round
                # retries whatever reconnect budget remains.
                continue

    def refresh_replicas(self) -> Dict[str, ShipReport]:
        """Snapshot the writer and ship the chunk delta to live replicas.

        Returns per-address :class:`~repro.serve.ShipReport` accounting.
        The writer's snapshot-age clock is reset (``mark_snapshot``) only
        when the snapshot was durably captured somewhere — shipped to at
        least one replica or written to ``snapshot_path``.  A replica
        whose ship fails beyond its reconnect budget, or that refuses the
        snapshot (outgrown process replica), is excluded and recorded in
        ``last_errors``.
        """
        with self._lifecycle_serial:
            return self._refresh_once()

    def _refresh_once(self) -> Dict[str, ShipReport]:
        """One serialized refresh round: snapshot under ``_lock``, ship
        over the network with no lock held, commit outcomes under
        ``_lock``."""
        with self._lock:
            if not self._started or self._closed:
                raise ConfigurationError(
                    "fleet is not running; call start() before refresh_replicas()"
                )
            payload = self.engine.snapshot_payload()
            blob = dumps(payload)
            targets = [
                replica
                for replica in self._replicas
                if not replica.health.excluded
            ]
        captured = False
        if self.snapshot_path:
            tmp_path = self.snapshot_path + ".tmp"
            with open(tmp_path, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, self.snapshot_path)
            captured = True
        # (replica, report, transient error, permanent error) per target
        outcomes = []
        for replica in targets:
            try:
                self._grow_thread_replica(replica)
                report = self._ship(replica, blob)
            except TransportError as exc:
                # _ship exhausted the reconnect budget: transient
                outcomes.append((replica, None, exc, None))
            except ReproError as exc:
                # the replica refused the snapshot (e.g. outgrown
                # process replica): permanent, take it out of rotation
                outcomes.append((replica, None, None, exc))
            else:
                outcomes.append((replica, report, None, None))
        reports: Dict[str, ShipReport] = {}
        with self._lock:
            for replica, report, transient, permanent in outcomes:
                if transient is not None:
                    self.last_errors[replica.address] = str(transient)
                elif permanent is not None:
                    replica.health.exclude()
                    self.last_errors[replica.address] = str(permanent)
                else:
                    replica.last_report = report
                    replica.health.recover()
                    reports[replica.address] = report
                    captured = True
            if captured:
                self.engine.mark_snapshot()
            self._refresh_count += 1
        return reports

    def _grow_thread_replica(self, replica: _Replica) -> None:
        """Match a thread-mode replica's index spaces to the writer's."""
        if replica.server is None:
            return
        engine = replica.server.engine
        writer = self.engine.engine
        if (
            writer.n_items > engine.engine.n_items
            or writer.n_workers > engine.engine.n_workers
            or writer.n_labels > engine.engine.n_labels
        ):
            engine.grow(
                max(writer.n_items, engine.engine.n_items),
                max(writer.n_workers, engine.engine.n_workers),
                max(writer.n_labels, engine.engine.n_labels),
            )

    def _ship(self, replica: _Replica, blob: bytes) -> ShipReport:
        """Ship ``blob`` to one replica, reconnecting within its budget.

        Each failed attempt consumes one reconnect; when the budget is
        dry the replica is excluded and the :class:`TransportError`
        propagates to :meth:`refresh_replicas`.
        """
        while True:
            try:
                if replica.channel is None:
                    replica.channel = connect(
                        replica.host, replica.port, timeout=self._request_timeout
                    )
                return ship_checkpoint(
                    replica.channel,
                    blob,
                    chunk_bytes=self._chunk_bytes,
                    timeout=self._request_timeout,
                )
            except TransportError:
                if replica.channel is not None:
                    replica.channel.close()
                    replica.channel = None
                if not replica.health.consume_reconnect():
                    replica.health.exclude()
                    raise

    # ------------------------------------------------------------ telemetry

    def status(self) -> Dict[str, Any]:
        """Writer metrics plus per-replica health and last refresh."""
        with self._lock:
            replicas = []
            for replica in self._replicas:
                report = replica.last_report
                replicas.append(
                    {
                        "address": replica.address,
                        "mode": replica.mode,
                        "health": replica.health.state,
                        "last_delta_ratio": (
                            report.delta_ratio if report is not None else None
                        ),
                        "last_shipped_bytes": (
                            report.shipped_bytes if report is not None else None
                        ),
                    }
                )
            return {
                "writer": {
                    "address": (
                        self._writer_server.address
                        if self._writer_server is not None
                        else None
                    ),
                    **self.engine.metrics(),
                },
                "replicas": replicas,
                "refresh_count": self._refresh_count,
                "refresh_interval": self.refresh_interval,
                "last_errors": dict(self.last_errors),
            }


# ----------------------------------------------------------------- router


class _ReplicaSlot:
    """Router-side record of one read replica."""

    __slots__ = (
        "index",
        "address",
        "client",
        "health",
        "answers_behind",
        "snapshot_age_steps",
        "status_at",
    )

    def __init__(self, index: int, address: str, reconnects: int) -> None:
        self.index = index
        host, port = parse_address(address)
        self.address = format_address(host, port)
        self.client: Optional[ServeClient] = None
        self.health = LaneHealth(reconnects)
        self.answers_behind: Optional[int] = None
        self.snapshot_age_steps: Optional[int] = None
        self.status_at = 0.0


class FleetRouter:
    """Staleness-aware routing policy over the replica set.

    Pure policy plus per-replica health: connections are opened lazily on
    first use, so the policy itself is unit-testable without sockets.
    Two policies:

    * ``round_robin`` — cycle over non-excluded replicas in address
      order; ignores staleness.
    * ``least_staleness`` — prefer the replica with the smallest
      ``(answers_behind, snapshot_age_steps)`` as last reported by its
      ``status`` reply (unreported replicas sort last); ties break on
      registration order, so the choice is deterministic.

    Failure handling reuses the compute-lane
    :class:`~repro.utils.transport.LaneHealth` machine: a timed-out
    replica turns *suspect* and receives no queries until
    ``suspect_grace`` elapses, after which :meth:`choose` revives it
    through a fresh connection (consuming reconnect budget) or excludes
    it; a connection failure is a reconnect-or-exclude immediately.
    Unlike the compute lanes there is nothing to harvest from a hung
    replica — queries are stateless reads and simply re-route.
    """

    def __init__(
        self,
        replica_addresses: Sequence[str],
        *,
        policy: str = "least_staleness",
        timeout: Optional[float] = 30.0,
        reconnects: int = 1,
        suspect_grace: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown routing policy {policy!r}; choose from {POLICIES}"
            )
        self.policy = policy
        self.timeout = timeout
        self.suspect_grace = float(suspect_grace)
        self._clock = clock
        self._slots = [
            _ReplicaSlot(index, address, reconnects)
            for index, address in enumerate(replica_addresses)
        ]
        self._rr_next = 0

    # ------------------------------------------------------------- plumbing

    def _slot(self, address: str) -> _ReplicaSlot:
        for slot in self._slots:
            if slot.address == address:
                return slot
        raise ConfigurationError(
            f"no replica {address!r} in this router; replicas: "
            f"{[slot.address for slot in self._slots]}"
        )

    def client_for(self, address: str) -> ServeClient:
        """The (lazily connected) client of one replica; may raise
        :class:`~repro.errors.TransportError` on connect."""
        slot = self._slot(address)
        if slot.client is None:
            slot.client = ServeClient(slot.address, timeout=self.timeout)
        return slot.client

    def _drop_client(self, slot: _ReplicaSlot) -> None:
        if slot.client is not None:
            slot.client.close()
            slot.client = None

    # -------------------------------------------------------------- health

    def mark_suspect(self, address: str) -> None:
        """A query deadline expired: shun the replica for the grace
        window, then revive-or-exclude on the next :meth:`choose`."""
        slot = self._slot(address)
        slot.health.mark_suspect(self._clock() + self.suspect_grace)
        self._drop_client(slot)

    def fail(self, address: str) -> None:
        """A connection-level failure: reconnect now or exclude."""
        slot = self._slot(address)
        self._drop_client(slot)
        self._revive(slot)

    def _revive(self, slot: _ReplicaSlot) -> None:
        """Try to bring a slot back to *live* through a fresh connection,
        consuming reconnect budget; exclude when the budget is dry."""
        while slot.health.consume_reconnect():
            try:
                slot.client = ServeClient(slot.address, timeout=self.timeout)
            except TransportError:
                continue
            slot.health.recover()
            return
        slot.health.exclude()

    def _due_suspects(self) -> None:
        now = self._clock()
        for slot in self._slots:
            if slot.health.suspect and now >= slot.health.suspect_deadline:
                self._revive(slot)

    # -------------------------------------------------------------- policy

    def note_status(self, address: str, metrics: Dict[str, Any]) -> None:
        """Record one replica's ``status`` reply for the staleness policy."""
        slot = self._slot(address)
        slot.answers_behind = int(metrics.get("answers_behind", 0))
        slot.snapshot_age_steps = int(metrics.get("snapshot_age_steps", 0))
        slot.status_at = self._clock()

    def poll_status(self) -> Dict[str, Dict[str, Any]]:
        """Fetch ``status`` from every live replica and record it."""
        statuses: Dict[str, Dict[str, Any]] = {}
        for slot in list(self._slots):
            if not slot.health.live:
                continue
            try:
                metrics = self.client_for(slot.address).status()
            except LaneTimeout:
                self.mark_suspect(slot.address)
                continue
            except TransportError:
                self.fail(slot.address)
                continue
            self.note_status(slot.address, metrics)
            statuses[slot.address] = metrics
        return statuses

    def choose(self) -> Optional[str]:
        """The replica address the next query should go to (``None`` when
        no replica is usable)."""
        self._due_suspects()
        live = [slot for slot in self._slots if slot.health.live]
        if not live:
            return None
        if self.policy == "round_robin":
            slot = live[self._rr_next % len(live)]
            self._rr_next += 1
            return slot.address
        slot = min(
            live,
            key=lambda s: (
                s.answers_behind if s.answers_behind is not None else sys.maxsize,
                s.snapshot_age_steps
                if s.snapshot_age_steps is not None
                else sys.maxsize,
                s.index,
            ),
        )
        return slot.address

    def states(self) -> Dict[str, str]:
        """``{address: "live" | "suspect" | "excluded"}`` for telemetry."""
        return {slot.address: slot.health.state for slot in self._slots}

    def close(self) -> None:
        for slot in self._slots:
            self._drop_client(slot)


# ----------------------------------------------------------------- client


class FleetClient:
    """Fleet-facing client: writes to the writer, reads via the router.

    ``ingest``/``step`` go to the writer (the single process folding the
    stream); ``predict``/``label_probabilities`` are routed to a replica
    by the router's policy, failing over — with answers bitwise identical,
    since every replica serves the same shipped snapshot — until a
    replica answers.  When every replica is excluded the client falls
    back to querying the writer directly (``fallback_to_writer=False``
    raises :class:`~repro.errors.TransportError` instead, for callers
    that must never load the writer).

    ``status()`` aggregates the writer's metrics, every replica's
    metrics (which also feeds the ``least_staleness`` policy), and the
    router's health states.  Not thread-safe — one instance per thread.
    """

    def __init__(
        self,
        writer_address: str,
        replica_addresses: Sequence[str],
        *,
        policy: str = "least_staleness",
        timeout: Optional[float] = 30.0,
        reconnects: int = 1,
        suspect_grace: float = 2.0,
        status_max_age: float = 1.0,
        fallback_to_writer: bool = True,
    ) -> None:
        self.router = FleetRouter(
            replica_addresses,
            policy=policy,
            timeout=timeout,
            reconnects=reconnects,
            suspect_grace=suspect_grace,
        )
        self._writer = ServeClient(writer_address, timeout=timeout)
        self._status_max_age = float(status_max_age)
        self._status_polled_at: Optional[float] = None
        self._fallback_to_writer = fallback_to_writer

    # -------------------------------------------------------------- writes

    def ingest(self, batch: Any) -> Dict[str, Any]:
        return self._writer.ingest(batch)

    def step(self, max_batches: int = 0) -> int:
        return self._writer.step(max_batches)

    # --------------------------------------------------------------- reads

    def predict(
        self, items: Optional[Sequence[int]] = None
    ) -> Dict[int, List[int]]:
        return self._route(lambda client: client.predict(items))

    def label_probabilities(
        self, items: Optional[Sequence[int]] = None
    ) -> Tuple[List[int], np.ndarray]:
        return self._route(lambda client: client.label_probabilities(items))

    def status(self) -> Dict[str, Any]:
        """Writer + replica metrics + router health, one round-trip each."""
        replicas = self.router.poll_status()
        self._status_polled_at = time.monotonic()
        return {
            "writer": self._writer.status(),
            "replicas": replicas,
            "router": self.router.states(),
            "policy": self.router.policy,
        }

    def _maybe_poll_status(self) -> None:
        """Refresh the staleness table when it has gone stale itself
        (only the ``least_staleness`` policy reads it)."""
        if self.router.policy != "least_staleness":
            return
        now = time.monotonic()
        if (
            self._status_polled_at is None
            or now - self._status_polled_at >= self._status_max_age
        ):
            self.router.poll_status()
            self._status_polled_at = now

    def _route(self, call: Callable[[ServeClient], Any]) -> Any:
        """Send one read query to a replica chosen by the policy, failing
        over through the health machine until one answers."""
        self._maybe_poll_status()
        while True:
            address = self.router.choose()
            if address is None:
                break
            try:
                client = self.router.client_for(address)
            except TransportError:
                self.router.fail(address)
                continue
            try:
                return call(client)
            except LaneTimeout:
                self.router.mark_suspect(address)
                continue
            except TransportError:
                self.router.fail(address)
                continue
        if self._fallback_to_writer:
            return call(self._writer)
        raise TransportError(
            "no live read replica remains (all excluded after their "
            "reconnect budgets) and writer fallback is disabled"
        )

    def close(self) -> None:
        self.router.close()
        self._writer.close()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -------------------------------------------------------------------- CLI


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description=(
            "Replica-fleet consensus serving: one writer daemon folding "
            "the answer stream plus N read-only replicas refreshed over "
            "chunk deltas on a timer.  The --port-file lists the writer "
            "address on the first line and one replica address per "
            "further line; point FleetClient (or any ServeClient) at "
            "them."
        ),
    )
    parser.add_argument(
        "--items", type=int, required=True, help="item index-space size I"
    )
    parser.add_argument(
        "--workers", type=int, required=True, help="worker index-space size U"
    )
    parser.add_argument(
        "--labels", type=int, required=True, help="label index-space size C"
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="read replicas to run (default %(default)s)",
    )
    parser.add_argument(
        "--replica-mode",
        choices=REPLICA_MODES,
        default="process",
        help="replica hosting: separate processes (real read parallelism) "
        "or in-process threads (default %(default)s)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="host every daemon binds to (default %(default)s)",
    )
    parser.add_argument(
        "--refresh-interval",
        type=float,
        default=2.0,
        help="background snapshot/refresh cadence in seconds; 0 disables "
        "the timer (default %(default)s)",
    )
    parser.add_argument(
        "--snapshot",
        default=None,
        help="also write each periodic snapshot to this file (atomic replace)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="engine seed (default %(default)s)"
    )
    parser.add_argument(
        "--dtype",
        choices=("float64", "float32"),
        default="float64",
        help="posterior dtype (default %(default)s)",
    )
    parser.add_argument(
        "--step-answers",
        type=int,
        default=100,
        help="SVI step size in answers (default %(default)s)",
    )
    parser.add_argument(
        "--total-answers-hint",
        type=int,
        default=None,
        help="expected total answers of the stream",
    )
    parser.add_argument(
        "--no-auto-step",
        action="store_true",
        help="writer does not fold after every ingest",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        help="write 'writer\\nreplica...' addresses here once listening",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    config = CPAConfig(
        seed=args.seed, dtype=args.dtype, svi_batch_answers=args.step_answers
    )
    manager = FleetManager(
        config,
        args.items,
        args.workers,
        args.labels,
        n_replicas=args.replicas,
        seed=args.seed,
        total_answers_hint=args.total_answers_hint,
        replica_mode=args.replica_mode,
        host=args.host,
        auto_step=not args.no_auto_step,
        refresh_interval=args.refresh_interval,
        snapshot_path=args.snapshot,
    )
    manager.start()
    addresses = [manager.writer_address] + manager.replica_addresses()
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write("\n".join(addresses) + "\n")
    print(f"fleet writer listening on {manager.writer_address}", flush=True)
    for address in addresses[1:]:
        print(f"fleet replica listening on {address}", flush=True)
    try:
        while True:
            time.sleep(3600.0)
    except KeyboardInterrupt:
        pass
    finally:
        manager.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
