"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Commands
--------
``repro list``
    Show all registered experiments with their paper artefacts.
``repro run <id> [--seeds 0,1,2] [--scale 0.5] [--out FILE]
            [--executor thread] [--degree 4] [--workers host:port,...]
            [--kernel-backend {fused,sharded,auto}] [--shards 4]``
    Run one experiment (or ``all``) and print/save its report.  The
    executor flags select the parallel backend, and the kernel-backend
    flags the sweep-kernel implementation (fused vs sharded), for
    experiments that take them (e.g. the Fig-7 runtime sweep) without
    code edits; kwargs an experiment does not accept are filtered by
    signature, so generic flags combine freely with ``all``.
``repro stats [--scale 1.0] [--seed 0]``
    Shortcut for the Table-3 statistics experiment.
``repro analysis [...]``
    The repo-invariant static-analysis pass; every argument is forwarded
    verbatim to ``repro.analysis.main`` (see ``repro analysis --help``).
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.experiments import list_experiments, run_experiment
from repro.experiments.registry import get_experiment


def _parse_seeds(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part != ""]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad seed list {text!r}") from exc


def _parse_workers(text: str) -> List[str]:
    from repro.errors import ValidationError
    from repro.utils.transport import parse_address

    addresses = [part.strip() for part in text.split(",") if part.strip()]
    if not addresses:
        raise argparse.ArgumentTypeError("empty worker address list")
    try:
        for address in addresses:
            parse_address(address)
    except ValidationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return addresses


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Computing Crowd Consensus with Partial "
            "Agreement' (ICDE 2018)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. table4, or 'all'")
    run_parser.add_argument(
        "--seeds", type=_parse_seeds, default=None, help="comma-separated seed list"
    )
    run_parser.add_argument("--seed", type=int, default=None, help="single seed")
    run_parser.add_argument("--scale", type=float, default=None, help="dataset scale")
    run_parser.add_argument("--out", type=Path, default=None, help="write report to file")
    run_parser.add_argument(
        "--executor",
        choices=("serial", "thread", "process", "remote"),
        default=None,
        help="parallel backend for experiments that accept one (e.g. fig7); "
        "'remote' runs lanes on worker daemons named by --workers",
    )
    run_parser.add_argument(
        "--degree",
        type=int,
        default=None,
        help="parallelism degree for --executor (default: one lane per core)",
    )
    run_parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=None,
        help="comma-separated remote worker daemon addresses "
        "(host:port,host:port,...) for --executor remote; start daemons "
        "with `python -m repro.worker --listen host:port`",
    )
    run_parser.add_argument(
        "--kernel-backend",
        choices=("fused", "sharded", "auto"),
        default=None,
        help="sweep-kernel backend for experiments that accept one (e.g. "
        "fig7); 'auto' picks fused vs sharded per matrix/batch from the "
        "answer volume and executor degree",
    )
    run_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for the sharded kernel backend (implies "
        "--kernel-backend sharded; default: auto); capped by the number "
        "of answered items when the matrix is in hand",
    )
    run_parser.add_argument(
        "--adaptive-truncation",
        choices=("auto", "on", "off"),
        default=None,
        help="shard-local truncation adaptation for the sharded kernel "
        "backend: size each shard's cluster truncation from its own "
        "item/answer profile ('auto' engages only on wide-but-sparse "
        "matrices; DESIGN.md §6)",
    )
    run_parser.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        help="per-request reply deadline in seconds for --executor remote "
        "(straggler mitigation: a lane past its deadline is marked "
        "suspect and its tasks are re-dispatched; 0 disables deadlines)",
    )

    stats_parser = sub.add_parser("stats", help="dataset statistics (Table 3)")
    stats_parser.add_argument("--scale", type=float, default=1.0)
    stats_parser.add_argument("--seed", type=int, default=0)

    analysis_parser = sub.add_parser(
        "analysis",
        help="run the static-analysis pass (same as python -m repro.analysis)",
        add_help=False,  # let --help reach the analysis parser itself
    )
    analysis_parser.add_argument(
        "args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded verbatim to repro.analysis",
    )
    return parser


def _accepted_kwargs(experiment_id: str, kwargs: dict) -> dict:
    """Drop kwargs the experiment's runner does not accept.

    Runners have heterogeneous signatures (fig7 has no ``scale``; most
    experiments have no ``backend``), so generic CLI flags are filtered by
    signature instead of failing — a runner with ``**kwargs`` accepts all.
    """
    runner = get_experiment(experiment_id).runner
    parameters = inspect.signature(runner).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return dict(kwargs)
    return {key: value for key, value in kwargs.items() if key in parameters}


def _experiment_kwargs(args: argparse.Namespace) -> dict:
    """Generic experiment kwargs from the parsed CLI flags.

    ``--shards`` alone implies the sharded kernel backend — a shard count
    silently running on the fused backend (which ignores it) would be a
    misleading no-op.
    """
    kwargs: dict = {}
    if args.seeds is not None:
        kwargs["seeds"] = tuple(args.seeds)
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if getattr(args, "executor", None) is not None:
        kwargs["backend"] = args.executor
    if getattr(args, "degree", None) is not None:
        kwargs["parallel_degrees"] = (args.degree,)
    if getattr(args, "workers", None) is not None:
        kwargs["workers"] = tuple(args.workers)
        kwargs.setdefault("backend", "remote")
    if getattr(args, "kernel_backend", None) is not None:
        kwargs["kernel_backend"] = args.kernel_backend
    if getattr(args, "shards", None) is not None:
        kwargs["n_shards"] = args.shards
        kwargs.setdefault("kernel_backend", "sharded")
    if getattr(args, "adaptive_truncation", None) is not None:
        kwargs["adaptive_truncation"] = args.adaptive_truncation
    if getattr(args, "request_timeout", None) is not None:
        kwargs["request_timeout"] = args.request_timeout
    return kwargs


def _run_one(experiment_id: str, args: argparse.Namespace) -> str:
    kwargs = _experiment_kwargs(args)
    report = run_experiment(experiment_id, **_accepted_kwargs(experiment_id, kwargs))
    return report.rendered()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = list(argv) if argv is not None else sys.argv[1:]
    if arguments and arguments[0] == "analysis":
        # forwarded before argparse sees the rest: REMAINDER refuses to
        # capture a leading option (``repro analysis --check``)
        from repro.analysis import main as analysis_main

        return analysis_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    if getattr(args, "workers", None) and getattr(args, "executor", None) not in (
        None,
        "remote",
    ):
        # statically contradictory: fail at parse time, not minutes into
        # an experiment when the executor is finally constructed
        parser.error(
            f"--workers requires --executor remote (got --executor {args.executor})"
        )
    if getattr(args, "request_timeout", None) is not None and getattr(
        args, "executor", None
    ) not in (None, "remote"):
        parser.error(
            "--request-timeout requires --executor remote "
            f"(got --executor {args.executor})"
        )

    if args.command == "list":
        for spec in list_experiments():
            print(f"{spec.experiment_id:8s} {spec.paper_artefact:24s} {spec.title}")
        return 0

    if args.command == "stats":
        report = run_experiment("table3", seed=args.seed, scale=args.scale)
        print(report.rendered())
        return 0

    if args.command == "run":
        targets = (
            [spec.experiment_id for spec in list_experiments()]
            if args.experiment == "all"
            else [args.experiment]
        )
        chunks = [_run_one(target, args) for target in targets]
        output = "\n\n\n".join(chunks)
        if args.out is not None:
            args.out.write_text(output + "\n", encoding="utf-8")
            print(f"wrote {args.out}")
        else:
            print(output)
        return 0

    return 1  # pragma: no cover - argparse enforces valid commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
