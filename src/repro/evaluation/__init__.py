"""Evaluation: set-based metrics (paper §5.1), multi-seed runners, reports."""

from repro.evaluation.metrics import (
    EvaluationResult,
    delta_ratio,
    evaluate_predictions,
    item_precision_recall,
)
from repro.evaluation.runner import (
    MethodScore,
    average_scores,
    evaluate_methods,
    repeat_with_seeds,
)
from repro.evaluation.report import scores_table

__all__ = [
    "EvaluationResult",
    "delta_ratio",
    "evaluate_predictions",
    "item_precision_recall",
    "MethodScore",
    "average_scores",
    "evaluate_methods",
    "repeat_with_seeds",
    "scores_table",
]
