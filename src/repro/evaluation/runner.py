"""Experiment execution helpers: run aggregators, repeat over seeds, average.

The paper averages each measurement over shuffled re-runs ("we take the
average result of 10 runs, in which the dataset is shuffled randomly",
§5.1); :func:`repeat_with_seeds` is that loop, parameterised by a dataset
factory so each repetition can re-draw the dataset, the perturbation, or
both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.baselines.base import Aggregator
from repro.data.dataset import CrowdDataset
from repro.errors import ValidationError
from repro.evaluation.metrics import EvaluationResult, evaluate_predictions


@dataclass(frozen=True)
class MethodScore:
    """One aggregator's evaluation on one dataset instance."""

    method: str
    precision: float
    recall: float
    runtime_seconds: float
    n_items: int

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def evaluate_methods(
    dataset: CrowdDataset,
    methods: Sequence[Aggregator],
    items: Sequence[int] | None = None,
) -> List[MethodScore]:
    """Run every aggregator on ``dataset`` and score it against the truth."""
    if not methods:
        raise ValidationError("methods must not be empty")
    scores: List[MethodScore] = []
    for method in methods:
        start = time.perf_counter()
        predictions = method.aggregate(dataset)
        elapsed = time.perf_counter() - start
        result: EvaluationResult = evaluate_predictions(
            predictions, dataset.truth, items=items
        )
        scores.append(
            MethodScore(
                method=method.name,
                precision=result.precision,
                recall=result.recall,
                runtime_seconds=elapsed,
                n_items=result.n_items,
            )
        )
    return scores


def repeat_with_seeds(
    make_dataset: Callable[[int], CrowdDataset],
    methods_factory: Callable[[], Sequence[Aggregator]],
    seeds: Sequence[int],
) -> Dict[str, List[MethodScore]]:
    """Repeat ``evaluate_methods`` over fresh datasets, one per seed.

    ``methods_factory`` is called per repetition so stateful aggregators
    (e.g. CPA keeping its last model) start clean.  Returns scores grouped
    by method name, in seed order.
    """
    if not seeds:
        raise ValidationError("seeds must not be empty")
    grouped: Dict[str, List[MethodScore]] = {}
    for seed in seeds:
        dataset = make_dataset(int(seed))
        for score in evaluate_methods(dataset, methods_factory()):
            grouped.setdefault(score.method, []).append(score)
    return grouped


@dataclass(frozen=True)
class AveragedScore:
    """Mean ± standard deviation across repetitions."""

    method: str
    precision_mean: float
    precision_std: float
    recall_mean: float
    recall_std: float
    runtime_mean: float
    n_runs: int


def average_scores(grouped: Dict[str, List[MethodScore]]) -> List[AveragedScore]:
    """Collapse grouped repetition scores into mean ± std summaries."""
    averaged: List[AveragedScore] = []
    for method, scores in grouped.items():
        precisions = np.array([s.precision for s in scores])
        recalls = np.array([s.recall for s in scores])
        runtimes = np.array([s.runtime_seconds for s in scores])
        averaged.append(
            AveragedScore(
                method=method,
                precision_mean=float(precisions.mean()),
                precision_std=float(precisions.std()),
                recall_mean=float(recalls.mean()),
                recall_std=float(recalls.std()),
                runtime_mean=float(runtimes.mean()),
                n_runs=len(scores),
            )
        )
    return averaged
