"""Set-based precision and recall (paper §5.1 "Metrics").

Per item ``i``: precision ``P_i = |Y_i ∩ Y*_i| / |Y*_i|`` (correct
predicted labels over predicted labels) and recall
``R_i = |Y_i ∩ Y*_i| / |Y_i|`` (correct predicted labels over true
labels); dataset-level values are plain averages over items.  Edge cases
are made explicit here because partial-agreement predictions can be empty:
an empty prediction scores precision 1 against an empty truth set and 0
otherwise, mirroring the usual information-retrieval convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, Mapping, Optional, Sequence

from repro.data.dataset import CrowdDataset, GroundTruth
from repro.errors import ValidationError


@dataclass(frozen=True)
class EvaluationResult:
    """Dataset-level evaluation of one prediction map."""

    precision: float
    recall: float
    n_items: int

    @property
    def f1(self) -> float:
        """Harmonic mean of the averaged precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    def as_tuple(self) -> tuple[float, float]:
        return self.precision, self.recall


def item_precision_recall(
    predicted: AbstractSet[int], truth: AbstractSet[int]
) -> tuple[float, float]:
    """``(P_i, R_i)`` for one item (edge cases per module docstring)."""
    correct = len(set(predicted) & set(truth))
    if predicted:
        precision = correct / len(predicted)
    else:
        precision = 1.0 if not truth else 0.0
    if truth:
        recall = correct / len(truth)
    else:
        recall = 1.0 if not predicted else 0.0
    return precision, recall


def evaluate_predictions(
    predictions: Mapping[int, FrozenSet[int]],
    truth: GroundTruth | CrowdDataset,
    items: Optional[Sequence[int]] = None,
) -> EvaluationResult:
    """Average set-based precision/recall of ``predictions`` against truth.

    Only items with *known* truth are scored.  ``items`` restricts scoring
    to a subset (e.g. the answered items of a sparsified dataset); items in
    the restriction that are missing from ``predictions`` are scored as
    empty predictions — a method that declines to answer is penalised, not
    skipped.
    """
    if isinstance(truth, CrowdDataset):
        truth = truth.truth
    if items is None:
        scored_items = truth.known_items()
    else:
        scored_items = [int(i) for i in items if truth.get(int(i)) is not None]
    if not scored_items:
        raise ValidationError("no items with known truth to evaluate")

    total_p = total_r = 0.0
    for item in scored_items:
        true_labels = truth.get(item)
        assert true_labels is not None
        predicted = predictions.get(item, frozenset())
        p, r = item_precision_recall(predicted, true_labels)
        total_p += p
        total_r += r
    n = len(scored_items)
    return EvaluationResult(precision=total_p / n, recall=total_r / n, n_items=n)


def delta_ratio(perturbed: float, baseline: float) -> float:
    """Performance retained under perturbation (Figs 4 and 5's ``Δ`` axis).

    ``perturbed / baseline``, clamped into ``[0, ∞)``; a value of 1 means
    the perturbation cost nothing, 0.5 means half the metric was lost.
    Returns 0 when the unperturbed baseline is itself 0.
    """
    if baseline <= 0:
        return 0.0
    return max(perturbed, 0.0) / baseline


def micro_precision_recall(
    predictions: Mapping[int, FrozenSet[int]],
    truth: GroundTruth | CrowdDataset,
    items: Optional[Sequence[int]] = None,
) -> tuple[float, float]:
    """Micro-averaged (label-occurrence level) precision and recall.

    A secondary metric — not used by the paper's tables, but useful when
    comparing datasets with very different label-set sizes.
    """
    if isinstance(truth, CrowdDataset):
        truth = truth.truth
    scored = items if items is not None else truth.known_items()
    tp = fp = fn = 0
    for item in scored:
        true_labels = truth.get(int(item))
        if true_labels is None:
            continue
        predicted = set(predictions.get(int(item), frozenset()))
        tp += len(predicted & true_labels)
        fp += len(predicted - true_labels)
        fn += len(true_labels - predicted)
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    return precision, recall


def prediction_size_histogram(
    predictions: Mapping[int, FrozenSet[int]]
) -> Dict[int, int]:
    """Histogram of predicted label-set sizes (diagnostic)."""
    histogram: Dict[int, int] = {}
    for labels in predictions.values():
        histogram[len(labels)] = histogram.get(len(labels), 0) + 1
    return dict(sorted(histogram.items()))
