"""Rendering evaluation results as paper-style tables."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.evaluation.runner import AveragedScore, MethodScore
from repro.utils.tables import format_table


def scores_table(
    scores: Sequence[MethodScore], *, title: str | None = None
) -> str:
    """One dataset's method scores as an aligned table."""
    rows = [
        (s.method, s.precision, s.recall, s.f1, s.runtime_seconds)
        for s in scores
    ]
    return format_table(
        ("method", "precision", "recall", "F1", "runtime(s)"), rows, title=title
    )


def accuracy_matrix_table(
    per_dataset: Mapping[str, Sequence[MethodScore]],
    methods: Sequence[str],
    *,
    metric: str = "precision",
    title: str | None = None,
) -> str:
    """Paper-Table-4 layout: datasets as rows, methods as columns."""
    headers: List[str] = ["dataset", *methods]
    rows = []
    for dataset_name, scores in per_dataset.items():
        by_method: Dict[str, MethodScore] = {s.method: s for s in scores}
        row: List[object] = [dataset_name]
        for method in methods:
            score = by_method.get(method)
            row.append(getattr(score, metric) if score else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=title)


def averaged_table(
    averaged: Sequence[AveragedScore], *, title: str | None = None
) -> str:
    """Mean ± std scores (paper Table 5 layout)."""
    rows = [
        (
            s.method,
            f"{s.precision_mean:.3f} ±{s.precision_std:.2f}",
            f"{s.recall_mean:.3f} ±{s.recall_std:.2f}",
            s.n_runs,
        )
        for s in averaged
    ]
    return format_table(("method", "precision", "recall", "runs"), rows, title=title)
