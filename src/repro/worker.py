"""Standalone worker daemon: ``python -m repro.worker --listen host:port``.

Runs one :class:`~repro.utils.transport.WorkerServer` in the foreground —
the remote end of the :class:`~repro.utils.parallel.RemoteExecutor` lane
contract.  The daemon is stateless apart from its bounded broadcast
registry, so a fleet of them can sit behind any process supervisor; a
client that loses one mid-sweep retries on the survivors (DESIGN.md §6
"Remote lanes").

Flags
-----
``--listen host:port``
    Interface and port to bind (port 0 picks a free port).
``--port-file PATH``
    After binding, write the realised ``host:port`` to PATH — how a
    harness that requested port 0 learns where the daemon landed.
``--payload-cap N``
    Resident broadcast payloads kept before LRU eviction (default 8,
    matching the in-process pool lanes).  An evicted payload is
    re-broadcast by the client on next use, so a small cap trades
    re-transfer for bounded memory.
``--chunk-cache-mb N``
    Byte budget (in MiB, default 256) for the content-addressed chunk
    cache behind the chunked broadcast protocol.  Chunks outlive the
    payloads assembled from them, so a client re-arming this daemon
    after payload eviction pays a digest probe instead of a re-ship;
    0 keeps only the most recent chunk (effectively disabling reuse).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.utils.transport import (
    DEFAULT_CHUNK_CACHE_BYTES,
    DEFAULT_PAYLOAD_CAP,
    WorkerServer,
    parse_address,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.worker",
        description="CPA remote-lane worker daemon (broadcast/map_on/map_tasks)",
    )
    parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        help="host:port to bind (default 127.0.0.1:0 = loopback, free port)",
    )
    parser.add_argument(
        "--port-file",
        type=Path,
        default=None,
        help="write the realised host:port here once listening",
    )
    parser.add_argument(
        "--payload-cap",
        type=int,
        default=DEFAULT_PAYLOAD_CAP,
        help="resident broadcast payloads kept before LRU eviction",
    )
    parser.add_argument(
        "--chunk-cache-mb",
        type=int,
        default=DEFAULT_CHUNK_CACHE_BYTES >> 20,
        help="MiB of content-addressed broadcast chunks kept for reuse",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    host, port = parse_address(args.listen)
    server = WorkerServer(
        host,
        port,
        payload_cap=args.payload_cap,
        chunk_cache_bytes=args.chunk_cache_mb << 20,
    )
    if args.port_file is not None:
        args.port_file.write_text(server.address + "\n", encoding="utf-8")
    print(f"repro worker listening on {server.address}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
