"""The partial-agreement answer matrix (paper §2.2).

An :class:`AnswerMatrix` stores, for item ``i`` and worker ``u``, the label
*set* ``x_iu ⊆ Z`` the worker assigned — or nothing at all if the worker
never saw the item.  The distinction between "answered with the empty set"
and "did not answer" matters: the paper treats only non-empty answers as
observations, and this class enforces that an explicit answer carries at
least one label.

Storage is sparse (a dict keyed by ``(item, worker)``) with per-item and
per-worker indices maintained incrementally, plus a cached conversion to the
flat numpy layout used by vectorised inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Tuple

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class Answer:
    """One worker's answer to one item: a non-empty set of label indices."""

    item: int
    worker: int
    labels: FrozenSet[int]

    def __post_init__(self) -> None:
        if not self.labels:
            raise ValidationError("an explicit answer must carry at least one label")


class AnswerMatrix:
    """Sparse ``I × U`` matrix of label sets with vectorised export.

    Parameters
    ----------
    n_items, n_workers, n_labels:
        Sizes of the item, worker, and label index spaces.  Items, workers
        and labels are referred to by integer index throughout the library
        (names live on :class:`repro.data.dataset.CrowdDataset`).
    """

    def __init__(self, n_items: int, n_workers: int, n_labels: int) -> None:
        for name, value in (
            ("n_items", n_items),
            ("n_workers", n_workers),
            ("n_labels", n_labels),
        ):
            if int(value) != value or value <= 0:
                raise ValidationError(f"{name} must be a positive integer, got {value}")
        self.n_items = int(n_items)
        self.n_workers = int(n_workers)
        self.n_labels = int(n_labels)
        self._entries: Dict[Tuple[int, int], FrozenSet[int]] = {}
        self._by_item: Dict[int, List[int]] = {}
        self._by_worker: Dict[int, List[int]] = {}
        self._arrays_cache: Tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ build

    def _check_indices(self, item: int, worker: int) -> Tuple[int, int]:
        item, worker = int(item), int(worker)
        if not 0 <= item < self.n_items:
            raise ValidationError(f"item index {item} out of range [0, {self.n_items})")
        if not 0 <= worker < self.n_workers:
            raise ValidationError(
                f"worker index {worker} out of range [0, {self.n_workers})"
            )
        return item, worker

    def _check_labels(self, labels: Iterable[int]) -> FrozenSet[int]:
        label_set = frozenset(int(label) for label in labels)
        if not label_set:
            raise ValidationError("an answer must contain at least one label")
        bad = [label for label in label_set if not 0 <= label < self.n_labels]
        if bad:
            raise ValidationError(
                f"label indices {sorted(bad)} out of range [0, {self.n_labels})"
            )
        return label_set

    def add(self, item: int, worker: int, labels: Iterable[int]) -> None:
        """Record worker ``worker``'s answer for ``item``.

        Overwrites any previous answer by the same worker for the same item
        (a worker gives one answer per item in the paper's setting).
        """
        item, worker = self._check_indices(item, worker)
        label_set = self._check_labels(labels)
        if (item, worker) not in self._entries:
            self._by_item.setdefault(item, []).append(worker)
            self._by_worker.setdefault(worker, []).append(item)
        self._entries[(item, worker)] = label_set
        self._arrays_cache = None

    def remove(self, item: int, worker: int) -> None:
        """Delete the answer of ``worker`` for ``item`` (must exist)."""
        item, worker = self._check_indices(item, worker)
        if (item, worker) not in self._entries:
            raise ValidationError(f"no answer recorded for item {item}, worker {worker}")
        del self._entries[(item, worker)]
        self._by_item[item].remove(worker)
        if not self._by_item[item]:
            del self._by_item[item]
        self._by_worker[worker].remove(item)
        if not self._by_worker[worker]:
            del self._by_worker[worker]
        self._arrays_cache = None

    # ------------------------------------------------------------------ query

    def get(self, item: int, worker: int) -> FrozenSet[int] | None:
        """The label set for ``(item, worker)``, or ``None`` if unanswered."""
        item, worker = self._check_indices(item, worker)
        return self._entries.get((item, worker))

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return tuple(key) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def n_answers(self) -> int:
        """Number of (item, worker) pairs with a recorded answer."""
        return len(self._entries)

    def workers_for_item(self, item: int) -> List[int]:
        """Workers who answered ``item`` (paper's ``U_i``), in insertion order."""
        item = int(item)
        return list(self._by_item.get(item, []))

    def items_for_worker(self, worker: int) -> List[int]:
        """Items answered by ``worker``, in insertion order."""
        worker = int(worker)
        return list(self._by_worker.get(worker, []))

    def answered_items(self) -> List[int]:
        """Sorted list of items with at least one answer."""
        return sorted(self._by_item)

    def active_workers(self) -> List[int]:
        """Sorted list of workers with at least one answer."""
        return sorted(self._by_worker)

    def iter_answers(self) -> Iterator[Answer]:
        """Iterate over all answers in insertion order."""
        for (item, worker), labels in self._entries.items():
            yield Answer(item=item, worker=worker, labels=labels)

    def sparsity(self) -> float:
        """Fraction of the full ``I × U`` grid that is *unanswered*."""
        return 1.0 - self.n_answers / (self.n_items * self.n_workers)

    def label_counts(self) -> np.ndarray:
        """How many answers include each label (length-``C`` vector).

        Derived from the indicator matrix of :meth:`to_arrays` (a column
        sum), so it shares the cached vectorised export.
        """
        _, _, indicators = self.to_arrays()
        return indicators.sum(axis=0).astype(np.int64)

    def cooccurrence_counts(self) -> np.ndarray:
        """Symmetric ``C × C`` matrix of within-answer label co-occurrences.

        The diagonal holds per-label answer counts; off-diagonal entry
        ``(a, b)`` counts answers containing both ``a`` and ``b`` (the raw
        statistic behind the paper's Fig 1 graph).  Computed as the Gram
        matrix ``Xᵀ X`` of the 0/1 indicator matrix.
        """
        _, _, indicators = self.to_arrays()
        return np.rint(indicators.T @ indicators).astype(np.int64)

    # --------------------------------------------------------------- export

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten to ``(item_idx, worker_idx, label_indicators)`` arrays.

        ``label_indicators`` is an ``(n_answers, C)`` float matrix of 0/1
        rows — the representation consumed by the vectorised inference
        kernels.  Built entirely with array ops (one flat pass over the
        label sets feeding a fancy-index assignment); the result is cached
        until the matrix is next mutated.
        """
        if self._arrays_cache is None:
            n = self.n_answers
            pairs = np.fromiter(
                (index for pair in self._entries for index in pair),
                dtype=np.int64,
                count=2 * n,
            ).reshape(n, 2)
            items = np.ascontiguousarray(pairs[:, 0])
            workers = np.ascontiguousarray(pairs[:, 1])
            lengths = np.fromiter(
                (len(labels) for labels in self._entries.values()),
                dtype=np.int64,
                count=n,
            )
            flat_labels = np.fromiter(
                (label for labels in self._entries.values() for label in labels),
                dtype=np.int64,
                count=int(lengths.sum()),
            )
            indicators = np.zeros((n, self.n_labels), dtype=np.float64)
            indicators[np.repeat(np.arange(n), lengths), flat_labels] = 1.0
            self._arrays_cache = (items, workers, indicators)
        items, workers, indicators = self._arrays_cache
        return items, workers, indicators

    # ----------------------------------------------------------- transform

    def copy(self) -> "AnswerMatrix":
        """Deep copy (label sets are immutable and shared)."""
        clone = AnswerMatrix(self.n_items, self.n_workers, self.n_labels)
        for (item, worker), labels in self._entries.items():
            clone._entries[(item, worker)] = labels
            clone._by_item.setdefault(item, []).append(worker)
            clone._by_worker.setdefault(worker, []).append(item)
        return clone

    def subset(self, pairs: Iterable[Tuple[int, int]]) -> "AnswerMatrix":
        """A new matrix containing only the given ``(item, worker)`` pairs."""
        clone = AnswerMatrix(self.n_items, self.n_workers, self.n_labels)
        for item, worker in pairs:
            labels = self.get(item, worker)
            if labels is None:
                raise ValidationError(
                    f"cannot subset: pair (item={item}, worker={worker}) not answered"
                )
            clone.add(item, worker, labels)
        return clone

    def resized(self, n_items: int, n_workers: int, n_labels: int) -> "AnswerMatrix":
        """A copy over grown index spaces (each size ≥ the current one).

        The serving layer uses this when new items/workers/labels appear
        mid-stream (see :meth:`repro.serve.ConsensusEngine.grow`): all
        recorded answers keep their coordinates, the spaces just widen.
        """
        if (
            n_items < self.n_items
            or n_workers < self.n_workers
            or n_labels < self.n_labels
        ):
            raise ValidationError(
                f"resized() cannot shrink: have "
                f"({self.n_items}, {self.n_workers}, {self.n_labels}), "
                f"requested ({n_items}, {n_workers}, {n_labels})"
            )
        clone = AnswerMatrix(n_items, n_workers, n_labels)
        for (item, worker), labels in self._entries.items():
            clone._entries[(item, worker)] = labels
            clone._by_item.setdefault(item, []).append(worker)
            clone._by_worker.setdefault(worker, []).append(item)
        return clone

    def merged_with(self, other: "AnswerMatrix") -> "AnswerMatrix":
        """Union of two matrices over the same index spaces.

        ``other`` wins on conflicting pairs; sizes must match exactly.
        """
        if (other.n_items, other.n_workers, other.n_labels) != (
            self.n_items,
            self.n_workers,
            self.n_labels,
        ):
            raise ValidationError("cannot merge answer matrices of different shapes")
        clone = self.copy()
        for answer in other.iter_answers():
            clone.add(answer.item, answer.worker, answer.labels)
        return clone

    @classmethod
    def from_mapping(
        cls,
        n_items: int,
        n_workers: int,
        n_labels: int,
        entries: Mapping[Tuple[int, int], Iterable[int]],
    ) -> "AnswerMatrix":
        """Build from a ``{(item, worker): labels}`` mapping."""
        matrix = cls(n_items, n_workers, n_labels)
        for (item, worker), labels in entries.items():
            matrix.add(item, worker, labels)
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnswerMatrix(items={self.n_items}, workers={self.n_workers}, "
            f"labels={self.n_labels}, answers={self.n_answers})"
        )
