"""Answer streams: the batched arrival model of paper §4.1.

Online (SVI) inference consumes answers as "a series of batches b = 1, 2,
...; each batch contains the answers of a fixed number of workers U_b for a
set of items N_b".  :class:`AnswerStream` turns a static answer matrix into
such a series, with three batching policies:

* ``by_workers`` — the paper's policy: batches group whole workers.
* ``by_answers`` — fixed answer-count batches in random arrival order (used
  by the Fig-7 runtime study, where batch size is "100 answers").
* ``by_fractions`` — cumulative arrival percentages (the Fig-6 x-axis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.data.answers import AnswerMatrix
from repro.errors import ValidationError
from repro.utils.random import RandomState, Seed


@dataclass(frozen=True)
class AnswerBatch:
    """One arrival batch: the answers of workers ``workers`` on ``items``.

    ``pairs`` holds the (item, worker) coordinates present in the batch;
    ``matrix`` is a (sparse) answer matrix restricted to exactly those
    pairs, over the *full* index spaces so parameters stay aligned.

    ``index`` numbers batches consecutively within their stream;
    ``sub_index`` distinguishes the sub-batches :func:`split_batch`
    carves out of one stream batch (0 for unsplit batches).  Use
    :attr:`batch_id` — the ``(index, sub_index)`` pair — as the batch's
    identity: sub-batch indices alone would collide with later stream
    batches (parent 3 split in four must not masquerade as batches
    4, 5, 6).
    """

    index: int
    workers: Tuple[int, ...]
    items: Tuple[int, ...]
    pairs: Tuple[Tuple[int, int], ...]
    matrix: AnswerMatrix
    sub_index: int = 0

    @property
    def batch_id(self) -> Tuple[int, int]:
        """Collision-free identity: ``(stream index, split offset)``."""
        return (self.index, self.sub_index)

    @property
    def n_answers(self) -> int:
        return len(self.pairs)


class AnswerStream:
    """Deterministic, seeded batch decomposition of an answer matrix.

    Every policy call draws one child seed from the stream's generator
    *at call time* and shuffles with a generator derived from that seed.
    The seed path therefore depends only on the order in which policies
    are *called* on the stream — never on when (or whether, or in which
    interleaving) the returned iterators are consumed.  The old lazy
    scheme shuffled with the shared instance generator on first
    ``next()``, so the same seed yielded different batches when two
    iterators were created before either was consumed, or consumed in a
    different order than created — fatal for a serving restart that must
    replay an arrival log bit-for-bit.
    """

    def __init__(self, matrix: AnswerMatrix, seed: Seed = None) -> None:
        self._matrix = matrix
        self._rng = RandomState(seed)

    def _child_rng(self) -> np.random.Generator:
        """A fresh generator seeded now, from this call's position in the
        stream's call sequence (see class docstring)."""
        return RandomState(int(self._rng.integers(2**63)))

    # ------------------------------------------------------------------ policies

    def by_workers(self, workers_per_batch: int) -> Iterator[AnswerBatch]:
        """Batches of whole workers, in a random worker order."""
        if workers_per_batch <= 0:
            raise ValidationError("workers_per_batch must be positive")
        order = np.array(self._matrix.active_workers(), dtype=int)
        self._child_rng().shuffle(order)
        return self._iter_worker_batches(order, workers_per_batch)

    def _iter_worker_batches(
        self, order: np.ndarray, workers_per_batch: int
    ) -> Iterator[AnswerBatch]:
        for index, start in enumerate(range(0, order.size, workers_per_batch)):
            chunk = order[start : start + workers_per_batch]
            pairs = [
                (item, int(worker))
                for worker in chunk
                for item in self._matrix.items_for_worker(int(worker))
            ]
            yield self._build_batch(index, pairs)

    def by_answers(self, answers_per_batch: int) -> Iterator[AnswerBatch]:
        """Fixed-size batches of individual answers in random arrival order."""
        if answers_per_batch <= 0:
            raise ValidationError("answers_per_batch must be positive")
        pairs = [(a.item, a.worker) for a in self._matrix.iter_answers()]
        order = np.arange(len(pairs))
        self._child_rng().shuffle(order)
        return self._iter_answer_batches(pairs, order, answers_per_batch)

    def _iter_answer_batches(
        self,
        pairs: List[Tuple[int, int]],
        order: np.ndarray,
        answers_per_batch: int,
    ) -> Iterator[AnswerBatch]:
        for index, start in enumerate(range(0, len(pairs), answers_per_batch)):
            chunk = [pairs[i] for i in order[start : start + answers_per_batch]]
            yield self._build_batch(index, chunk)

    def by_fractions(self, fractions: Sequence[float]) -> Iterator[AnswerBatch]:
        """Batches sized to cumulative arrival fractions (e.g. Fig 6's 10%…100%).

        ``fractions`` must be strictly increasing in ``(0, 1]``; batch ``b``
        carries the answers between cumulative cut ``b-1`` and ``b``.

        On small matrices (or very close fractions) adjacent cuts can
        round to the same answer index; such empty arrival windows are
        merged into their successor rather than emitted, so every yielded
        batch has ``n_answers > 0`` and batch indices stay consecutive.
        """
        fracs = [float(f) for f in fractions]
        if not fracs or any(not 0 < f <= 1 for f in fracs):
            raise ValidationError("fractions must lie in (0, 1]")
        if any(b <= a for a, b in zip(fracs, fracs[1:])):
            raise ValidationError("fractions must be strictly increasing")
        pairs = [(a.item, a.worker) for a in self._matrix.iter_answers()]
        order = np.arange(len(pairs))
        self._child_rng().shuffle(order)
        return self._iter_fraction_batches(pairs, order, fracs)

    def _iter_fraction_batches(
        self,
        pairs: List[Tuple[int, int]],
        order: np.ndarray,
        fracs: List[float],
    ) -> Iterator[AnswerBatch]:
        cuts = [0] + [int(round(f * len(pairs))) for f in fracs]
        index = 0
        for lo, hi in zip(cuts, cuts[1:]):
            if lo == hi:
                # collapsed cut: int(round(f * n)) landed on the previous
                # boundary — nothing arrived in this window
                continue
            chunk = [pairs[i] for i in order[lo:hi]]
            yield self._build_batch(index, chunk)
            index += 1

    # ------------------------------------------------------------------ helpers

    def _build_batch(
        self, index: int, pairs: List[Tuple[int, int]]
    ) -> AnswerBatch:
        submatrix = self._matrix.subset(pairs)
        workers = tuple(sorted({worker for _, worker in pairs}))
        items = tuple(sorted({item for item, _ in pairs}))
        return AnswerBatch(
            index=index,
            workers=workers,
            items=items,
            pairs=tuple(pairs),
            matrix=submatrix,
        )


def split_batch(batch: AnswerBatch, max_answers: int) -> List[AnswerBatch]:
    """Split one batch into consecutive sub-batches of ``≤ max_answers``.

    Used to feed large arrival increments to the SVI engine at the paper's
    per-step batch size.  The sub-batches partition the original pairs in
    order; each keeps the parent's ``index`` and takes its split offset as
    ``sub_index``, so the ``(index, sub_index)`` pair
    (:attr:`AnswerBatch.batch_id`) identifies every sub-batch without
    colliding with later batches of the same stream (the old
    ``parent.index + offset`` numbering made parent 3's pieces
    indistinguishable from batches 4, 5, 6).
    """
    if max_answers <= 0:
        raise ValidationError("max_answers must be positive")
    if batch.n_answers <= max_answers:
        return [batch]
    out: List[AnswerBatch] = []
    for offset, start in enumerate(range(0, batch.n_answers, max_answers)):
        chunk = list(batch.pairs[start : start + max_answers])
        submatrix = batch.matrix.subset(chunk)
        out.append(
            AnswerBatch(
                index=batch.index,
                workers=tuple(sorted({worker for _, worker in chunk})),
                items=tuple(sorted({item for item, _ in chunk})),
                pairs=tuple(chunk),
                matrix=submatrix,
                sub_index=offset,
            )
        )
    return out
