"""Crowd datasets: answers + (possibly partial) ground truth + metadata.

:class:`GroundTruth` is the deterministic assignment ``d : I → 2^Z`` the
aggregation problem (paper Problem 1) tries to recover; it may be known for
only a subset of items (test questions, paper §3.2's observed ``ȳ``).
:class:`CrowdDataset` bundles the answer matrix with truth and with optional
provenance metadata (true worker types and item clusters when the dataset
came from the simulator), which the diagnostics experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.data.answers import AnswerMatrix
from repro.errors import ValidationError


class GroundTruth:
    """Partial mapping from item index to its true label set."""

    def __init__(self, n_items: int, n_labels: int) -> None:
        if n_items <= 0 or n_labels <= 0:
            raise ValidationError("n_items and n_labels must be positive")
        self.n_items = int(n_items)
        self.n_labels = int(n_labels)
        self._truth: Dict[int, FrozenSet[int]] = {}

    def set(self, item: int, labels: Iterable[int]) -> None:
        """Record the true label set of ``item`` (must be non-empty)."""
        item = int(item)
        if not 0 <= item < self.n_items:
            raise ValidationError(f"item index {item} out of range")
        label_set = frozenset(int(label) for label in labels)
        if not label_set:
            raise ValidationError("a true label set must be non-empty")
        bad = [label for label in label_set if not 0 <= label < self.n_labels]
        if bad:
            raise ValidationError(f"label indices {sorted(bad)} out of range")
        self._truth[item] = label_set

    def get(self, item: int) -> Optional[FrozenSet[int]]:
        """True labels of ``item`` or ``None`` when unknown."""
        return self._truth.get(int(item))

    def __contains__(self, item: int) -> bool:
        return int(item) in self._truth

    def __len__(self) -> int:
        return len(self._truth)

    def items(self) -> Iterator[Tuple[int, FrozenSet[int]]]:
        """Iterate ``(item, labels)`` pairs in sorted item order."""
        for item in sorted(self._truth):
            yield item, self._truth[item]

    def known_items(self) -> List[int]:
        """Sorted item indices with known truth."""
        return sorted(self._truth)

    def is_complete(self) -> bool:
        """True when every item has known truth."""
        return len(self._truth) == self.n_items

    def restricted_to(self, items: Iterable[int]) -> "GroundTruth":
        """A copy exposing truth only for ``items`` (simulates test questions)."""
        keep = {int(i) for i in items}
        out = GroundTruth(self.n_items, self.n_labels)
        for item, labels in self._truth.items():
            if item in keep:
                out._truth[item] = labels
        return out

    def to_indicator_matrix(self) -> np.ndarray:
        """Dense ``(I, C)`` 0/1 matrix; unknown items are all-zero rows."""
        matrix = np.zeros((self.n_items, self.n_labels), dtype=np.float64)
        for item, labels in self._truth.items():
            matrix[item, sorted(labels)] = 1.0
        return matrix

    @classmethod
    def from_mapping(
        cls, n_items: int, n_labels: int, mapping: Mapping[int, Iterable[int]]
    ) -> "GroundTruth":
        """Build from ``{item: labels}``."""
        truth = cls(n_items, n_labels)
        for item, labels in mapping.items():
            truth.set(item, labels)
        return truth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GroundTruth(known={len(self)}/{self.n_items})"


@dataclass
class CrowdDataset:
    """A complete partial-agreement crowdsourcing dataset.

    Attributes
    ----------
    name:
        Human-readable dataset identifier (e.g. scenario name).
    answers:
        The sparse answer matrix ``M``.
    truth:
        Ground-truth label sets; may cover only part of the items.
    label_names:
        Optional display names, one per label index.
    worker_types:
        Optional provenance: the simulated archetype of each worker
        (values from :class:`repro.workers.types.WorkerType`), used by the
        community-diagnostics experiments and never by inference.
    item_clusters:
        Optional provenance: the generating item cluster of each item.
    """

    name: str
    answers: AnswerMatrix
    truth: GroundTruth
    label_names: Optional[List[str]] = None
    worker_types: Optional[List[str]] = None
    item_clusters: Optional[List[int]] = None
    extras: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.truth.n_items != self.answers.n_items:
            raise ValidationError("truth and answers disagree on item count")
        if self.truth.n_labels != self.answers.n_labels:
            raise ValidationError("truth and answers disagree on label count")
        if self.label_names is not None and len(self.label_names) != self.answers.n_labels:
            raise ValidationError("label_names length must equal n_labels")
        if self.worker_types is not None and len(self.worker_types) != self.answers.n_workers:
            raise ValidationError("worker_types length must equal n_workers")
        if self.item_clusters is not None and len(self.item_clusters) != self.answers.n_items:
            raise ValidationError("item_clusters length must equal n_items")

    # Convenience size accessors -------------------------------------------------

    @property
    def n_items(self) -> int:
        return self.answers.n_items

    @property
    def n_workers(self) -> int:
        return self.answers.n_workers

    @property
    def n_labels(self) -> int:
        return self.answers.n_labels

    @property
    def n_answers(self) -> int:
        return self.answers.n_answers

    def label_name(self, label: int) -> str:
        """Display name of ``label`` (falls back to ``label-<idx>``)."""
        if self.label_names is not None:
            return self.label_names[label]
        return f"label-{label}"

    def with_answers(self, answers: AnswerMatrix, suffix: str = "") -> "CrowdDataset":
        """Clone this dataset with a different answer matrix.

        Used by the perturbation tools (sparsify / spammer injection), which
        modify answers but keep truth and metadata intact.  ``worker_types``
        is preserved only when the worker space is unchanged.
        """
        same_workers = answers.n_workers == self.answers.n_workers
        return CrowdDataset(
            name=self.name + suffix,
            answers=answers,
            truth=self.truth,
            label_names=self.label_names,
            worker_types=self.worker_types if same_workers else None,
            item_clusters=self.item_clusters,
            extras=dict(self.extras),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrowdDataset({self.name!r}, items={self.n_items}, "
            f"workers={self.n_workers}, labels={self.n_labels}, "
            f"answers={self.n_answers}, truth={len(self.truth)})"
        )
