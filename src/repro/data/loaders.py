"""Dataset persistence: JSON round-trips and a flat CSV answer format.

Two formats are supported:

* **JSON** — the full :class:`~repro.data.dataset.CrowdDataset` including
  ground truth and provenance metadata; lossless round-trip.
* **CSV** — answers only, one row per ``(item, worker)`` pair with labels
  joined by ``|``; the interchange format used when importing answers from
  external crowdsourcing platforms.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Union

from repro.data.answers import AnswerMatrix
from repro.data.dataset import CrowdDataset, GroundTruth
from repro.errors import DataFormatError

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def dataset_to_dict(dataset: CrowdDataset) -> Dict[str, object]:
    """Serialise ``dataset`` to a JSON-compatible dictionary."""
    answers = [
        {"item": a.item, "worker": a.worker, "labels": sorted(a.labels)}
        for a in dataset.answers.iter_answers()
    ]
    truth = {str(item): sorted(labels) for item, labels in dataset.truth.items()}
    return {
        "format_version": _FORMAT_VERSION,
        "name": dataset.name,
        "n_items": dataset.n_items,
        "n_workers": dataset.n_workers,
        "n_labels": dataset.n_labels,
        "answers": answers,
        "truth": truth,
        "label_names": dataset.label_names,
        "worker_types": dataset.worker_types,
        "item_clusters": dataset.item_clusters,
    }


def dataset_from_dict(payload: Dict[str, object]) -> CrowdDataset:
    """Rebuild a :class:`CrowdDataset` from :func:`dataset_to_dict` output."""
    try:
        version = payload["format_version"]
        if version != _FORMAT_VERSION:
            raise DataFormatError(f"unsupported dataset format version: {version}")
        n_items = int(payload["n_items"])  # type: ignore[arg-type]
        n_workers = int(payload["n_workers"])  # type: ignore[arg-type]
        n_labels = int(payload["n_labels"])  # type: ignore[arg-type]
        matrix = AnswerMatrix(n_items, n_workers, n_labels)
        for record in payload["answers"]:  # type: ignore[union-attr]
            matrix.add(record["item"], record["worker"], record["labels"])
        truth = GroundTruth(n_items, n_labels)
        for item, labels in payload["truth"].items():  # type: ignore[union-attr]
            truth.set(int(item), labels)
        item_clusters = payload.get("item_clusters")
        return CrowdDataset(
            name=str(payload["name"]),
            answers=matrix,
            truth=truth,
            label_names=payload.get("label_names"),  # type: ignore[arg-type]
            worker_types=payload.get("worker_types"),  # type: ignore[arg-type]
            item_clusters=list(item_clusters) if item_clusters is not None else None,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataFormatError(f"malformed dataset payload: {exc}") from exc


def save_dataset_json(dataset: CrowdDataset, path: PathLike) -> None:
    """Write ``dataset`` to ``path`` as JSON."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(dataset_to_dict(dataset), handle)


def load_dataset_json(path: PathLike) -> CrowdDataset:
    """Read a dataset previously written by :func:`save_dataset_json`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as exc:
        raise DataFormatError(f"{path} is not valid JSON: {exc}") from exc
    return dataset_from_dict(payload)


def write_answers_csv(matrix: AnswerMatrix, path: PathLike) -> None:
    """Write answers as CSV rows ``item,worker,label|label|...``."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["item", "worker", "labels"])
        for answer in matrix.iter_answers():
            writer.writerow(
                [answer.item, answer.worker, "|".join(str(lab) for lab in sorted(answer.labels))]
            )


def read_answers_csv(
    path: PathLike, n_items: int, n_workers: int, n_labels: int
) -> AnswerMatrix:
    """Read a CSV written by :func:`write_answers_csv` into a matrix.

    The caller supplies the index-space sizes since the CSV carries only the
    observed answers.
    """
    path = Path(path)
    matrix = AnswerMatrix(n_items, n_workers, n_labels)
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["item", "worker", "labels"]:
            raise DataFormatError(f"{path}: unexpected CSV header {header}")
        for line_no, row in enumerate(reader, start=2):
            if len(row) != 3:
                raise DataFormatError(f"{path}:{line_no}: expected 3 columns, got {len(row)}")
            try:
                labels = [int(part) for part in row[2].split("|") if part]
                matrix.add(int(row[0]), int(row[1]), labels)
            except (ValueError, DataFormatError) as exc:
                raise DataFormatError(f"{path}:{line_no}: {exc}") from exc
    return matrix
