"""Data substrate: answer matrices, crowd datasets, persistence, statistics.

This package implements the problem-setting objects of paper §2.2: the
``I × U`` answer matrix ``M`` whose entries are label *sets* (possibly
empty), the ground-truth assignment, and the dataset container tying them to
label/worker metadata.  It also provides the dataset statistics of Table 3
and the batch streams consumed by online (SVI) inference.
"""

from repro.data.answers import Answer, AnswerMatrix
from repro.data.dataset import CrowdDataset, GroundTruth
from repro.data.loaders import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset_json,
    read_answers_csv,
    save_dataset_json,
    write_answers_csv,
)
from repro.data.statistics import DatasetStatistics, compute_statistics
from repro.data.streams import AnswerBatch, AnswerStream

__all__ = [
    "Answer",
    "AnswerMatrix",
    "CrowdDataset",
    "GroundTruth",
    "dataset_from_dict",
    "dataset_to_dict",
    "load_dataset_json",
    "save_dataset_json",
    "read_answers_csv",
    "write_answers_csv",
    "DatasetStatistics",
    "compute_statistics",
    "AnswerBatch",
    "AnswerStream",
]
