"""Dataset statistics mirroring the paper's Table 3, plus structural
descriptors (label correlation, answer-distribution skew) used to verify
that the simulated scenarios exhibit the characteristics the paper reports
for its real datasets (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.data.dataset import CrowdDataset


@dataclass(frozen=True)
class DatasetStatistics:
    """Summary statistics for one dataset (rows of paper Table 3 + extras)."""

    name: str
    n_items: int
    n_labels: int
    n_questions: int
    n_workers_active: int
    n_answers: int
    answers_per_item_mean: float
    answers_per_worker_mean: float
    labels_per_answer_mean: float
    labels_per_item_truth_mean: float
    sparsity: float
    label_correlation: float
    worker_skewness: float

    def as_row(self) -> Tuple[object, ...]:
        """Row for :func:`repro.utils.tables.format_table` (Table-3 layout)."""
        return (
            self.name,
            self.n_items,
            self.n_labels,
            self.n_questions,
            self.n_workers_active,
            self.n_answers,
            self.sparsity,
            self.label_correlation,
        )

    @staticmethod
    def headers() -> Tuple[str, ...]:
        """Column headers matching :meth:`as_row`."""
        return (
            "dataset",
            "#items",
            "#labels",
            "#questions",
            "#workers",
            "#answers",
            "sparsity",
            "label-corr",
        )


def _phi_correlation(indicators: np.ndarray, top_fraction: float = 0.1) -> float:
    """Strength of the strongest label correlations (top-decile mean |phi|).

    Pairwise phi coefficients (Pearson on binaries) are computed over the
    answer-level indicator matrix; the mean of the strongest
    ``top_fraction`` of |phi| values is reported.  Averaging over *all*
    pairs would dilute thematic co-occurrence (most label pairs are
    unrelated in every dataset); the top-decile mean separates datasets
    with coherent label themes from those where labels co-occur only by
    chance — the paper's "strongly correlated" vs "little correlation"
    distinction.
    """
    if indicators.shape[0] < 2:
        return 0.0
    used = indicators.std(axis=0) > 0
    if used.sum() < 2:
        return 0.0
    sub = indicators[:, used]
    corr = np.corrcoef(sub, rowvar=False)
    c = corr.shape[0]
    upper = np.abs(corr[np.triu_indices(c, k=1)])
    upper = upper[np.isfinite(upper)]
    if upper.size == 0:
        return 0.0
    k = max(1, int(round(top_fraction * upper.size)))
    strongest = np.sort(upper)[-k:]
    return float(strongest.mean())


def _skewness(values: np.ndarray) -> float:
    """Sample skewness (Fisher-Pearson); 0 for degenerate distributions."""
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        return 0.0
    centred = values - values.mean()
    std = centred.std()
    if std == 0:
        return 0.0
    return float(np.mean(centred**3) / std**3)


def compute_statistics(dataset: CrowdDataset) -> DatasetStatistics:
    """Compute the full statistics block for ``dataset``."""
    matrix = dataset.answers
    _, workers, indicators = matrix.to_arrays()

    answered_items = matrix.answered_items()
    per_item = np.array(
        [len(matrix.workers_for_item(i)) for i in answered_items], dtype=float
    )
    worker_counts = np.bincount(workers, minlength=matrix.n_workers).astype(float)
    active = worker_counts[worker_counts > 0]

    labels_per_answer = indicators.sum(axis=1) if len(matrix) else np.zeros(0)
    truth_sizes = [len(labels) for _, labels in dataset.truth.items()]

    return DatasetStatistics(
        name=dataset.name,
        n_items=matrix.n_items,
        n_labels=matrix.n_labels,
        n_questions=len(answered_items),
        n_workers_active=int((worker_counts > 0).sum()),
        n_answers=matrix.n_answers,
        answers_per_item_mean=float(per_item.mean()) if per_item.size else 0.0,
        answers_per_worker_mean=float(active.mean()) if active.size else 0.0,
        labels_per_answer_mean=(
            float(labels_per_answer.mean()) if labels_per_answer.size else 0.0
        ),
        labels_per_item_truth_mean=(
            float(np.mean(truth_sizes)) if truth_sizes else 0.0
        ),
        sparsity=matrix.sparsity(),
        label_correlation=_phi_correlation(indicators),
        worker_skewness=_skewness(active) if active.size else 0.0,
    )


def statistics_table(datasets: List[CrowdDataset]) -> str:
    """Render the Table-3-style statistics table for several datasets."""
    from repro.utils.tables import format_table

    rows = [compute_statistics(d).as_row() for d in datasets]
    return format_table(DatasetStatistics.headers(), rows, title="Dataset statistics")
