"""Always-on consensus serving atop SVI (DESIGN.md §6 "Serving").

Every other entry point in the library is a batch run; this module keeps a
CPA posterior *alive*.  Answers arrive continuously as
:class:`~repro.data.streams.AnswerBatch` objects, the SVI engine
(:class:`~repro.core.svi.StochasticInference`) folds them in as
natural-gradient steps, and item-consensus / label-probability queries are
answered from the live posterior between steps — the paper's own arrival
model (§4.1) turned into a daemon.

Three layers, so each is testable on its own:

* :class:`ConsensusEngine` — the socket-free serving core: an ingest
  queue, the SVI engine, the accumulated answer matrix queries read
  from, lazily recomputed consensus, staleness/latency metrics, and
  snapshot/restore (built on :mod:`repro.core.checkpoint`, extended with
  the accumulated answers so a restored replica can answer queries about
  items it never re-ingested).  Mid-stream growth of the item / worker /
  label spaces is absorbed transparently on ingest.
* :class:`ConsensusServer` — :class:`~repro.utils.transport.WorkerServer`
  with serving ops layered over the shared wire protocol (same framing,
  same chunk-store ops, same shutdown semantics).  One daemon thread per
  connection; the engine lock serializes posterior access.
* :class:`ServeClient` / :func:`ship_checkpoint` — the client side.
  ``ship_checkpoint`` refreshes a replica over the content-addressed
  chunk store: probe → ship missing chunks → assemble → restore, so a
  refresh after a few SVI steps costs chunk-*delta* bytes, not a full
  posterior (the PR 6 broadcast re-arm path, pointed at checkpoints).

Wire ops added on top of the worker protocol (all framed like any other
request; see :mod:`repro.utils.transport` for the envelope):

==========================================  ===============================
request                                     reply value
==========================================  ===============================
``("ingest", batch)``                       metrics dict (post-ingest)
``("step", max_batches)``                   number of SVI steps folded
``("predict", items_or_None)``              ``{item: [label, ...]}``
``("proba", items_or_None)``                ``(items, ndarray)`` rows
``("status",)``                             metrics dict
``("snapshot",)``                           full snapshot payload (dict)
``("restore", payload)``                    metrics dict (post-restore)
``("restore_key", key)``                    metrics dict — restore from a
                                            chunk-assembled registry
                                            payload (ship_checkpoint path)
==========================================  ===============================

Run a daemon with ``python -m repro.serve --listen host:port --items I
--workers U --labels C`` (see ``--help`` for warm-start and engine
options).
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.checkpoint import payload_meta
from repro.core.config import CPAConfig
from repro.core.consensus import ClusterConsensus, estimate_consensus
from repro.core.prediction import label_probabilities, predict_items
from repro.core.svi import StochasticInference
from repro.data.answers import AnswerMatrix
from repro.data.streams import AnswerBatch, split_batch
from repro.errors import CheckpointError, TransportError, ValidationError
from repro.utils.random import Seed
from repro.utils.transport import (
    Channel,
    ChunksMissing,
    StaleBroadcast,
    WorkerServer,
    chunk_digest,
    connect,
    dumps,
    handle_request,
    parse_address,
    request,
    split_chunks,
)

#: Registry key a shipped checkpoint is assembled under.
CHECKPOINT_KEY = "consensus-checkpoint"

#: Chunk size for checkpoint shipping.  Far below the 4 MiB broadcast
#: default on purpose: a checkpoint delta after a small SVI step is a
#: scatter of touched ``ϕ``/``µ`` rows (a few hundred bytes each), and a
#: changed byte poisons its whole chunk — at 4 MiB nearly every snapshot
#: chunk would differ, at 2 KiB only the chunks covering touched rows do
#: (a poisoned chunk costs ~2 KiB instead of ~4 KiB, and the extra digest
#: traffic is 16 bytes per chunk — noise next to the array payload).
DEFAULT_CHECKPOINT_CHUNK_BYTES = 2 << 10


class ConsensusEngine:
    """Socket-free serving core: ingest queue + SVI engine + query surface.

    Thread-safe: every public method takes the engine lock, so the
    server may serve ingest, step, and query requests from concurrent
    connections.  Folding is explicit (:meth:`step`) — the server decides
    *when* to fold (by default after every ingest), the engine only keeps
    the books: ``answers_seen`` counts ingested answers, ``answers_applied``
    counts folded ones, and their difference is the staleness metric
    ``answers_behind``.
    """

    def __init__(
        self,
        config: CPAConfig,
        n_items: int,
        n_workers: int,
        n_labels: int,
        *,
        seed: Seed = None,
        total_answers_hint: Optional[int] = None,
    ) -> None:
        self.config = config
        self.engine = StochasticInference(
            config,
            n_items,
            n_workers,
            n_labels,
            seed=seed,
            total_answers_hint=total_answers_hint,
        )
        self.answers = AnswerMatrix(n_items, n_workers, n_labels)
        self._pending: Deque[AnswerBatch] = deque()
        self._lock = threading.RLock()
        self.answers_seen = 0
        self.answers_applied = 0
        self._consensus: Optional[ClusterConsensus] = None
        self._query_count = 0
        self._query_seconds_total = 0.0
        self._query_seconds_last = 0.0
        self._steps_since_snapshot = 0
        self._snapshot_clock = time.monotonic()

    # ----------------------------------------------------------- ingest/fold

    def ingest(self, batch: AnswerBatch) -> Dict[str, Any]:
        """Enqueue one arrival batch; grows the index spaces if needed."""
        if not isinstance(batch, AnswerBatch):
            raise ValidationError(
                f"ingest expects an AnswerBatch, got {type(batch).__name__}"
            )
        with self._lock:
            matrix = batch.matrix
            if (
                matrix.n_items > self.engine.n_items
                or matrix.n_workers > self.engine.n_workers
                or matrix.n_labels > self.engine.n_labels
            ):
                self.grow(
                    max(matrix.n_items, self.engine.n_items),
                    max(matrix.n_workers, self.engine.n_workers),
                    max(matrix.n_labels, self.engine.n_labels),
                )
            self._pending.append(batch)
            self.answers_seen += batch.n_answers
            return self.metrics()

    def step(self, max_batches: int = 0) -> int:
        """Fold pending arrival batches into the posterior.

        Each arrival batch is split to the engine's per-step size
        (``config.svi_batch_answers``, the paper's 100) and folded as that
        many natural-gradient steps; its answers join the accumulated
        matrix queries read from.  ``max_batches`` bounds how many
        *arrival* batches are folded (0 = drain the queue).  Returns the
        number of SVI steps taken.
        """
        steps = 0
        folded = 0
        with self._lock:
            while self._pending and (max_batches <= 0 or folded < max_batches):
                batch = self._pending.popleft()
                for sub in split_batch(batch, self.config.svi_batch_answers):
                    self.engine.process_batch(sub)
                    steps += 1
                for item, worker in batch.pairs:
                    labels = batch.matrix.get(item, worker)
                    assert labels is not None
                    self.answers.add(item, worker, labels)
                self.answers_applied += batch.n_answers
                folded += 1
            if steps:
                self._consensus = None
                self._steps_since_snapshot += steps
        return steps

    def grow(self, n_items: int, n_workers: int, n_labels: int) -> None:
        """Widen the index spaces mid-stream (state, answers, and engine)."""
        with self._lock:
            self.engine.grow(n_items, n_workers, n_labels)
            self.answers = self.answers.resized(n_items, n_workers, n_labels)
            self._consensus = None

    # -------------------------------------------------------------- queries

    def consensus(self) -> ClusterConsensus:
        """The cluster consensus of the live posterior (lazily recomputed)."""
        with self._lock:
            if self._consensus is None:
                self._consensus = estimate_consensus(
                    self.engine.state, self.config, self.answers
                )
            return self._consensus

    def predict(
        self, items: Optional[Sequence[int]] = None
    ) -> Dict[int, List[int]]:
        """MAP label sets from the live posterior (timed for metrics)."""
        with self._lock:
            started = time.perf_counter()
            details = predict_items(
                self.engine.state,
                self.consensus(),
                self.answers,
                self.config,
                items=items,
            )
            self._record_query(time.perf_counter() - started)
            return {item: sorted(d.labels) for item, d in details.items()}

    def label_probabilities(
        self, items: Optional[Sequence[int]] = None
    ) -> Tuple[List[int], np.ndarray]:
        """Per-label inclusion probabilities; returns ``(items, rows)``."""
        with self._lock:
            started = time.perf_counter()
            if items is None:
                items = self.answers.answered_items()
            items = [int(i) for i in items]
            probs = label_probabilities(
                self.engine.state,
                self.consensus(),
                self.answers,
                self.config,
                items=items,
            )
            self._record_query(time.perf_counter() - started)
            return items, probs

    def _record_query(self, seconds: float) -> None:
        self._query_count += 1
        self._query_seconds_total += seconds
        self._query_seconds_last = seconds

    def metrics(self) -> Dict[str, Any]:
        """Staleness/latency bookkeeping (the ``status`` wire reply)."""
        with self._lock:
            return {
                "n_items": self.engine.n_items,
                "n_workers": self.engine.n_workers,
                "n_labels": self.engine.n_labels,
                "answers_seen": self.answers_seen,
                "answers_applied": self.answers_applied,
                "answers_behind": self.answers_seen - self.answers_applied,
                "pending_batches": len(self._pending),
                "batches_seen": self.engine.state.batches_seen,
                "queries": self._query_count,
                "query_seconds_total": self._query_seconds_total,
                "query_seconds_last": self._query_seconds_last,
                "snapshot_age_steps": self._steps_since_snapshot,
                "snapshot_age_seconds": time.monotonic() - self._snapshot_clock,
            }

    # ------------------------------------------------------------ snapshots

    def snapshot_payload(self) -> Dict[str, Any]:
        """Serializable snapshot: checkpoint payload + accumulated answers.

        Extends the :mod:`repro.core.checkpoint` payload (whose loader
        ignores unknown keys) with the accumulated answer matrix and the
        serving counters, so a restored replica serves queries about every
        item the snapshot had seen.  The answer entries ride *after* the
        parameter arrays in insertion order, keeping the big arrays at
        stable byte offsets between snapshots — that is what makes
        chunk-level dedup effective (:func:`ship_checkpoint`).

        Pure construction: the ``snapshot_age_*`` metrics are *not*
        touched — a monitoring pull or a bootstrapping replica reading
        the payload must not make the writer look freshly snapshotted.
        The path that durably captured the snapshot calls
        :meth:`mark_snapshot` afterwards.
        """
        with self._lock:
            payload = self.engine.checkpoint()
            payload["answers"] = {
                "n_items": self.answers.n_items,
                "n_workers": self.answers.n_workers,
                "n_labels": self.answers.n_labels,
                "entries": {
                    (a.item, a.worker): tuple(sorted(a.labels))
                    for a in self.answers.iter_answers()
                },
            }
            payload["answers_seen"] = self.answers_seen
            payload["answers_applied"] = self.answers_applied
            return payload

    def mark_snapshot(self) -> None:
        """Reset the snapshot-age clock: a snapshot of this posterior was
        durably captured (shipped to the replica fleet, written to disk).

        Kept separate from :meth:`snapshot_payload` on purpose: any
        connection may *pull* a snapshot read-only, and those pulls must
        not zero ``snapshot_age_steps``/``snapshot_age_seconds`` — the
        metrics answer "how much would a crash lose", which only an
        actually-retained snapshot changes."""
        with self._lock:
            self._steps_since_snapshot = 0
            self._snapshot_clock = time.monotonic()

    def restore(self, payload: Dict[str, Any]) -> None:
        """Adopt a snapshot payload (posterior, answers, counters).

        Accepts both payload shapes — a full serving snapshot
        (:meth:`snapshot_payload`) and a bare :mod:`repro.core.checkpoint`
        payload (the documented ``--checkpoint`` warm-start format).
        Either way the snapshot's index spaces must not exceed the
        engine's; the guard runs up front for both shapes, before any
        serving state is replaced.  When the payload carries no serving
        counters, ``answers_seen``/``answers_applied`` are derived from
        the answer matrix actually being served after the restore, so
        ``answers_behind`` cannot inherit a previous life's counts.
        """
        with self._lock:
            meta = payload_meta(payload)
            if (
                meta.n_items > self.engine.n_items
                or meta.n_workers > self.engine.n_workers
                or meta.n_labels > self.engine.n_labels
            ):
                raise CheckpointError(
                    "snapshot is larger than the serving engine; start "
                    "the daemon with at least the snapshot's index sizes"
                )
            answers_meta = payload.get("answers")
            if answers_meta is not None:
                restored = AnswerMatrix.from_mapping(
                    self.engine.n_items,
                    self.engine.n_workers,
                    self.engine.n_labels,
                    answers_meta["entries"],
                )
                self.answers = restored
            self.engine.restore(payload)
            self.answers_seen = int(
                payload.get("answers_seen", self.answers.n_answers)
            )
            self.answers_applied = int(
                payload.get("answers_applied", self.answers.n_answers)
            )
            self._pending.clear()
            self._consensus = None
            self._steps_since_snapshot = 0
            self._snapshot_clock = time.monotonic()


class ConsensusServer(WorkerServer):
    """The serving daemon: consensus ops layered on the worker protocol.

    Inherits the framing loop, the payload registry, and every base op
    (ping, broadcast/chunk store, shutdown) from
    :class:`~repro.utils.transport.WorkerServer`; adds the serving ops of
    the module docstring.  ``auto_step`` (default) folds the queue after
    every ingest, so queries always see the freshest posterior; switch it
    off to batch folds explicitly via the ``step`` op and observe
    non-zero ``answers_behind``.

    ``read_only`` turns the daemon into a fleet *read replica*
    (:mod:`repro.fleet`): ``ingest``/``step`` are refused loudly — the
    single writer owns the stream and replicas only ever change state
    through the checkpoint-refresh path (``restore``/``restore_key``),
    which keeps every replica bitwise-identical to the snapshot it was
    last shipped.
    """

    def __init__(
        self,
        engine: ConsensusEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        auto_step: bool = True,
        read_only: bool = False,
        payload_cap: int = 8,
        chunk_cache_bytes: int = 256 << 20,
    ) -> None:
        super().__init__(
            host, port, payload_cap=payload_cap, chunk_cache_bytes=chunk_cache_bytes
        )
        self.engine = engine
        self.auto_step = auto_step
        self.read_only = read_only

    def handle(self, message: Any) -> Tuple:
        if not isinstance(message, tuple) or not message:
            return handle_request(message, self.registry)
        op = message[0]
        try:
            if self.read_only and op in ("ingest", "step"):
                raise ValidationError(
                    f"{op!r} refused: this daemon is a read replica; "
                    "answers go to the fleet's writer"
                )
            if op == "ingest":
                self.engine.ingest(message[1])
                if self.auto_step:
                    self.engine.step()
                return ("ok", self.engine.metrics())
            if op == "step":
                max_batches = int(message[1]) if len(message) > 1 else 0
                return ("ok", self.engine.step(max_batches))
            if op == "predict":
                items = message[1] if len(message) > 1 else None
                return ("ok", self.engine.predict(items))
            if op == "proba":
                items = message[1] if len(message) > 1 else None
                return ("ok", self.engine.label_probabilities(items))
            if op == "status":
                return ("ok", self.engine.metrics())
            if op == "snapshot":
                return ("ok", self.engine.snapshot_payload())
            if op == "restore":
                self.engine.restore(message[1])
                return ("ok", self.engine.metrics())
            if op == "restore_key":
                key = message[1] if len(message) > 1 else CHECKPOINT_KEY
                try:
                    payload = self.registry.get(key)
                except KeyError:
                    return ("stale", key)
                self.engine.restore(payload)
                return ("ok", self.engine.metrics())
        except Exception as exc:  # noqa: BLE001 - forwarded to the client
            import traceback

            tb_text = traceback.format_exc()
            try:
                dumps(exc)
                return ("err", exc, tb_text)
            except Exception:  # noqa: BLE001 - unpicklable error ships as repr
                return ("err", repr(exc), tb_text)
        return handle_request(message, self.registry)


@dataclass(frozen=True)
class ShipReport:
    """Byte accounting of one :func:`ship_checkpoint` refresh."""

    total_bytes: int  # full snapshot blob size
    shipped_bytes: int  # chunk bytes that actually crossed the wire
    n_chunks: int  # chunks in the snapshot
    n_shipped: int  # chunks the replica was missing

    @property
    def delta_ratio(self) -> float:
        """Shipped fraction of the full snapshot (0 = perfect dedup)."""
        return self.shipped_bytes / self.total_bytes if self.total_bytes else 0.0


def ship_checkpoint(
    channel: Channel,
    blob: bytes,
    *,
    key: str = CHECKPOINT_KEY,
    chunk_bytes: int = DEFAULT_CHECKPOINT_CHUNK_BYTES,
    timeout: Optional[float] = None,
    restore: bool = True,
) -> ShipReport:
    """Refresh a replica's checkpoint over the content-addressed chunk store.

    ``blob`` is a pickled snapshot payload (``dumps(snapshot_payload())``).
    The probe → ship-missing → assemble path mirrors the broadcast
    re-arm of :class:`~repro.utils.parallel.RemoteExecutor`: the replica
    reports which content chunks it already holds from the *previous*
    snapshot, only the changed chunks cross the wire, and the assembled
    payload is adopted via the ``restore_key`` op (unless ``restore``
    is false, which leaves it armed in the registry).  Returns the byte
    accounting the serving benchmark records.
    """
    chunks = split_chunks(blob, chunk_bytes)
    digests = [chunk_digest(chunk) for chunk in chunks]
    by_digest = dict(zip(digests, chunks))
    missing = request(channel, ("chunk_probe", digests), timeout=timeout)
    shipped_bytes = 0
    for digest in missing:
        data = by_digest[digest]
        request(channel, ("chunk_put", digest, data), timeout=timeout)
        shipped_bytes += len(data)

    def assemble() -> None:
        nonlocal shipped_bytes
        try:
            request(channel, ("chunk_assemble", key, digests), timeout=timeout)
        except ChunksMissing as exc:
            # evicted between probe and assemble: one bounded re-ship, no loop
            for digest in exc.digests:
                data = by_digest[digest]
                request(channel, ("chunk_put", digest, data), timeout=timeout)
                shipped_bytes += len(data)
            request(channel, ("chunk_assemble", key, digests), timeout=timeout)

    assemble()
    if restore:
        try:
            request(channel, ("restore_key", key), timeout=timeout)
        except StaleBroadcast:
            # The assembled payload was LRU-evicted between assemble and
            # restore (concurrent broadcast churn on a small payload cap).
            # The chunks are still (mostly) resident, so re-assembling and
            # retrying once is cheap; a second eviction is a configuration
            # problem and the StaleBroadcast escapes loudly.
            assemble()
            request(channel, ("restore_key", key), timeout=timeout)
    return ShipReport(
        total_bytes=len(blob),
        shipped_bytes=shipped_bytes,
        n_chunks=len(chunks),
        n_shipped=len(missing),
    )


class ServeClient:
    """Typed client for one :class:`ConsensusServer` connection."""

    def __init__(self, address: str, timeout: Optional[float] = 30.0) -> None:
        host, port = parse_address(address)
        self.address = address
        self.timeout = timeout
        self._channel = connect(host, port)

    def _request(self, message: Tuple) -> Any:
        return request(self._channel, message, timeout=self.timeout)

    def ingest(self, batch: AnswerBatch) -> Dict[str, Any]:
        return self._request(("ingest", batch))

    def step(self, max_batches: int = 0) -> int:
        return self._request(("step", max_batches))

    def predict(
        self, items: Optional[Sequence[int]] = None
    ) -> Dict[int, List[int]]:
        return self._request(("predict", items))

    def label_probabilities(
        self, items: Optional[Sequence[int]] = None
    ) -> Tuple[List[int], np.ndarray]:
        return self._request(("proba", items))

    def status(self) -> Dict[str, Any]:
        return self._request(("status",))

    def ping(self) -> str:
        """Round-trip the shared ``ping`` op; returns ``"pong"``.

        Liveness probe for supervisors: it exercises the full framed
        request path without touching the engine."""
        return self._request(("ping",))

    def snapshot(self) -> Dict[str, Any]:
        """Pull the full snapshot payload (no chunk dedup — see
        :func:`ship_checkpoint` for the cheap refresh direction)."""
        return self._request(("snapshot",))

    def restore(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._request(("restore", payload))

    def push_checkpoint(
        self,
        blob: bytes,
        *,
        key: str = CHECKPOINT_KEY,
        chunk_bytes: int = DEFAULT_CHECKPOINT_CHUNK_BYTES,
    ) -> ShipReport:
        return ship_checkpoint(
            self._channel,
            blob,
            key=key,
            chunk_bytes=chunk_bytes,
            timeout=self.timeout,
        )

    def shutdown(self) -> None:
        """Ask the daemon to stop.  Best-effort on the ack: a daemon
        exiting right after the shutdown op may reset the connection
        before the reply is drained, which is still a successful stop."""
        try:
            self._request(("shutdown",))
        except TransportError:
            pass

    def close(self) -> None:
        self._channel.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ------------------------------------------------------------------- CLI


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=(
            "Long-lived consensus serving daemon: folds arriving answer "
            "batches into a stochastic-VI posterior and answers "
            "item-consensus / label-probability queries from the live "
            "posterior between steps.  Speaks the repro worker wire "
            "protocol plus the serving ops (ingest/step/predict/proba/"
            "status/snapshot/restore); checkpoints ship cheaply over the "
            "content-addressed chunk store (see repro.serve.ship_checkpoint)."
        ),
    )
    parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        help="host:port to listen on (port 0 = ephemeral; default %(default)s)",
    )
    parser.add_argument(
        "--items", type=int, required=True, help="item index-space size I"
    )
    parser.add_argument(
        "--workers", type=int, required=True, help="worker index-space size U"
    )
    parser.add_argument(
        "--labels", type=int, required=True, help="label index-space size C"
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        help="warm-start from this checkpoint file (repro.core.checkpoint format)",
    )
    parser.add_argument(
        "--save-checkpoint",
        default=None,
        help="write a snapshot to this file on graceful shutdown",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="engine seed (default %(default)s)"
    )
    parser.add_argument(
        "--dtype",
        choices=("float64", "float32"),
        default="float64",
        help="posterior dtype (default %(default)s)",
    )
    parser.add_argument(
        "--step-answers",
        type=int,
        default=100,
        help="SVI step size in answers — arrival batches are split to this "
        "(the paper's 100; default %(default)s)",
    )
    parser.add_argument(
        "--total-answers-hint",
        type=int,
        default=None,
        help="expected total answers of the stream (sets the SVI gradient "
        "scale; recommended for answer-count batching)",
    )
    parser.add_argument(
        "--no-auto-step",
        action="store_true",
        help="do not fold after every ingest; folding then only happens on "
        "explicit 'step' requests (lets answers_behind grow)",
    )
    parser.add_argument(
        "--read-only",
        action="store_true",
        help="serve as a fleet read replica: refuse ingest/step, accept "
        "queries and checkpoint refreshes (see repro.fleet)",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        help="write the bound 'host:port' here once listening (lets scripts "
        "use an ephemeral port)",
    )
    parser.add_argument(
        "--payload-cap",
        type=int,
        default=8,
        help="resident broadcast payloads kept (default %(default)s)",
    )
    parser.add_argument(
        "--chunk-cache-mb",
        type=int,
        default=256,
        help="chunk-store cache budget in MiB (default %(default)s)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    host, port = parse_address(args.listen)
    config = CPAConfig(
        seed=args.seed, dtype=args.dtype, svi_batch_answers=args.step_answers
    )
    engine = ConsensusEngine(
        config,
        args.items,
        args.workers,
        args.labels,
        seed=args.seed,
        total_answers_hint=args.total_answers_hint,
    )
    if args.checkpoint:
        with open(args.checkpoint, "rb") as handle:
            import pickle

            engine.restore(pickle.loads(handle.read()))
    server = ConsensusServer(
        engine,
        host,
        port,
        auto_step=not args.no_auto_step,
        read_only=args.read_only,
        payload_cap=args.payload_cap,
        chunk_cache_bytes=args.chunk_cache_mb << 20,
    )
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(server.address)
    print(f"consensus server listening on {server.address}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if args.save_checkpoint:
            with open(args.save_checkpoint, "wb") as handle:
                handle.write(dumps(engine.snapshot_payload()))
            engine.mark_snapshot()
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
