"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors.  Warning categories for non-fatal conditions
(e.g. an inference run that hits its iteration cap) are also defined here.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DataFormatError(ReproError):
    """An input file, matrix, or record does not match the expected format."""


class ValidationError(ReproError, ValueError):
    """A function argument violates its documented contract."""


class ConfigurationError(ValidationError):
    """A configuration value selects an unknown backend, executor, or mode.

    Subclass of :class:`ValidationError` so existing ``except`` clauses keep
    working; raised where the invalid value came from configuration (an
    executor ``kind``, a ``CPAConfig.backend``) rather than from data.
    """


class InferenceError(ReproError):
    """Model inference failed irrecoverably (e.g. non-finite parameters)."""


class PredictionError(ReproError):
    """Label-set prediction was requested from an unfitted or broken model."""


class NotFittedError(PredictionError):
    """An estimator method requiring a fitted model was called before fit."""


class ExperimentError(ReproError):
    """An experiment module was misconfigured or referenced an unknown id."""


class ConvergenceWarning(UserWarning):
    """Inference stopped at the iteration cap before meeting its tolerance."""


class NumericalWarning(UserWarning):
    """A numerically delicate quantity was clamped to keep inference stable."""
