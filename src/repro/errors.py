"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors.  Warning categories for non-fatal conditions
(e.g. an inference run that hits its iteration cap) are also defined here.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DataFormatError(ReproError):
    """An input file, matrix, or record does not match the expected format."""


class ValidationError(ReproError, ValueError):
    """A function argument violates its documented contract."""


class ConfigurationError(ValidationError):
    """A configuration value selects an unknown backend, executor, or mode.

    Subclass of :class:`ValidationError` so existing ``except`` clauses keep
    working; raised where the invalid value came from configuration (an
    executor ``kind``, a ``CPAConfig.backend``) rather than from data.
    """


class TransportError(ReproError, ConnectionError):
    """A remote lane's network channel failed (closed, truncated, refused).

    Subclass of :class:`ConnectionError` so network-aware callers can treat
    it like any other connection failure; raised by the length-prefixed
    framing layer (:mod:`repro.utils.transport`) and by
    :class:`~repro.utils.parallel.RemoteExecutor` when every lane is gone.
    """


class WorkerFailure(ReproError):
    """A remote worker daemon reported an exception while running a task.

    Carries the remote traceback text so the failure site on the worker is
    visible from the client; distinct from :class:`TransportError` — the
    channel is healthy, the *task* failed.
    """

    def __init__(self, message: str, remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback


class CheckpointError(ReproError):
    """A serialized CPAState checkpoint is unreadable or incompatible.

    Raised by :mod:`repro.core.checkpoint` on magic/version mismatches,
    corrupted payloads, and growth requests that would *shrink* an index
    space (checkpoints only ever grow into a larger engine).
    """


class InferenceError(ReproError):
    """Model inference failed irrecoverably (e.g. non-finite parameters)."""


class PredictionError(ReproError):
    """Label-set prediction was requested from an unfitted or broken model."""


class NotFittedError(PredictionError):
    """An estimator method requiring a fitted model was called before fit."""


class ExperimentError(ReproError):
    """An experiment module was misconfigured or referenced an unknown id."""


class AnalysisError(ReproError):
    """The static-analysis pass (:mod:`repro.analysis`) cannot run.

    Raised for unparseable sources, malformed baseline files, and unknown
    rule ids — infrastructure failures of the analyzer itself, distinct
    from the findings it reports (findings are data, not exceptions)."""


class ConvergenceWarning(UserWarning):
    """Inference stopped at the iteration cap before meeting its tolerance."""


class NumericalWarning(UserWarning):
    """A numerically delicate quantity was clamped to keep inference stable."""
