"""CPA behind the aggregator interface, plus the §5.4 ablations.

* :class:`CPAAggregator` — the full model;
* :class:`NoCommunitiesAggregator` (`No Z`) — "removes the community
  structure … each worker is a singleton community";
* :class:`NoClustersAggregator` (`No L`) — "removes the item cluster
  structure … each item represents a singleton cluster", which in the
  paper requires the ``2^C`` exhaustive subset search and is therefore run
  with exhaustive prediction when the label space permits.

The paper's finding these classes let us reproduce (Fig 8): `No Z` loses
precision (no spammer isolation), `No L` loses recall (no co-occurrence
completion), the full model dominates both.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import Aggregator, PredictionMap
from repro.core.config import CPAConfig
from repro.core.consensus import estimate_consensus
from repro.core.inference import VariationalInference
from repro.core.model import CPAModel
from repro.core.prediction import predict_items
from repro.data.dataset import CrowdDataset


class CPAAggregator(Aggregator):
    """The full CPA model behind the common aggregator interface."""

    name = "CPA"

    def __init__(self, config: Optional[CPAConfig] = None) -> None:
        self.config = config or CPAConfig()
        self.last_model: Optional[CPAModel] = None

    def aggregate(self, dataset: CrowdDataset) -> PredictionMap:
        model = CPAModel(self.config).fit(dataset.answers)
        self.last_model = model
        return model.predict()


class _AblatedAggregator(Aggregator):
    """Shared machinery for the singleton-community/cluster ablations."""

    fix_communities = False
    fix_clusters = False

    def __init__(self, config: Optional[CPAConfig] = None) -> None:
        self.config = config or CPAConfig()

    def aggregate(self, dataset: CrowdDataset) -> PredictionMap:
        config = self.config
        if self.fix_clusters:
            # With singleton clusters the consensus prior *is* the item's
            # own answers: the per-item evidence term would count the same
            # answers twice, and the default rate smoothing (calibrated
            # for pooled clusters) would swamp the tiny per-item cells.
            # `No L` therefore predicts from the literal Appendix-D
            # objective with lightly-smoothed per-item rates.
            config = config.with_overrides(
                use_item_evidence=False, consensus_smoothing=0.1
            )
        engine = VariationalInference(
            config,
            dataset.answers,
            fix_singleton_communities=self.fix_communities,
            fix_singleton_clusters=self.fix_clusters,
        )
        result = engine.run(track_elbo=False)
        consensus = estimate_consensus(result.state, engine.config, dataset.answers)
        exhaustive = (
            self.fix_clusters
            and dataset.n_labels <= engine.config.exhaustive_label_limit
        )
        details = predict_items(
            result.state,
            consensus,
            dataset.answers,
            engine.config,
            exhaustive=exhaustive,
        )
        return {item: detail.labels for item, detail in details.items()}


class NoCommunitiesAggregator(_AblatedAggregator):
    """`No Z`: every worker is its own community (paper §5.4)."""

    name = "NoZ"
    fix_communities = True


class NoClustersAggregator(_AblatedAggregator):
    """`No L`: every item is its own cluster (paper §5.4).

    The paper notes this variant "needs to compute the probability for all
    2^C possible subsets" and is intractable beyond small label spaces; we
    run the exhaustive search when ``C`` permits and fall back to the
    greedy approximation otherwise (documented deviation).
    """

    name = "NoL"
    fix_clusters = True
