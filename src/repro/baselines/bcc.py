"""Bayesian Classifier Combination (ref [51]; per-label binary form).

BCC is the Bayesian treatment of the Dawid–Skene model: worker confusion
rows and the class prevalence carry Beta priors, and inference maintains
posterior distributions instead of point estimates.  We implement the
standard mean-field variational scheme for the binary case, which reduces
to EM with digamma-corrected expectations — more robust than plain DS on
sparse data (its selling point in the paper's related work) while remaining
a per-label method that ignores label dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import digamma

from repro.baselines.base import Aggregator, PredictionMap
from repro.baselines.decomposition import (
    BinaryLabelView,
    assemble_predictions,
    binary_label_views,
)
from repro.data.dataset import CrowdDataset
from repro.errors import ValidationError
from repro.utils.math import clip_probability


@dataclass
class BCCResult:
    """Fitted binary BCC posterior for one label."""

    posterior: np.ndarray  # (I,) P(true = 1)
    sensitivity_mean: np.ndarray  # (U,) posterior-mean sensitivity
    specificity_mean: np.ndarray  # (U,)
    n_iterations: int
    converged: bool


def _beta_e_log(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(E[ln p], E[ln (1-p)])`` for ``p ~ Beta(a, b)``."""
    total = digamma(a + b)
    return digamma(a) - total, digamma(b) - total


def fit_binary_bcc(
    view: BinaryLabelView,
    *,
    prior_correct: float = 2.0,
    prior_wrong: float = 1.0,
    prior_prevalence: float = 1.0,
    max_iterations: int = 50,
    tolerance: float = 1e-4,
) -> BCCResult:
    """Variational BCC for one binary label view.

    Worker sensitivity/specificity priors are ``Beta(prior_correct,
    prior_wrong)`` — mildly optimistic, the usual BCC choice encoding that
    workers are better than chance; prevalence has a symmetric
    ``Beta(prior_prevalence, prior_prevalence)`` prior.
    """
    if prior_correct <= 0 or prior_wrong <= 0 or prior_prevalence <= 0:
        raise ValidationError("Beta priors must be strictly positive")
    items, workers, votes = view.items, view.workers, view.votes
    n_items, n_workers = view.n_items, view.n_workers

    pos = np.zeros(n_items)
    tot = np.zeros(n_items)
    np.add.at(pos, items, votes)
    np.add.at(tot, items, 1.0)
    mu = np.divide(pos, tot, out=np.full(n_items, 0.5), where=tot > 0)
    mu = clip_probability(mu, 1e-3)

    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        mu_n = mu[items]
        # --- update worker Beta posteriors --------------------------------
        tp = np.zeros(n_workers)
        pos_mass = np.zeros(n_workers)
        tn = np.zeros(n_workers)
        neg_mass = np.zeros(n_workers)
        np.add.at(tp, workers, mu_n * votes)
        np.add.at(pos_mass, workers, mu_n)
        np.add.at(tn, workers, (1 - mu_n) * (1 - votes))
        np.add.at(neg_mass, workers, 1 - mu_n)
        sens_a = prior_correct + tp
        sens_b = prior_wrong + (pos_mass - tp)
        spec_a = prior_correct + tn
        spec_b = prior_wrong + (neg_mass - tn)
        prev_a = prior_prevalence + mu.sum()
        prev_b = prior_prevalence + (n_items - mu.sum())

        # --- update item posteriors with digamma expectations -------------
        e_log_s, e_log_1ms = _beta_e_log(sens_a, sens_b)
        e_log_q, e_log_1mq = _beta_e_log(spec_a, spec_b)
        e_log_prev, e_log_1mprev = _beta_e_log(
            np.asarray(prev_a), np.asarray(prev_b)
        )
        like_pos = votes * e_log_s[workers] + (1 - votes) * e_log_1ms[workers]
        like_neg = votes * e_log_1mq[workers] + (1 - votes) * e_log_q[workers]
        score_pos = np.full(n_items, float(e_log_prev))
        score_neg = np.full(n_items, float(e_log_1mprev))
        np.add.at(score_pos, items, like_pos)
        np.add.at(score_neg, items, like_neg)
        shift = np.maximum(score_pos, score_neg)
        exp_pos = np.exp(score_pos - shift)
        exp_neg = np.exp(score_neg - shift)
        new_mu = exp_pos / (exp_pos + exp_neg)

        delta = float(np.max(np.abs(new_mu - mu)))
        mu = new_mu
        if delta < tolerance:
            converged = True
            break

    return BCCResult(
        posterior=mu,
        sensitivity_mean=sens_a / (sens_a + sens_b),
        specificity_mean=spec_a / (spec_a + spec_b),
        n_iterations=iteration,
        converged=converged,
    )


class BCCAggregator(Aggregator):
    """Per-label Bayesian Classifier Combination."""

    name = "BCC"

    def __init__(
        self,
        prior_correct: float = 2.0,
        prior_wrong: float = 1.0,
        max_iterations: int = 50,
        tolerance: float = 1e-4,
        threshold: float = 0.5,
    ) -> None:
        self.prior_correct = prior_correct
        self.prior_wrong = prior_wrong
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.threshold = threshold

    def label_posteriors(self, dataset: CrowdDataset) -> np.ndarray:
        """``(I, C)`` per-label acceptance posteriors."""
        matrix = dataset.answers
        posteriors = np.zeros((matrix.n_items, matrix.n_labels))
        for view in binary_label_views(matrix):
            result = fit_binary_bcc(
                view,
                prior_correct=self.prior_correct,
                prior_wrong=self.prior_wrong,
                max_iterations=self.max_iterations,
                tolerance=self.tolerance,
            )
            posteriors[:, view.label] = result.posterior
        return posteriors

    def aggregate(self, dataset: CrowdDataset) -> PredictionMap:
        posteriors = self.label_posteriors(dataset)
        return assemble_predictions(posteriors, dataset.answers, self.threshold)
