"""Majority voting (paper §5.1 baseline; refs [17], [18]).

"The probability to accept a label for an item is computed as the ratio of
'votes' from workers who provided an answer for an item" — note the
denominator is the number of workers who answered the *item*, not the
number who mentioned the label, so unmentioned labels count as negative
votes (the information loss of per-label decomposition)."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Aggregator, PredictionMap
from repro.baselines.decomposition import assemble_predictions
from repro.data.dataset import CrowdDataset
from repro.errors import ValidationError


class MajorityVoteAggregator(Aggregator):
    """Per-label majority voting with a configurable acceptance threshold."""

    name = "MV"

    def __init__(self, threshold: float = 0.5) -> None:
        if not 0.0 <= threshold < 1.0:
            raise ValidationError("threshold must lie in [0, 1)")
        self.threshold = threshold

    def vote_ratios(self, dataset: CrowdDataset) -> np.ndarray:
        """``(I, C)`` matrix of per-item label vote ratios."""
        matrix = dataset.answers
        items, _, indicators = matrix.to_arrays()
        votes = np.zeros((matrix.n_items, matrix.n_labels))
        np.add.at(votes, items, indicators)
        answered = np.zeros(matrix.n_items)
        np.add.at(answered, items, 1.0)
        return np.divide(
            votes,
            answered[:, None],
            out=np.zeros_like(votes),
            where=answered[:, None] > 0,
        )

    def aggregate(self, dataset: CrowdDataset) -> PredictionMap:
        ratios = self.vote_ratios(dataset)
        return assemble_predictions(ratios, dataset.answers, self.threshold)
