"""Per-label binary decomposition of partial-agreement answers.

The baseline methods treat "the multi-label problem as several instances of
a single-label problem (each worker giving a Boolean answer for a given
label)" (paper §5.1).  A :class:`BinaryLabelView` is one such instance: for
a fixed label ``c``, every recorded answer ``(i, u)`` becomes a binary vote
— 1 if the worker's label set contains ``c``, else 0.  Note the information
loss the paper highlights: *not* including a label is indistinguishable
from voting against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.answers import AnswerMatrix


@dataclass(frozen=True)
class BinaryLabelView:
    """The single-label binary instance for one label.

    Attributes
    ----------
    label:
        The label index this view binarises.
    items / workers:
        Parallel arrays over all recorded answers.
    votes:
        Parallel 0/1 array: did the answer include the label?
    n_items / n_workers:
        Index-space sizes of the underlying matrix.
    """

    label: int
    items: np.ndarray
    workers: np.ndarray
    votes: np.ndarray
    n_items: int
    n_workers: int

    @property
    def n_answers(self) -> int:
        return int(self.items.size)

    def positive_rate(self) -> float:
        """Fraction of answers voting for the label."""
        return float(self.votes.mean()) if self.votes.size else 0.0


def binary_label_views(matrix: AnswerMatrix) -> Iterator[BinaryLabelView]:
    """Yield the binary view of every label, sharing the flat answer arrays."""
    items, workers, indicators = matrix.to_arrays()
    for label in range(matrix.n_labels):
        yield BinaryLabelView(
            label=label,
            items=items,
            workers=workers,
            votes=indicators[:, label],
            n_items=matrix.n_items,
            n_workers=matrix.n_workers,
        )


def assemble_predictions(
    per_label_probability: np.ndarray, matrix: AnswerMatrix, threshold: float = 0.5
) -> dict[int, frozenset[int]]:
    """Combine per-label acceptance probabilities into label sets.

    ``per_label_probability`` is ``(I, C)``; a label enters an item's
    prediction when its probability exceeds ``threshold`` (the paper's 0.5
    rule).  Only items with at least one answer are returned.
    """
    predictions: dict[int, frozenset[int]] = {}
    for item in matrix.answered_items():
        accepted = np.flatnonzero(per_label_probability[item] > threshold)
        predictions[item] = frozenset(int(c) for c in accepted)
    return predictions
