"""Baseline aggregators and ablations (paper §5.1 "Baselines" and §5.4).

All baselines are *single-label* methods lifted to the multi-label setting
through per-label binary decomposition, exactly as the paper evaluates
them: "we regard the multi-label problem as several instances of a
single-label problem … each item is assigned with a probability of
accepting or rejecting a given label; if this probability is larger than
0.5, the respective label is included".

* :class:`MajorityVoteAggregator` — MV [17, 18];
* :class:`DawidSkeneAggregator` — EM on per-worker confusion matrices [40];
* :class:`IpeirotisAggregator` — the quality-management refinement [15]
  (cost-based spammer elimination before re-running EM);
* :class:`BCCAggregator` — Bayesian Classifier Combination [51];
* :class:`CommunityBCCAggregator` — community-based BCC [24, 25];
* :class:`CPAAggregator` — the paper's model behind the common interface;
* :class:`NoCommunitiesAggregator` / :class:`NoClustersAggregator` — the
  §5.4 `No Z` / `No L` ablations.
"""

from repro.baselines.ablations import (
    CPAAggregator,
    NoClustersAggregator,
    NoCommunitiesAggregator,
)
from repro.baselines.base import Aggregator, PredictionMap
from repro.baselines.bcc import BCCAggregator
from repro.baselines.cbcc import CommunityBCCAggregator
from repro.baselines.dawid_skene import DawidSkeneAggregator
from repro.baselines.decomposition import BinaryLabelView, binary_label_views
from repro.baselines.ipeirotis import IpeirotisAggregator
from repro.baselines.majority import MajorityVoteAggregator

__all__ = [
    "Aggregator",
    "PredictionMap",
    "BinaryLabelView",
    "binary_label_views",
    "MajorityVoteAggregator",
    "DawidSkeneAggregator",
    "IpeirotisAggregator",
    "BCCAggregator",
    "CommunityBCCAggregator",
    "CPAAggregator",
    "NoCommunitiesAggregator",
    "NoClustersAggregator",
]


def default_baselines() -> list[Aggregator]:
    """The paper's Table-4 baseline line-up: MV, EM, cBCC."""
    return [
        MajorityVoteAggregator(),
        DawidSkeneAggregator(),
        CommunityBCCAggregator(),
    ]
