"""Dawid–Skene EM answer aggregation (paper's "EM" baseline; ref [40]).

The classic maximum-likelihood estimator of observer error rates, run on
each label's binary decomposition.  Per label, every worker ``u`` carries a
2×2 confusion matrix summarised by sensitivity ``s_u = P(vote 1 | true 1)``
and specificity ``q_u = P(vote 0 | true 0)``; the label prevalence is
``p``.  EM alternates:

* **E-step** — posterior ``µ_i = P(true_i = 1 | votes)`` from the current
  worker parameters;
* **M-step** — maximum-likelihood ``s_u, q_u, p`` from the posteriors,
  with Laplace smoothing so single-vote workers stay well-defined.

Initialisation follows the standard practice of seeding the posteriors
with majority-vote ratios, which is also what makes the method "error
prone to user-chosen initialization" (paper §6) — a behaviour our
robustness experiments inherit faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.base import Aggregator, PredictionMap
from repro.baselines.decomposition import (
    BinaryLabelView,
    assemble_predictions,
    binary_label_views,
)
from repro.data.dataset import CrowdDataset
from repro.errors import ValidationError
from repro.utils.math import clip_probability


@dataclass
class DawidSkeneResult:
    """Fitted per-label binary DS model."""

    posterior: np.ndarray  # (I,) P(true = 1)
    sensitivity: np.ndarray  # (U,)
    specificity: np.ndarray  # (U,)
    prevalence: float
    n_iterations: int
    converged: bool


def fit_binary_dawid_skene(
    view: BinaryLabelView,
    *,
    max_iterations: int = 50,
    tolerance: float = 1e-4,
    smoothing: float = 0.5,
    worker_weights: Optional[np.ndarray] = None,
) -> DawidSkeneResult:
    """EM for one binary label view.

    ``worker_weights`` (0/1 or soft) exclude or down-weight workers — the
    hook used by the Ipeirotis spammer-elimination refinement.  Items
    without answers keep a posterior equal to the prevalence.
    """
    items, workers, votes = view.items, view.workers, view.votes
    n_items, n_workers = view.n_items, view.n_workers
    weights = (
        np.ones(items.size)
        if worker_weights is None
        else np.asarray(worker_weights, dtype=float)[workers]
    )

    # Majority-vote initialisation of the posteriors.
    pos = np.zeros(n_items)
    tot = np.zeros(n_items)
    np.add.at(pos, items, votes * weights)
    np.add.at(tot, items, weights)
    mu = np.divide(pos, tot, out=np.full(n_items, 0.5), where=tot > 0)
    mu = clip_probability(mu, 1e-3)

    sensitivity = np.full(n_workers, 0.7)
    specificity = np.full(n_workers, 0.7)
    prevalence = float(np.clip(mu.mean(), 1e-3, 1 - 1e-3))

    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        # ---- M-step -----------------------------------------------------
        mu_n = mu[items]
        tp = np.zeros(n_workers)
        pos_mass = np.zeros(n_workers)
        tn = np.zeros(n_workers)
        neg_mass = np.zeros(n_workers)
        np.add.at(tp, workers, weights * mu_n * votes)
        np.add.at(pos_mass, workers, weights * mu_n)
        np.add.at(tn, workers, weights * (1 - mu_n) * (1 - votes))
        np.add.at(neg_mass, workers, weights * (1 - mu_n))
        sensitivity = (tp + smoothing) / (pos_mass + 2 * smoothing)
        specificity = (tn + smoothing) / (neg_mass + 2 * smoothing)
        prevalence = float(np.clip(mu.mean(), 1e-3, 1 - 1e-3))

        # ---- E-step -----------------------------------------------------
        s = clip_probability(sensitivity[workers], 1e-4)
        q = clip_probability(specificity[workers], 1e-4)
        log_like_pos = weights * (votes * np.log(s) + (1 - votes) * np.log(1 - s))
        log_like_neg = weights * (votes * np.log(1 - q) + (1 - votes) * np.log(q))
        score_pos = np.full(n_items, np.log(prevalence))
        score_neg = np.full(n_items, np.log(1 - prevalence))
        np.add.at(score_pos, items, log_like_pos)
        np.add.at(score_neg, items, log_like_neg)
        shift = np.maximum(score_pos, score_neg)
        exp_pos = np.exp(score_pos - shift)
        exp_neg = np.exp(score_neg - shift)
        new_mu = exp_pos / (exp_pos + exp_neg)

        delta = float(np.max(np.abs(new_mu - mu)))
        mu = new_mu
        if delta < tolerance:
            converged = True
            break

    return DawidSkeneResult(
        posterior=mu,
        sensitivity=sensitivity,
        specificity=specificity,
        prevalence=prevalence,
        n_iterations=iteration,
        converged=converged,
    )


class DawidSkeneAggregator(Aggregator):
    """Per-label Dawid–Skene EM (the paper's "EM" baseline)."""

    name = "EM"

    def __init__(
        self,
        max_iterations: int = 50,
        tolerance: float = 1e-4,
        smoothing: float = 0.5,
        threshold: float = 0.5,
    ) -> None:
        if max_iterations <= 0:
            raise ValidationError("max_iterations must be positive")
        if tolerance <= 0:
            raise ValidationError("tolerance must be positive")
        if smoothing < 0:
            raise ValidationError("smoothing must be non-negative")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing
        self.threshold = threshold

    def label_posteriors(self, dataset: CrowdDataset) -> np.ndarray:
        """``(I, C)`` per-label acceptance posteriors."""
        matrix = dataset.answers
        posteriors = np.zeros((matrix.n_items, matrix.n_labels))
        for view in binary_label_views(matrix):
            result = fit_binary_dawid_skene(
                view,
                max_iterations=self.max_iterations,
                tolerance=self.tolerance,
                smoothing=self.smoothing,
            )
            posteriors[:, view.label] = result.posterior
        return posteriors

    def aggregate(self, dataset: CrowdDataset) -> PredictionMap:
        posteriors = self.label_posteriors(dataset)
        return assemble_predictions(posteriors, dataset.answers, self.threshold)
