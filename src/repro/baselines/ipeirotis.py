"""Ipeirotis–Provost–Wang quality management refinement (ref [15]).

The paper folds this into its "EM" baseline: each worker is penalised with
an "extra mislabelling cost".  Following the original algorithm's use on
AMT, we implement the refinement as *cost-based spammer elimination*:

1. run per-label Dawid–Skene;
2. score every worker by their expected misclassification cost — for the
   binary case, ``cost_u = 1 - (sensitivity_u + specificity_u - 1)``
   rescaled to [0, 1], i.e. 1 minus Youden's J.  A perfect worker costs 0,
   a random or constant answerer costs ≈ 1 (their votes carry no
   information regardless of bias, which is the key insight of [15]);
3. drop workers whose *label-averaged* cost exceeds a threshold and re-run
   EM on the survivors.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Aggregator, PredictionMap
from repro.baselines.dawid_skene import fit_binary_dawid_skene
from repro.baselines.decomposition import assemble_predictions, binary_label_views
from repro.data.dataset import CrowdDataset
from repro.errors import ValidationError


def youden_cost(sensitivity: np.ndarray, specificity: np.ndarray) -> np.ndarray:
    """``1 - max(J, 0)`` with Youden's ``J = sensitivity + specificity - 1``.

    Workers *below* the chance diagonal (systematically inverted answers)
    still carry usable information for EM, but [15]'s cost model treats
    them like spammers once bias is corrected out; we keep the conservative
    clamp at J = 0 so inverted workers score the maximal cost 1.
    """
    j = np.asarray(sensitivity) + np.asarray(specificity) - 1.0
    return 1.0 - np.maximum(j, 0.0)


class IpeirotisAggregator(Aggregator):
    """Dawid–Skene with cost-based spammer elimination (the [15] refinement)."""

    name = "EM+cost"

    def __init__(
        self,
        cost_threshold: float = 0.8,
        max_iterations: int = 50,
        tolerance: float = 1e-4,
        threshold: float = 0.5,
        min_survivors: int = 3,
    ) -> None:
        if not 0.0 < cost_threshold <= 1.0:
            raise ValidationError("cost_threshold must lie in (0, 1]")
        if min_survivors <= 0:
            raise ValidationError("min_survivors must be positive")
        self.cost_threshold = cost_threshold
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.threshold = threshold
        self.min_survivors = min_survivors

    def worker_costs(self, dataset: CrowdDataset) -> np.ndarray:
        """Label-averaged expected misclassification cost per worker."""
        matrix = dataset.answers
        totals = np.zeros(matrix.n_workers)
        counted = 0
        for view in binary_label_views(matrix):
            if view.votes.sum() == 0:
                continue  # label never used; confusion estimates are vacuous
            result = fit_binary_dawid_skene(
                view, max_iterations=self.max_iterations, tolerance=self.tolerance
            )
            totals += youden_cost(result.sensitivity, result.specificity)
            counted += 1
        if counted == 0:
            return np.full(matrix.n_workers, 1.0)
        return totals / counted

    def aggregate(self, dataset: CrowdDataset) -> PredictionMap:
        matrix = dataset.answers
        costs = self.worker_costs(dataset)
        keep = costs <= self.cost_threshold
        if keep.sum() < self.min_survivors:
            # Degenerate crowd: keep the cheapest workers instead of none.
            keep = np.zeros_like(keep)
            keep[np.argsort(costs)[: self.min_survivors]] = True
        weights = keep.astype(float)

        posteriors = np.zeros((matrix.n_items, matrix.n_labels))
        for view in binary_label_views(matrix):
            result = fit_binary_dawid_skene(
                view,
                max_iterations=self.max_iterations,
                tolerance=self.tolerance,
                worker_weights=weights,
            )
            posteriors[:, view.label] = result.posterior
        return assemble_predictions(posteriors, matrix, self.threshold)
