"""The common aggregator interface.

Every answer-aggregation method — the CPA model, the baselines, and the
ablations — implements :class:`Aggregator`: it consumes a
:class:`~repro.data.dataset.CrowdDataset` (the ground truth is *never*
consulted; it rides along only for evaluation) and returns the
deterministic assignment ``d : I → 2^Z`` of paper Problem 1 as a mapping
from item index to predicted label set.
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet

from repro.data.dataset import CrowdDataset

PredictionMap = Dict[int, FrozenSet[int]]


class Aggregator(abc.ABC):
    """Abstract partial-agreement answer aggregator."""

    #: short identifier used in experiment tables (e.g. ``"MV"``).
    name: str = "base"

    @abc.abstractmethod
    def aggregate(self, dataset: CrowdDataset) -> PredictionMap:
        """Predict a label set for every item that received answers.

        Implementations must not read ``dataset.truth`` (the evaluation
        protocol of paper §5.1 is fully unsupervised, ``y = ∅``).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
