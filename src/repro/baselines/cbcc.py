"""Community-based Bayesian Classifier Combination (refs [24], [25]).

cBCC extends BCC by pooling workers into *communities* that share a
confusion matrix, which stabilises worker-quality estimates under sparsity
— the strongest baseline in the paper's evaluation.  We implement the
binary per-label form as a mean-field scheme with three factor groups:

* worker community responsibilities ``r_uk`` (categorical over K
  communities with a Dirichlet prior on the mixing weights);
* community confusion Beta posteriors (sensitivity/specificity per
  community);
* item truth posteriors ``µ_i``.

As in the paper's evaluation, each label is an independent instance — a
worker may land in different communities for different labels, but no
information flows between labels (the limitation CPA removes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import digamma

from repro.baselines.base import Aggregator, PredictionMap
from repro.baselines.decomposition import (
    BinaryLabelView,
    assemble_predictions,
    binary_label_views,
)
from repro.data.dataset import CrowdDataset
from repro.errors import ValidationError
from repro.utils.math import clip_probability, log_normalize_rows
from repro.utils.random import RandomState, Seed


@dataclass
class CBCCResult:
    """Fitted binary cBCC posterior for one label."""

    posterior: np.ndarray  # (I,) P(true = 1)
    responsibilities: np.ndarray  # (U, K)
    community_sensitivity: np.ndarray  # (K,)
    community_specificity: np.ndarray  # (K,)
    n_iterations: int
    converged: bool


def _beta_e_log(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    total = digamma(a + b)
    return digamma(a) - total, digamma(b) - total


def fit_binary_cbcc(
    view: BinaryLabelView,
    *,
    n_communities: int = 5,
    prior_correct: float = 2.0,
    prior_wrong: float = 1.0,
    prior_mixing: float = 1.0,
    max_iterations: int = 60,
    tolerance: float = 1e-4,
    seed: Seed = 0,
) -> CBCCResult:
    """Mean-field cBCC for one binary label view.

    Community count is fixed (the original cBCC design; the paper contrasts
    this with CPA's nonparametric adaptivity).  Responsibilities are
    initialised by jittered random assignment to break symmetry.
    """
    if n_communities <= 0:
        raise ValidationError("n_communities must be positive")
    rng = RandomState(seed)
    items, workers, votes = view.items, view.workers, view.votes
    n_items, n_workers = view.n_items, view.n_workers
    k = n_communities

    pos = np.zeros(n_items)
    tot = np.zeros(n_items)
    np.add.at(pos, items, votes)
    np.add.at(tot, items, 1.0)
    mu = np.divide(pos, tot, out=np.full(n_items, 0.5), where=tot > 0)
    mu = clip_probability(mu, 1e-3)

    resp = log_normalize_rows(rng.random((n_workers, k)))

    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        mu_n = mu[items]
        resp_n = resp[workers]  # (N, K)

        # --- community confusion posteriors -------------------------------
        tp = resp_n.T @ (mu_n * votes)  # (K,)
        pos_mass = resp_n.T @ mu_n
        tn = resp_n.T @ ((1 - mu_n) * (1 - votes))
        neg_mass = resp_n.T @ (1 - mu_n)
        sens_a, sens_b = prior_correct + tp, prior_wrong + (pos_mass - tp)
        spec_a, spec_b = prior_correct + tn, prior_wrong + (neg_mass - tn)
        mix_counts = prior_mixing + resp.sum(axis=0)

        e_log_s, e_log_1ms = _beta_e_log(sens_a, sens_b)
        e_log_q, e_log_1mq = _beta_e_log(spec_a, spec_b)
        e_log_mix = digamma(mix_counts) - digamma(mix_counts.sum())

        # --- worker responsibilities --------------------------------------
        # log P(answer n | community k) under the current truth posterior.
        answer_ll = (
            mu_n[:, None] * (votes[:, None] * e_log_s + (1 - votes[:, None]) * e_log_1ms)
            + (1 - mu_n[:, None])
            * (votes[:, None] * e_log_1mq + (1 - votes[:, None]) * e_log_q)
        )  # (N, K)
        scores = np.tile(e_log_mix, (n_workers, 1))
        np.add.at(scores, workers, answer_ll)
        resp = log_normalize_rows(scores)

        # --- item truth posteriors -----------------------------------------
        resp_n = resp[workers]
        like_pos = resp_n @ e_log_s * votes + resp_n @ e_log_1ms * (1 - votes)
        like_neg = resp_n @ e_log_1mq * votes + resp_n @ e_log_q * (1 - votes)
        prev = float(np.clip(mu.mean(), 1e-3, 1 - 1e-3))
        score_pos = np.full(n_items, np.log(prev))
        score_neg = np.full(n_items, np.log(1 - prev))
        np.add.at(score_pos, items, like_pos)
        np.add.at(score_neg, items, like_neg)
        shift = np.maximum(score_pos, score_neg)
        exp_pos = np.exp(score_pos - shift)
        exp_neg = np.exp(score_neg - shift)
        new_mu = exp_pos / (exp_pos + exp_neg)

        delta = float(np.max(np.abs(new_mu - mu)))
        mu = new_mu
        if delta < tolerance:
            converged = True
            break

    return CBCCResult(
        posterior=mu,
        responsibilities=resp,
        community_sensitivity=sens_a / (sens_a + sens_b),
        community_specificity=spec_a / (spec_a + spec_b),
        n_iterations=iteration,
        converged=converged,
    )


class CommunityBCCAggregator(Aggregator):
    """Per-label community-based BCC (the paper's strongest baseline)."""

    name = "cBCC"

    def __init__(
        self,
        n_communities: int = 5,
        prior_correct: float = 2.0,
        prior_wrong: float = 1.0,
        max_iterations: int = 60,
        tolerance: float = 1e-4,
        threshold: float = 0.5,
        seed: int = 0,
    ) -> None:
        if n_communities <= 0:
            raise ValidationError("n_communities must be positive")
        self.n_communities = n_communities
        self.prior_correct = prior_correct
        self.prior_wrong = prior_wrong
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.threshold = threshold
        self.seed = seed

    def label_posteriors(self, dataset: CrowdDataset) -> np.ndarray:
        """``(I, C)`` per-label acceptance posteriors."""
        matrix = dataset.answers
        posteriors = np.zeros((matrix.n_items, matrix.n_labels))
        for view in binary_label_views(matrix):
            result = fit_binary_cbcc(
                view,
                n_communities=self.n_communities,
                prior_correct=self.prior_correct,
                prior_wrong=self.prior_wrong,
                max_iterations=self.max_iterations,
                tolerance=self.tolerance,
                seed=self.seed + view.label,
            )
            posteriors[:, view.label] = result.posterior
        return posteriors

    def aggregate(self, dataset: CrowdDataset) -> PredictionMap:
        posteriors = self.label_posteriors(dataset)
        return assemble_predictions(posteriors, dataset.answers, self.threshold)
