"""Fig 4 — robustness to injected spammers (20% and 40% of all answers).

The paper adds spammer answers until they account for a target share of
the data and reports, per dataset, the *ratio* of perturbed to unperturbed
precision/recall (Δ), comparing CPA against the best baseline (cBCC).
Expected shape: both degrade, CPA visibly less, with the gap growing at
40% — cBCC can mistake consistent spammers for reliable workers, while
CPA's community discriminability weighting discounts them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.baselines import CommunityBCCAggregator, CPAAggregator
from repro.evaluation.metrics import delta_ratio, evaluate_predictions
from repro.experiments.registry import ExperimentReport, register
from repro.simulation.perturbations import inject_spammers
from repro.simulation.scenarios import SCENARIO_NAMES, make_scenario
from repro.utils.tables import format_table


@register("fig4", "Robustness to spammers", "Figure 4")
def run(
    seeds: Sequence[int] = (0, 1),
    scale: float = 1.0,
    scenarios: Sequence[str] = tuple(SCENARIO_NAMES),
    spam_shares: Sequence[float] = (0.2, 0.4),
) -> ExperimentReport:
    """Measure Δprecision / Δrecall under spammer injection."""
    # data[share][scenario][method] = {"precision": Δ, "recall": Δ}
    data: Dict[float, Dict[str, Dict[str, Dict[str, float]]]] = {}
    for share in spam_shares:
        data[share] = {}
        for name in scenarios:
            deltas: Dict[str, Dict[str, List[float]]] = {
                "cBCC": {"precision": [], "recall": []},
                "CPA": {"precision": [], "recall": []},
            }
            for seed in seeds:
                dataset = make_scenario(name, seed=int(seed), scale=scale)
                spammed = inject_spammers(dataset, share, seed=int(seed) + 7919)
                for method_factory in (CommunityBCCAggregator, CPAAggregator):
                    method = method_factory()
                    base = evaluate_predictions(
                        method_factory().aggregate(dataset), dataset.truth
                    )
                    pert = evaluate_predictions(
                        method.aggregate(spammed), dataset.truth
                    )
                    deltas[method.name]["precision"].append(
                        delta_ratio(pert.precision, base.precision)
                    )
                    deltas[method.name]["recall"].append(
                        delta_ratio(pert.recall, base.recall)
                    )
            data[share][name] = {
                method: {
                    metric: float(np.mean(values))
                    for metric, values in metrics.items()
                }
                for method, metrics in deltas.items()
            }

    tables = []
    for share in spam_shares:
        for metric in ("precision", "recall"):
            rows = [
                (
                    name,
                    data[share][name]["cBCC"][metric],
                    data[share][name]["CPA"][metric],
                )
                for name in scenarios
            ]
            tables.append(
                format_table(
                    ("dataset", "cBCC (baseline)", "CPA"),
                    rows,
                    title=f"Δ{metric} at spammer share {share:.0%}",
                )
            )

    heavy = max(spam_shares)
    wins = sum(
        data[heavy][name]["CPA"][metric] >= data[heavy][name]["cBCC"][metric]
        for name in scenarios
        for metric in ("precision", "recall")
    )
    total = 2 * len(scenarios)
    notes = [
        f"At {heavy:.0%} spam, CPA retains at least as much performance as "
        f"cBCC in {wins}/{total} dataset-metric combinations.",
    ]
    return ExperimentReport(
        experiment_id="fig4",
        title="Robustness to spammers",
        paper_artefact="Figure 4",
        tables=tables,
        notes=notes,
        data={"deltas": data, "cpa_win_count": wins, "combinations": total},
    )
