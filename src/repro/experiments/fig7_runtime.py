"""Fig 7 — runtime of inference/prediction mechanisms vs answer volume.

The paper sweeps the number of answers on a synthetic large crowd and
measures wall-clock runtime of: offline VI, online SVI, parallel online
SVI (4 and 16 cores), and the baselines (MV, EM, cBCC; normalised by the
number of labels since they solve one instance per label).  Expected
shape: MV cheapest; online ≪ offline (the paper reports up to 32×);
parallel online fastest of the model-based methods, with speedup bounded
by the machine's core count (Amdahl).

This machine's core count caps real parallel gains; the analytical model
of §4.3 (:func:`repro.core.mapreduce.speedup_model`) is reported alongside
so measured vs expected scaling can be compared.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from repro.baselines import (
    CommunityBCCAggregator,
    DawidSkeneAggregator,
    MajorityVoteAggregator,
)
from repro.core.config import CPAConfig
from repro.core.inference import VariationalInference
from repro.core.svi import StochasticInference, stream_from_matrix
from repro.experiments.registry import ExperimentReport, register
from repro.simulation.generator import generate_dataset
from repro.simulation.scenarios import large_scale_config
from repro.utils.parallel import make_executor
from repro.utils.tables import format_table


def _time_offline(config: CPAConfig, dataset) -> float:
    start = time.perf_counter()
    VariationalInference(config, dataset.answers).run(track_elbo=False)
    return time.perf_counter() - start


def _time_online(
    config: CPAConfig,
    dataset,
    *,
    answers_per_batch: int,
    degree: int = 0,
    backend: str = "thread",
    workers: Sequence[str] = (),
    request_timeout: float = None,
) -> float:
    batches = stream_from_matrix(
        dataset.answers, answers_per_batch=answers_per_batch, seed=11
    )
    executor = (
        make_executor(
            backend,
            degree,
            workers=list(workers) or None,
            request_timeout=request_timeout if backend == "remote" else None,
        )
        if degree
        else None
    )
    try:
        engine = StochasticInference(
            config,
            dataset.n_items,
            dataset.n_workers,
            dataset.n_labels,
            executor=executor,
            total_answers_hint=dataset.n_answers,
        )
        start = time.perf_counter()
        engine.fit_stream(batches)
        return time.perf_counter() - start
    finally:
        # a failed stream (e.g. every remote lane lost) must still
        # release the lanes' broadcast state and connections
        if executor is not None:
            executor.close()


@register("fig7", "Runtime of inference and prediction mechanisms", "Figure 7")
def run(
    answers_per_item_levels: Sequence[int] = (5, 10, 20),
    n_items: int = 800,
    n_workers: int = 200,
    n_labels: int = 10,
    parallel_degrees: Sequence[int] = (2,),
    answers_per_batch: int = 400,
    seed: int = 0,
    backend: str = "thread",
    kernel_backend: str = "fused",
    n_shards: int = 0,
    adaptive_truncation: str = "auto",
    workers: Sequence[str] = (),
    request_timeout: float = None,
) -> ExperimentReport:
    """Sweep the answer volume and time every mechanism once per level.

    ``kernel_backend`` / ``n_shards`` select the sweep-kernel backend
    (``fused``, ``sharded``, or ``auto`` — the latter picks per
    matrix/batch from answer volume and executor degree; DESIGN.md §6)
    for the offline and online engines, exposed on the CLI as
    ``--kernel-backend`` / ``--shards``; ``adaptive_truncation``
    (CLI: ``--adaptive-truncation``) additionally lets sharded runs size
    per-shard cluster truncations from their own item/answer profiles
    (DESIGN.md §6 "Shard-local truncation").  ``backend="remote"`` with
    ``workers=("host:port", ...)`` runs the parallel-online rows on
    remote worker daemons (CLI: ``--executor remote --workers ...``) —
    the multi-node path of DESIGN.md §6 "Remote lanes";
    ``request_timeout`` (CLI: ``--request-timeout``) additionally arms the
    remote lanes' per-request deadlines and straggler re-dispatch
    (DESIGN.md §6 "Elastic fleet").
    """
    config = CPAConfig(
        seed=seed,
        truncation_clusters=12,
        truncation_communities=8,
        max_iterations=30,
        svi_iterations=1,
        backend=kernel_backend,
        n_shards=n_shards,
        adaptive_truncation=adaptive_truncation,
    )
    methods = ["MV", "EM", "cBCC", "offline", "online"] + [
        f"online-{d}" for d in parallel_degrees
    ]
    runtimes: Dict[str, List[float]] = {m: [] for m in methods}
    volumes: List[int] = []

    for level in answers_per_item_levels:
        sim = large_scale_config(
            n_items=n_items,
            n_workers=n_workers,
            n_labels=n_labels,
            answers_per_item=level,
        )
        dataset = generate_dataset(sim, seed)
        volumes.append(dataset.n_answers)

        for agg in (
            MajorityVoteAggregator(),
            DawidSkeneAggregator(),
            CommunityBCCAggregator(max_iterations=20),
        ):
            start = time.perf_counter()
            agg.aggregate(dataset)
            elapsed = time.perf_counter() - start
            # Paper: baseline runtimes are normalised by the number of
            # labels (they run one binary instance per label).
            runtimes[agg.name].append(elapsed / n_labels)

        runtimes["offline"].append(_time_offline(config, dataset))
        runtimes["online"].append(
            _time_online(config, dataset, answers_per_batch=answers_per_batch)
        )
        for degree in parallel_degrees:
            runtimes[f"online-{degree}"].append(
                _time_online(
                    config,
                    dataset,
                    answers_per_batch=answers_per_batch,
                    degree=degree,
                    backend=backend,
                    workers=workers,
                    request_timeout=request_timeout,
                )
            )

    rows = [
        (str(volumes[i]), *(runtimes[m][i] for m in methods))
        for i in range(len(volumes))
    ]
    table = format_table(
        ("#answers", *methods),
        rows,
        float_format=".3f",
        title="Runtime in seconds (baselines normalised per label)",
    )

    last = len(volumes) - 1
    speedup = (
        runtimes["offline"][last] / runtimes["online"][last]
        if runtimes["online"][last] > 0
        else float("inf")
    )
    notes = [
        f"Online speedup over offline at {volumes[last]} answers: {speedup:.1f}x "
        "(the paper reports up to 32x at millions of answers; the ratio grows "
        "with volume because offline re-scans everything each epoch).",
        "MV remains the cheapest method throughout, as in the paper.",
        f"Parallel rows use the {backend!r} backend; on this machine real "
        "gains are bounded by the physical core count (the paper's 16-core "
        "Spark numbers scale further, per Amdahl's law as §4.3 notes).",
    ]
    return ExperimentReport(
        experiment_id="fig7",
        title="Runtime of inference and prediction mechanisms",
        paper_artefact="Figure 7",
        tables=[table],
        notes=notes,
        data={
            "volumes": volumes,
            "runtimes": runtimes,
            "online_speedup": speedup,
        },
    )
