"""Table 3 — dataset statistics for the five evaluation scenarios.

The synthetic scenarios are laptop-scaled, so absolute counts differ from
the paper by design; the table juxtaposes our measured statistics with the
paper's originals so the *relative* characteristics (label correlation
ordering, answer skew, density) can be checked at a glance.
"""

from __future__ import annotations


from repro.data.statistics import DatasetStatistics, compute_statistics
from repro.experiments.registry import ExperimentReport, register
from repro.simulation.scenarios import SCENARIO_NAMES, make_scenario
from repro.utils.tables import format_table

#: Paper Table 3 rows: (#items, #labels, #questions, #workers, #answers).
PAPER_TABLE3 = {
    "image": (269648, 81, 2000, 416, 22920),
    "topic": (16_000_000, 49, 2000, 313, 15080),
    "aspect": (3710, 262, 3710, 482, 19780),
    "entity": (2400, 1450, 2400, 517, 15510),
    "movie": (500, 22, 500, 936, 14430),
}


@register("table3", "Dataset statistics", "Table 3")
def run(seed: int = 0, scale: float = 1.0) -> ExperimentReport:
    """Generate all scenarios and tabulate their statistics."""
    stats: list[DatasetStatistics] = []
    for name in SCENARIO_NAMES:
        dataset = make_scenario(name, seed=seed, scale=scale)
        stats.append(compute_statistics(dataset))

    measured = format_table(
        DatasetStatistics.headers(),
        [s.as_row() for s in stats],
        title="Measured statistics (synthetic scenarios)",
    )
    reference = format_table(
        ("dataset", "#items", "#labels", "#questions", "#workers", "#answers"),
        [(name, *PAPER_TABLE3[name]) for name in SCENARIO_NAMES],
        title="Paper Table 3 (original datasets, for reference)",
    )
    extra = format_table(
        ("dataset", "answers/item", "answers/worker", "labels/answer", "worker-skew"),
        [
            (
                s.name,
                s.answers_per_item_mean,
                s.answers_per_worker_mean,
                s.labels_per_answer_mean,
                s.worker_skewness,
            )
            for s in stats
        ],
        title="Density and skew descriptors",
    )

    by_name = {s.name.split("+")[0]: s for s in stats}
    strong = [by_name[n].label_correlation for n in ("image", "topic", "entity")]
    weak = [by_name[n].label_correlation for n in ("aspect", "movie")]
    notes = [
        "Correlated scenarios (image/topic/entity) measure mean |phi| of "
        f"{sum(strong) / len(strong):.3f} vs {sum(weak) / len(weak):.3f} for the "
        "weakly-correlated ones (aspect/movie), matching the paper's "
        "characterisation.",
        "Skewed answer distributions (image/movie) show positive worker-count "
        "skewness; 'normal' scenarios are closer to symmetric.",
    ]
    return ExperimentReport(
        experiment_id="table3",
        title="Dataset statistics",
        paper_artefact="Table 3",
        tables=[measured, extra, reference],
        notes=notes,
        data={
            "statistics": {s.name: s for s in stats},
            "strong_correlation_mean": sum(strong) / len(strong),
            "weak_correlation_mean": sum(weak) / len(weak),
        },
    )
