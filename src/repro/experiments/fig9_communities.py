"""Fig 9 — worker communities in the datasets (§5.5).

The paper scatter-plots each worker's per-label sensitivity vs specificity
for representative labels of the image and entity datasets, observing (i)
multiple communities per label, (ii) different community structure across
labels and datasets — the argument for nonparametric adaptivity (R4).
Without plotting, we report the per-label operating-point distributions,
the blob-count approximation of community number, and the communities the
fitted CPA model actually infers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.config import CPAConfig
from repro.core.diagnostics import (
    community_summaries,
    count_label_communities,
    worker_operating_points,
)
from repro.core.model import CPAModel
from repro.experiments.registry import ExperimentReport, register
from repro.simulation.scenarios import make_scenario
from repro.utils.tables import format_table


def _busiest_labels(dataset, count: int) -> List[int]:
    label_counts = dataset.answers.label_counts()
    return [int(label) for label in np.argsort(-label_counts)[:count]]


@register("fig9", "Worker communities in the datasets", "Figure 9")
def run(
    seed: int = 0,
    scale: float = 1.0,
    scenarios: Sequence[str] = ("image", "entity"),
    labels_per_scenario: int = 2,
) -> ExperimentReport:
    """Characterise per-label worker communities on two scenarios."""
    tables: List[str] = []
    data: Dict[str, Dict[str, object]] = {}
    for name in scenarios:
        dataset = make_scenario(name, seed=seed, scale=scale)
        labels = _busiest_labels(dataset, labels_per_scenario)

        rows = []
        blob_counts: Dict[int, int] = {}
        for label in labels:
            points = worker_operating_points(dataset, labels=[label], min_support=2)
            blobs = count_label_communities(dataset, label, min_support=2)
            blob_counts[label] = blobs
            if points:
                sens = [p.sensitivity for p in points]
                spec = [p.specificity for p in points]
                rows.append(
                    (
                        f"label-{label}",
                        len(points),
                        float(np.mean(sens)),
                        float(np.std(sens)),
                        float(np.mean(spec)),
                        blobs,
                    )
                )
        tables.append(
            format_table(
                ("label", "#workers", "sens mean", "sens std", "spec mean", "#communities"),
                rows,
                title=f"Per-label worker operating points ({name})",
            )
        )

        model = CPAModel(CPAConfig(seed=seed)).fit(dataset)
        summaries = community_summaries(model.state_, dataset)
        summary_rows = [
            (
                s.community,
                round(s.size, 1),
                s.mean_sensitivity,
                s.mean_specificity,
                s.dominant_type or "-",
            )
            for s in sorted(summaries, key=lambda s: -s.size)[:8]
        ]
        tables.append(
            format_table(
                ("community", "size", "sens", "spec", "dominant type"),
                summary_rows,
                title=f"Inferred CPA communities ({name})",
            )
        )
        data[name] = {
            "blob_counts": blob_counts,
            "n_inferred_communities": len(summaries),
            "summaries": summaries,
        }

    multi_community = all(
        any(count >= 2 for count in info["blob_counts"].values())  # type: ignore[union-attr]
        for info in data.values()
    )
    differs = (
        len(
            {
                info["n_inferred_communities"]  # type: ignore[index]
                for info in data.values()
            }
        )
        > 1
    )
    notes = [
        "Multiple worker communities exist per label in both datasets."
        if multi_community
        else "WARNING: some dataset showed a single community per label.",
        "Community structure differs across datasets, motivating the "
        "nonparametric approach (R4)."
        if differs
        else "Inferred community counts happen to coincide across datasets.",
    ]
    return ExperimentReport(
        experiment_id="fig9",
        title="Worker communities in the datasets",
        paper_artefact="Figure 9",
        tables=tables,
        notes=notes,
        data=data,
    )
