"""Fig 5 — effects of label dependencies (entity scenario).

The paper quantifies the information a per-label method loses by ignoring
label dependencies: missing true labels are randomly *added back* into
worker answers that already contain a correct label (10%–30% of all
missing labels), and each method's original performance is reported as a
ratio of its performance on the enriched answers.  A method that already
exploits dependencies gains little from the enrichment (Δ ≈ 1); a method
that ignores them gains a lot (Δ far below 1 — the paper's baseline
"loses nearly half of precision" at the 30% level).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.baselines import CommunityBCCAggregator, CPAAggregator
from repro.evaluation.metrics import delta_ratio, evaluate_predictions
from repro.experiments.registry import ExperimentReport, register
from repro.simulation.perturbations import inject_label_dependencies
from repro.simulation.scenarios import make_scenario
from repro.utils.tables import format_table


@register("fig5", "Effects of label dependencies", "Figure 5")
def run(
    seeds: Sequence[int] = (0, 1),
    scale: float = 1.0,
    scenario: str = "entity",
    levels: Sequence[float] = (0.10, 0.15, 0.20, 0.25, 0.30),
) -> ExperimentReport:
    """Sweep dependency-injection levels and report original/enriched ratios."""
    series: Dict[str, Dict[str, List[float]]] = {
        "cBCC": {"precision": [], "recall": []},
        "CPA": {"precision": [], "recall": []},
    }
    for level in levels:
        acc: Dict[str, Dict[str, List[float]]] = {
            "cBCC": {"precision": [], "recall": []},
            "CPA": {"precision": [], "recall": []},
        }
        for seed in seeds:
            dataset = make_scenario(scenario, seed=int(seed), scale=scale)
            enriched = inject_label_dependencies(dataset, level, seed=int(seed) + 331)
            for method_factory in (CommunityBCCAggregator, CPAAggregator):
                method = method_factory()
                original = evaluate_predictions(
                    method_factory().aggregate(dataset), dataset.truth
                )
                gained = evaluate_predictions(
                    method.aggregate(enriched), dataset.truth
                )
                # Reverse ratio: original relative to the enriched answers.
                acc[method.name]["precision"].append(
                    delta_ratio(original.precision, gained.precision)
                )
                acc[method.name]["recall"].append(
                    delta_ratio(original.recall, gained.recall)
                )
        for method_name, metrics in acc.items():
            for metric, values in metrics.items():
                series[method_name][metric].append(float(np.mean(values)))

    tables = []
    for metric in ("precision", "recall"):
        rows = [
            (
                f"{level:.0%}",
                series["cBCC"][metric][i],
                series["CPA"][metric][i],
            )
            for i, level in enumerate(levels)
        ]
        tables.append(
            format_table(
                ("dependency level", "cBCC (baseline)", "CPA"),
                rows,
                title=f"Δ{metric} = original / enriched ({scenario})",
            )
        )

    top = len(levels) - 1
    gap_recall = series["CPA"]["recall"][top] - series["cBCC"]["recall"][top]
    notes = [
        "Ratios below 1 mean the method was losing that information by not "
        "modelling label dependencies; CPA stays closer to 1 than the "
        f"baseline (recall gap at {levels[top]:.0%}: {gap_recall:+.2f}).",
    ]
    return ExperimentReport(
        experiment_id="fig5",
        title="Effects of label dependencies",
        paper_artefact="Figure 5",
        tables=tables,
        notes=notes,
        data={"levels": list(levels), "series": series},
    )
