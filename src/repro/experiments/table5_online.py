"""Table 5 — online vs offline accuracy at 100% data arrival, all scenarios.

For each scenario the offline (batch VI) precision/recall is compared with
the online (SVI) values after the full stream has been consumed, with the
± deviation over shuffled streams and forgetting rates (paper §5.3: "the
deviation when shuffling data and varying the forgetting rate").
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.config import CPAConfig
from repro.core.model import CPAModel
from repro.data.streams import AnswerStream
from repro.evaluation.metrics import evaluate_predictions
from repro.experiments.registry import ExperimentReport, register
from repro.simulation.scenarios import SCENARIO_NAMES, make_scenario
from repro.utils.tables import format_table

#: Paper Table 5: dataset -> (online P, offline P, online R, offline R).
PAPER_TABLE5 = {
    "image": (0.76, 0.81, 0.70, 0.74),
    "topic": (0.71, 0.79, 0.65, 0.70),
    "aspect": (0.67, 0.74, 0.59, 0.64),
    "entity": (0.70, 0.79, 0.64, 0.70),
    "movie": (0.74, 0.80, 0.68, 0.73),
}


@register("table5", "Online vs offline at full arrival", "Table 5")
def run(
    seeds: Sequence[int] = (0, 1),
    scale: float = 1.0,
    scenarios: Sequence[str] = tuple(SCENARIO_NAMES),
    forgetting_rates: Sequence[float] = (0.85, 0.9),
    n_batches: int = 10,
) -> ExperimentReport:
    """Measure final online/offline accuracy with deviations."""
    results: Dict[str, Dict[str, float]] = {}
    for name in scenarios:
        online_p: List[float] = []
        online_r: List[float] = []
        offline_p: List[float] = []
        offline_r: List[float] = []
        for seed in seeds:
            dataset = make_scenario(name, seed=int(seed), scale=scale)
            config = CPAConfig(seed=int(seed))

            offline = CPAModel(config).fit(dataset.answers, seed=int(seed))
            offline_eval = evaluate_predictions(offline.predict(), dataset.truth)
            offline_p.append(offline_eval.precision)
            offline_r.append(offline_eval.recall)

            fractions = [i / n_batches for i in range(1, n_batches + 1)]
            for rate in forgetting_rates:
                stream = AnswerStream(dataset.answers, seed=int(seed) + 17)
                batches = list(stream.by_fractions(fractions))
                online = CPAModel(
                    config.with_overrides(forgetting_rate=rate)
                ).fit_online(
                    batches,
                    dataset.n_items,
                    dataset.n_workers,
                    dataset.n_labels,
                    seed=int(seed),
                    total_answers_hint=dataset.n_answers,
                )
                online_eval = evaluate_predictions(online.predict(), dataset.truth)
                online_p.append(online_eval.precision)
                online_r.append(online_eval.recall)
        results[name] = {
            "online_p": float(np.mean(online_p)),
            "online_p_std": float(np.std(online_p)),
            "online_r": float(np.mean(online_r)),
            "online_r_std": float(np.std(online_r)),
            "offline_p": float(np.mean(offline_p)),
            "offline_r": float(np.mean(offline_r)),
        }

    rows = [
        (
            name,
            f"{results[name]['online_p']:.3f} ±{results[name]['online_p_std']:.2f}",
            f"{results[name]['offline_p']:.3f}",
            f"{results[name]['online_r']:.3f} ±{results[name]['online_r_std']:.2f}",
            f"{results[name]['offline_r']:.3f}",
        )
        for name in scenarios
    ]
    measured = format_table(
        ("dataset", "P online", "P offline", "R online", "R offline"),
        rows,
        title="Measured online vs offline accuracy at 100% arrival",
    )
    reference = format_table(
        ("dataset", "P online", "P offline", "R online", "R offline"),
        [(name, *PAPER_TABLE5[name]) for name in scenarios if name in PAPER_TABLE5],
        title="Paper Table 5 (reference)",
    )

    competitive = all(
        results[name]["online_p"] >= 0.75 * results[name]["offline_p"]
        for name in scenarios
    )
    notes = [
        "Online stays within a modest margin of offline on every dataset."
        if competitive
        else "WARNING: online accuracy fell more than 25% below offline somewhere.",
    ]
    return ExperimentReport(
        experiment_id="table5",
        title="Online vs offline at full arrival",
        paper_artefact="Table 5",
        tables=[measured, reference],
        notes=notes,
        data={"results": results, "online_competitive": competitive},
    )
