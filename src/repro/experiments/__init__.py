"""Experiment modules — one per table/figure of the paper's evaluation.

Every module exposes ``run(...) -> ExperimentReport`` and registers itself
under its experiment id (``table4``, ``fig3``, …).  Use::

    from repro.experiments import run_experiment, list_experiments

    report = run_experiment("table4", seeds=(0, 1, 2))
    print(report.rendered())

or ``python -m repro run table4`` from the command line.  The per-
experiment index (workload, parameters, implementing modules) lives in
DESIGN.md §5.
"""

from repro.experiments.registry import (
    ExperimentReport,
    ExperimentSpec,
    get_experiment,
    list_experiments,
    run_experiment,
)

# Importing the modules registers them.
from repro.experiments import (  # noqa: E402,F401  (registration side effect)
    fig1_cooccurrence,
    fig3_sparsity,
    fig4_spammers,
    fig5_label_dependency,
    fig6_data_arrival,
    fig7_runtime,
    fig8_ablation,
    fig9_communities,
    fig10_worker_types,
    table1_example,
    table3_statistics,
    table4_accuracy,
    table5_online,
)

__all__ = [
    "ExperimentReport",
    "ExperimentSpec",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
