"""Fig 1 — label co-occurrence structure (NUS-WIDE illustration).

The paper's introduction shows the co-occurrence graph of five NUS-WIDE
labels splitting into clusters ({sky, birds, cloud} vs {flower, road}).
We reproduce the analysis pipeline on the image scenario: build the
empirical co-occurrence graph from worker answers, list the strongest
edges, and check that thresholded connected components recover the
generating label clusters.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.experiments.registry import ExperimentReport, register
from repro.simulation.labelspace import cooccurrence_graph, detected_label_clusters
from repro.simulation.scenarios import make_scenario
from repro.utils.tables import format_table


@register("fig1", "Label co-occurrence graph", "Figure 1")
def run(
    seed: int = 0,
    scale: float = 1.0,
    scenario: str = "image",
    top_edges: int = 12,
    component_threshold: float = 0.3,
) -> ExperimentReport:
    """Build and summarise the co-occurrence graph of worker answers."""
    dataset = make_scenario(scenario, seed=seed, scale=scale)
    counts = dataset.answers.cooccurrence_counts()
    graph = cooccurrence_graph(counts)

    edges = sorted(
        graph.edges(data=True), key=lambda e: -e[2].get("weight", 0.0)
    )[:top_edges]
    edge_rows = [
        (
            f"label-{a}",
            f"label-{b}",
            data["weight"],
            int(counts[a, a]),
            int(counts[b, b]),
        )
        for a, b, data in edges
    ]
    edge_table = format_table(
        ("label A", "label B", "co-occurrence", "count A", "count B"),
        edge_rows,
        title=f"Strongest co-occurrence edges ({scenario})",
    )

    components = [
        c for c in detected_label_clusters(graph, min_weight=component_threshold)
        if len(c) > 1
    ]
    generating: List[Sequence[int]] = dataset.extras.get(  # type: ignore[assignment]
        "label_space_clusters", []
    )
    comp_rows = [
        (i, len(component), "{" + ",".join(str(lab) for lab in sorted(component)) + "}")
        for i, component in enumerate(components)
    ]
    comp_table = format_table(
        ("component", "size", "labels"),
        comp_rows,
        title=f"Connected components at weight >= {component_threshold}",
    )

    # Component purity against the generating label clusters.
    assignment = {}
    for index, cluster in enumerate(generating):
        for label in cluster:
            assignment[label] = index
    purity_values = []
    for component in components:
        owners = [assignment[lab] for lab in component if lab in assignment]
        if owners:
            purity_values.append(
                max(np.bincount(owners)) / len(owners)
            )
    purity = float(np.mean(purity_values)) if purity_values else 0.0
    notes = [
        f"{len(components)} multi-label components detected; mean purity vs "
        f"the generating label clusters: {purity:.2f} (1.0 = every component "
        "lies inside one generating cluster, as in the paper's figure).",
    ]
    return ExperimentReport(
        experiment_id="fig1",
        title="Label co-occurrence graph",
        paper_artefact="Figure 1",
        tables=[edge_table, comp_table],
        notes=notes,
        data={
            "n_components": len(components),
            "component_purity": purity,
            "graph_edges": graph.number_of_edges(),
        },
    )
