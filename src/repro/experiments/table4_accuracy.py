"""Table 4 — overall accuracy of MV / EM / cBCC / CPA on all scenarios.

The paper's headline comparison: precision and recall per dataset and
method, averaged over shuffled runs, with no observed ground truth
(``y = ∅``).  Expected shape: CPA highest on both metrics on every
dataset; cBCC the strongest baseline; MV weakest on the difficult
datasets; margins largest where labels are strongly correlated.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.baselines import (
    CommunityBCCAggregator,
    CPAAggregator,
    DawidSkeneAggregator,
    MajorityVoteAggregator,
)
from repro.evaluation.runner import MethodScore, evaluate_methods
from repro.experiments.registry import ExperimentReport, register
from repro.simulation.scenarios import SCENARIO_NAMES, make_scenario
from repro.utils.tables import format_table

#: Paper Table 4: dataset -> method -> (precision, recall).
PAPER_TABLE4 = {
    "image": {"MV": (0.65, 0.57), "EM": (0.66, 0.62), "cBCC": (0.70, 0.63), "CPA": (0.81, 0.74)},
    "topic": {"MV": (0.57, 0.54), "EM": (0.60, 0.54), "cBCC": (0.62, 0.55), "CPA": (0.79, 0.70)},
    "aspect": {"MV": (0.52, 0.53), "EM": (0.61, 0.56), "cBCC": (0.65, 0.60), "CPA": (0.74, 0.64)},
    "entity": {"MV": (0.63, 0.55), "EM": (0.57, 0.50), "cBCC": (0.60, 0.53), "CPA": (0.79, 0.70)},
    "movie": {"MV": (0.61, 0.56), "EM": (0.74, 0.68), "cBCC": (0.78, 0.70), "CPA": (0.80, 0.73)},
}

METHOD_ORDER = ["MV", "EM", "cBCC", "CPA"]


def _methods() -> list:
    return [
        MajorityVoteAggregator(),
        DawidSkeneAggregator(),
        CommunityBCCAggregator(),
        CPAAggregator(),
    ]


@register("table4", "Overall accuracy", "Table 4")
def run(
    seeds: Sequence[int] = (0, 1, 2),
    scale: float = 1.0,
    scenarios: Sequence[str] = tuple(SCENARIO_NAMES),
) -> ExperimentReport:
    """Evaluate all methods on all scenarios, averaged over ``seeds``."""
    means: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in scenarios:
        per_method: Dict[str, List[MethodScore]] = {}
        for seed in seeds:
            dataset = make_scenario(name, seed=int(seed), scale=scale)
            for score in evaluate_methods(dataset, _methods()):
                per_method.setdefault(score.method, []).append(score)
        means[name] = {
            method: {
                "precision": float(np.mean([s.precision for s in scores])),
                "recall": float(np.mean([s.recall for s in scores])),
            }
            for method, scores in per_method.items()
        }

    def matrix_table(metric: str, title: str) -> str:
        rows = [
            (name, *(means[name][m][metric] for m in METHOD_ORDER))
            for name in scenarios
        ]
        return format_table(("dataset", *METHOD_ORDER), rows, title=title)

    def paper_table(metric_index: int, title: str) -> str:
        rows = [
            (name, *(PAPER_TABLE4[name][m][metric_index] for m in METHOD_ORDER))
            for name in scenarios
            if name in PAPER_TABLE4
        ]
        return format_table(("dataset", *METHOD_ORDER), rows, title=title)

    cpa_wins = all(
        means[name]["CPA"][metric] >= means[name][other][metric] - 1e-9
        for name in scenarios
        for metric in ("precision", "recall")
        for other in ("MV", "cBCC")
    )
    notes = [
        "CPA dominates MV and cBCC on precision and recall on every dataset."
        if cpa_wins
        else "WARNING: CPA did not dominate on every dataset for this seed set.",
        "Per-label EM degrades sharply on the sparse/difficult datasets, the "
        "failure mode the paper attributes to per-worker confusion estimation "
        "under data sparsity (§6).",
    ]
    return ExperimentReport(
        experiment_id="table4",
        title="Overall accuracy",
        paper_artefact="Table 4",
        tables=[
            matrix_table("precision", "Measured precision"),
            matrix_table("recall", "Measured recall"),
            paper_table(0, "Paper Table 4 precision (reference)"),
            paper_table(1, "Paper Table 4 recall (reference)"),
        ],
        notes=notes,
        data={"means": means, "cpa_dominates": cpa_wins, "methods": METHOD_ORDER},
    )
