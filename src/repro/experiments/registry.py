"""Experiment registry: ids, metadata, and uniform execution.

An *experiment* regenerates one artefact of the paper's evaluation (a
table or a figure's data series).  Reports carry both rendered text tables
(for humans / EXPERIMENTS.md) and the raw ``data`` dictionary (for tests
and benchmarks to assert the expected qualitative shape)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.errors import ExperimentError


@dataclass
class ExperimentReport:
    """Outcome of one experiment run."""

    experiment_id: str
    title: str
    paper_artefact: str
    tables: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    def rendered(self) -> str:
        """Full plain-text report."""
        parts = [f"== {self.experiment_id}: {self.title} ({self.paper_artefact}) =="]
        parts.extend(self.tables)
        if self.notes:
            parts.append("Notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n\n".join(parts)


Runner = Callable[..., ExperimentReport]


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry for one experiment."""

    experiment_id: str
    title: str
    paper_artefact: str
    runner: Runner


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(experiment_id: str, title: str, paper_artefact: str) -> Callable[[Runner], Runner]:
    """Decorator: register ``runner`` under ``experiment_id``."""

    def decorator(runner: Runner) -> Runner:
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = ExperimentSpec(
            experiment_id=experiment_id,
            title=title,
            paper_artefact=paper_artefact,
            runner=runner,
        )
        return runner

    return decorator


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up a registered experiment (raises on unknown ids)."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def list_experiments() -> List[ExperimentSpec]:
    """All registered experiments, sorted by id."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def run_experiment(experiment_id: str, **kwargs: object) -> ExperimentReport:
    """Run one experiment by id with keyword parameters."""
    spec = get_experiment(experiment_id)
    report = spec.runner(**kwargs)
    if report.experiment_id != experiment_id:  # defensive consistency check
        raise ExperimentError(
            f"runner for {experiment_id!r} returned report for "
            f"{report.experiment_id!r}"
        )
    return report
