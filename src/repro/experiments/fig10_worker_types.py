"""Fig 10 (Appendix A) — characterisation of worker types.

The appendix plots simulated workers on the sensitivity/specificity plane:
reliable workers in the top-right, sloppy workers mid-sensitivity, random
spammers along the anti-diagonal, uniform spammers at the extremes.  We
reproduce the map numerically: expected operating points per archetype
from the profiles, and realised operating points measured from generated
answers against ground truth.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.diagnostics import worker_operating_points
from repro.experiments.registry import ExperimentReport, register
from repro.simulation.scenarios import make_scenario
from repro.utils.tables import format_table
from repro.workers.behavior import expected_operating_point
from repro.workers.population import PopulationSpec, sample_population
from repro.workers.types import WorkerType


@register("fig10", "Characterisation of worker types", "Figure 10 (Appendix A)")
def run(
    seed: int = 0,
    scale: float = 1.0,
    scenario: str = "image",
    n_profile_samples: int = 200,
    n_labels: int = 30,
) -> ExperimentReport:
    """Tabulate expected and realised operating points per worker type."""
    # Expected operating points straight from sampled profiles.
    profiles = sample_population(
        PopulationSpec.paper_default(), n_profile_samples, n_labels, seed
    )
    expected: Dict[str, List[tuple[float, float]]] = {}
    for profile in profiles:
        point = expected_operating_point(profile, n_labels)
        expected.setdefault(profile.worker_type.value, []).append(point)
    expected_rows = [
        (
            worker_type,
            float(np.mean([p[0] for p in points])),
            float(np.mean([p[1] for p in points])),
            len(points),
        )
        for worker_type, points in sorted(expected.items())
    ]
    expected_table = format_table(
        ("worker type", "sensitivity", "specificity", "#profiles"),
        expected_rows,
        title="Expected operating points (profile model)",
    )

    # Realised operating points measured from a generated dataset.
    dataset = make_scenario(scenario, seed=seed, scale=scale)
    assert dataset.worker_types is not None
    points = {p.worker: p for p in worker_operating_points(dataset)}
    realised: Dict[str, List[tuple[float, float]]] = {}
    for worker, point in points.items():
        realised.setdefault(dataset.worker_types[worker], []).append(
            (point.sensitivity, point.specificity)
        )
    realised_rows = [
        (
            worker_type,
            float(np.mean([p[0] for p in pts])),
            float(np.mean([p[1] for p in pts])),
            len(pts),
        )
        for worker_type, pts in sorted(realised.items())
    ]
    realised_table = format_table(
        ("worker type", "sensitivity", "specificity", "#workers"),
        realised_rows,
        title=f"Realised operating points ({scenario} scenario)",
    )

    realised_mean = {row[0]: (row[1], row[2]) for row in realised_rows}
    ordering_ok = (
        realised_mean.get(WorkerType.RELIABLE.value, (0, 0))[0]
        > realised_mean.get(WorkerType.SLOPPY.value, (1, 1))[0]
    )
    notes = [
        "Reliable workers sit above sloppy workers in sensitivity, and "
        "spammers separate from honest workers — the Fig 10 layout."
        if ordering_ok
        else "WARNING: worker-type ordering did not reproduce.",
    ]
    return ExperimentReport(
        experiment_id="fig10",
        title="Characterisation of worker types",
        paper_artefact="Figure 10 (Appendix A)",
        tables=[expected_table, realised_table],
        notes=notes,
        data={"expected": expected, "realised": realised},
    )
