"""Fig 6 — online (SVI) vs offline (VI) accuracy as answers arrive.

The paper streams answers in 10% increments: the *offline* curve refits
batch VI on everything received so far, the *online* curve performs one
incremental SVI step per batch and predicts from the maintained state.
Expected shape: both improve with data; online tracks slightly below
offline (the paper's "modest reduction in aggregation quality") while
remaining above the baselines' final accuracy.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.config import CPAConfig
from repro.core.model import CPAModel
from repro.data.answers import AnswerMatrix
from repro.data.streams import AnswerStream
from repro.evaluation.metrics import evaluate_predictions
from repro.experiments.registry import ExperimentReport, register
from repro.simulation.scenarios import make_scenario
from repro.utils.tables import format_table


def arrival_curves(
    scenario: str,
    seed: int,
    scale: float,
    fractions: Sequence[float],
    *,
    forgetting_rate: float = 0.875,
    config: CPAConfig | None = None,
) -> Dict[str, List[float]]:
    """One seed's online/offline precision-recall curves over arrival."""
    config = config or CPAConfig(seed=seed)
    dataset = make_scenario(scenario, seed=seed, scale=scale)
    stream = AnswerStream(dataset.answers, seed=seed + 17)
    batches = list(stream.by_fractions(fractions))

    online = CPAModel(
        config.with_overrides(forgetting_rate=forgetting_rate)
    ).start_online(
        dataset.n_items,
        dataset.n_workers,
        dataset.n_labels,
        seed=seed,
        total_answers_hint=dataset.n_answers,
    )

    curves: Dict[str, List[float]] = {
        "online_precision": [],
        "online_recall": [],
        "offline_precision": [],
        "offline_recall": [],
    }
    # One curve point per *fraction*: the stream merges collapsed arrival
    # windows away (small matrices can round adjacent cuts to the same
    # answer index), so batches are consumed by cumulative answer count
    # and a fraction whose window was empty repeats the previous point —
    # nothing new arrived at that arrival level.
    accumulated = AnswerMatrix(dataset.n_items, dataset.n_workers, dataset.n_labels)
    batch_iter = iter(batches)
    consumed = 0
    evals = None
    for fraction in fractions:
        target = int(round(fraction * dataset.n_answers))
        arrived = False
        while consumed < target:
            batch = next(batch_iter)
            online.partial_fit(batch)
            accumulated = accumulated.merged_with(batch.matrix)
            consumed += batch.n_answers
            arrived = True
        if arrived or evals is None:
            online_eval = evaluate_predictions(online.predict(), dataset.truth)
            offline_model = CPAModel(config).fit(accumulated, seed=seed)
            offline_eval = evaluate_predictions(offline_model.predict(), dataset.truth)
            evals = (online_eval, offline_eval)
        curves["online_precision"].append(evals[0].precision)
        curves["online_recall"].append(evals[0].recall)
        curves["offline_precision"].append(evals[1].precision)
        curves["offline_recall"].append(evals[1].recall)
    return curves


@register("fig6", "Online vs offline accuracy over data arrival", "Figure 6")
def run(
    seeds: Sequence[int] = (0, 1),
    scale: float = 1.0,
    scenario: str = "image",
    fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
) -> ExperimentReport:
    """Average the arrival curves over seeds and tabulate them."""
    all_curves = [
        arrival_curves(scenario, int(seed), scale, fractions) for seed in seeds
    ]
    mean_curves = {
        key: [
            float(np.mean([c[key][i] for c in all_curves]))
            for i in range(len(fractions))
        ]
        for key in all_curves[0]
    }

    tables = []
    for metric in ("precision", "recall"):
        rows = [
            (
                f"{frac:.0%}",
                mean_curves[f"online_{metric}"][i],
                mean_curves[f"offline_{metric}"][i],
            )
            for i, frac in enumerate(fractions)
        ]
        tables.append(
            format_table(
                ("arrival", "online (SVI)", "offline (VI)"),
                rows,
                title=f"{metric.capitalize()} vs data arrival ({scenario})",
            )
        )

    final_gap = (
        mean_curves["offline_precision"][-1] - mean_curves["online_precision"][-1]
    )
    notes = [
        f"Final precision gap offline - online: {final_gap:+.3f} (paper reports "
        "a small positive gap: incremental learning trades a little accuracy "
        "for incremental updates).",
    ]
    return ExperimentReport(
        experiment_id="fig6",
        title="Online vs offline accuracy over data arrival",
        paper_artefact="Figure 6",
        tables=tables,
        notes=notes,
        data={"fractions": list(fractions), "curves": mean_curves},
    )
