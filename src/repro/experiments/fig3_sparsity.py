"""Fig 3 — robustness against answer sparsity (image scenario).

The paper removes a growing share of answers uniformly at random and
measures precision/recall of every method on the surviving items.
Expected shape: all methods degrade as answers disappear, CPA degrades
slowest — at 50% sparsity it retains a higher fraction of its full-data
precision than any baseline (paper: 86% vs ≤ 78%).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.baselines import (
    CommunityBCCAggregator,
    CPAAggregator,
    DawidSkeneAggregator,
    MajorityVoteAggregator,
)
from repro.evaluation.metrics import evaluate_predictions
from repro.experiments.registry import ExperimentReport, register
from repro.simulation.perturbations import sparsify
from repro.simulation.scenarios import make_scenario
from repro.utils.tables import format_table

METHOD_ORDER = ["MV", "EM", "cBCC", "CPA"]


def _methods() -> list:
    return [
        MajorityVoteAggregator(),
        DawidSkeneAggregator(),
        CommunityBCCAggregator(),
        CPAAggregator(),
    ]


@register("fig3", "Robustness against sparsity", "Figure 3")
def run(
    seeds: Sequence[int] = (0, 1),
    scale: float = 1.0,
    scenario: str = "image",
    sparsity_levels: Sequence[float] = (0.0, 0.3, 0.5, 0.7, 0.9),
) -> ExperimentReport:
    """Sweep sparsity levels on ``scenario`` for every method."""
    series: Dict[str, Dict[str, List[float]]] = {
        m: {"precision": [], "recall": []} for m in METHOD_ORDER
    }
    for level in sparsity_levels:
        metric_acc: Dict[str, List[tuple[float, float]]] = {m: [] for m in METHOD_ORDER}
        for seed in seeds:
            dataset = make_scenario(scenario, seed=int(seed), scale=scale)
            perturbed = (
                dataset if level == 0.0 else sparsify(dataset, level, seed=int(seed) + 991)
            )
            # Score over all items with truth: items stripped of every
            # answer count as empty predictions (part of the stress).
            for method in _methods():
                predictions = method.aggregate(perturbed)
                result = evaluate_predictions(predictions, dataset.truth)
                metric_acc[method.name].append((result.precision, result.recall))
        for method_name, values in metric_acc.items():
            series[method_name]["precision"].append(float(np.mean([v[0] for v in values])))
            series[method_name]["recall"].append(float(np.mean([v[1] for v in values])))

    tables = []
    for metric in ("precision", "recall"):
        rows = [
            (f"{level:.0%}", *(series[m][metric][i] for m in METHOD_ORDER))
            for i, level in enumerate(sparsity_levels)
        ]
        tables.append(
            format_table(
                ("sparsity", *METHOD_ORDER),
                rows,
                title=f"{metric.capitalize()} vs sparsity ({scenario})",
            )
        )

    # Retention at the level closest to 50% (the paper's highlighted point).
    idx50 = int(np.argmin(np.abs(np.asarray(sparsity_levels) - 0.5)))
    retention = {
        m: (
            series[m]["precision"][idx50] / series[m]["precision"][0]
            if series[m]["precision"][0] > 0
            else 0.0
        )
        for m in METHOD_ORDER
    }
    cpa_best = all(retention["CPA"] >= retention[m] - 1e-9 for m in ("MV", "EM", "cBCC"))
    notes = [
        f"Precision retained at ~50% sparsity: "
        + ", ".join(f"{m}: {retention[m]:.0%}" for m in METHOD_ORDER)
        + (" — CPA retains the most, as in the paper." if cpa_best else ""),
    ]
    return ExperimentReport(
        experiment_id="fig3",
        title="Robustness against sparsity",
        paper_artefact="Figure 3",
        tables=tables,
        notes=notes,
        data={
            "levels": list(sparsity_levels),
            "series": series,
            "retention_at_50": retention,
            "cpa_retains_most": cpa_best,
        },
    )
