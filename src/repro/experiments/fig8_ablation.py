"""Fig 8 — importance of worker communities (R1) and item clusters (R3).

The §5.4 ablation compares full CPA against `No Z` (singleton worker
communities) on every dataset, and against `No L` (singleton item
clusters) on the movie dataset only — the paper found `No L` "intractable
for all except the movie dataset", whose 22 labels permit the exhaustive
``2^C`` search.  Expected shape: CPA highest precision and recall
everywhere; `No Z` notably worse on the difficult datasets; `No L`
trading recall for precision (no co-occurrence completion).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.baselines import (
    CPAAggregator,
    NoClustersAggregator,
    NoCommunitiesAggregator,
)
from repro.evaluation.metrics import evaluate_predictions
from repro.experiments.registry import ExperimentReport, register
from repro.simulation.scenarios import SCENARIO_NAMES, make_scenario
from repro.utils.tables import format_table


@register("fig8", "Effects of model aspects (ablation)", "Figure 8")
def run(
    seeds: Sequence[int] = (0, 1),
    scale: float = 1.0,
    scenarios: Sequence[str] = tuple(SCENARIO_NAMES),
    no_l_scenarios: Sequence[str] = ("movie",),
) -> ExperimentReport:
    """Run CPA / No Z everywhere and No L on the tractable scenarios."""
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in scenarios:
        acc: Dict[str, Dict[str, List[float]]] = {}
        for seed in seeds:
            dataset = make_scenario(name, seed=int(seed), scale=scale)
            methods = [CPAAggregator(), NoCommunitiesAggregator()]
            if name in no_l_scenarios:
                methods.append(NoClustersAggregator())
            for method in methods:
                evaluation = evaluate_predictions(
                    method.aggregate(dataset), dataset.truth
                )
                slot = acc.setdefault(
                    method.name, {"precision": [], "recall": []}
                )
                slot["precision"].append(evaluation.precision)
                slot["recall"].append(evaluation.recall)
        results[name] = {
            method: {
                metric: float(np.mean(values)) for metric, values in metrics.items()
            }
            for method, metrics in acc.items()
        }

    tables = []
    for metric in ("precision", "recall"):
        rows = []
        for name in scenarios:
            row: List[object] = [name]
            for method in ("CPA", "NoZ", "NoL"):
                value = results[name].get(method, {}).get(metric)
                row.append(value if value is not None else "-")
            rows.append(tuple(row))
        tables.append(
            format_table(
                ("dataset", "CPA", "No Z", "No L"),
                rows,
                title=f"{metric.capitalize()} by model variant",
            )
        )

    cpa_beats_noz = all(
        results[name]["CPA"][metric] >= results[name]["NoZ"][metric] - 0.02
        for name in scenarios
        for metric in ("precision", "recall")
    )
    notes = [
        "Full CPA matches or beats No Z on both metrics on every dataset."
        if cpa_beats_noz
        else "WARNING: No Z exceeded CPA somewhere beyond tolerance.",
        "No L runs only where the label space permits (paper §5.4 could "
        "only afford it on movie).",
    ]
    return ExperimentReport(
        experiment_id="fig8",
        title="Effects of model aspects (ablation)",
        paper_artefact="Figure 8",
        tables=tables,
        notes=notes,
        data={"results": results, "cpa_beats_noz": cpa_beats_noz},
    )
