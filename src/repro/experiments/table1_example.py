"""Table 1 — the paper's motivating example (§2.1).

Five workers label four pictures with subsets of {sky, plane, sun, water,
tree}.  Worker u3 is a uniform spammer (always answers {water}), u4 a
random spammer; majority voting is partially incorrect on i1 and partially
incomplete on i4.  This experiment reproduces the table and shows how each
aggregator handles it.  With only four items the CPA posterior is mostly
prior-driven — the point of the example is the *failure mode of MV*, which
reproduces exactly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.baselines import CPAAggregator, MajorityVoteAggregator
from repro.core.config import CPAConfig
from repro.data.answers import AnswerMatrix
from repro.data.dataset import CrowdDataset, GroundTruth
from repro.evaluation.metrics import evaluate_predictions
from repro.experiments.registry import ExperimentReport, register
from repro.utils.tables import format_table

#: Labels are 0-based here: 0=sky, 1=plane, 2=sun, 3=water, 4=tree
#: (the paper numbers them 1..5).
LABEL_NAMES = ["sky", "plane", "sun", "water", "tree"]

#: The answer matrix of paper Table 1 (rows: items i1-i4; columns: u1-u5).
TABLE1_ANSWERS = {
    (0, 0): {3, 4}, (0, 1): {3, 4}, (0, 2): {3}, (0, 3): {0}, (0, 4): {4},
    (1, 0): {1, 2}, (1, 1): {0, 3}, (1, 2): {3}, (1, 3): {1}, (1, 4): {2, 3},
    (2, 0): {0, 1}, (2, 1): {3}, (2, 2): {3}, (2, 3): {2}, (2, 4): {3, 4},
    (3, 0): {0, 1}, (3, 1): {1, 2}, (3, 2): {3}, (3, 3): {3}, (3, 4): {0, 1, 2},
}

#: The correct assignment column of Table 1.
TABLE1_TRUTH = {0: {4}, 1: {2, 3}, 2: {3, 4}, 3: {0, 1, 2}}


def build_table1_dataset() -> CrowdDataset:
    """The exact dataset of paper Table 1."""
    answers = AnswerMatrix.from_mapping(4, 5, 5, TABLE1_ANSWERS)
    truth = GroundTruth.from_mapping(4, 5, TABLE1_TRUTH)
    return CrowdDataset(
        name="table1",
        answers=answers,
        truth=truth,
        label_names=LABEL_NAMES,
    )


def _format_sets(predictions: Dict[int, FrozenSet[int]]) -> Dict[int, str]:
    return {
        item: "{" + ",".join(LABEL_NAMES[lab] for lab in sorted(labels)) + "}"
        for item, labels in predictions.items()
    }


@register("table1", "Motivating example", "Table 1")
def run(seed: int = 0) -> ExperimentReport:
    """Reproduce Table 1 and aggregate it with MV and CPA."""
    dataset = build_table1_dataset()
    mv = MajorityVoteAggregator()
    mv_pred = mv.aggregate(dataset)
    cpa = CPAAggregator(
        CPAConfig(
            seed=seed,
            truncation_clusters=4,
            truncation_communities=5,
            max_iterations=100,
        )
    )
    cpa_pred = cpa.aggregate(dataset)

    mv_named = _format_sets(mv_pred)
    cpa_named = _format_sets(cpa_pred)
    truth_named = _format_sets({i: frozenset(v) for i, v in TABLE1_TRUTH.items()})

    rows = []
    for item in range(4):
        worker_answers = [
            "{" + ",".join(LABEL_NAMES[lab] for lab in sorted(TABLE1_ANSWERS[(item, u)])) + "}"
            for u in range(5)
        ]
        rows.append(
            (f"i{item + 1}", *worker_answers, truth_named[item], mv_named[item], cpa_named[item])
        )
    table = format_table(
        ("item", "u1", "u2", "u3", "u4", "u5", "correct", "MV", "CPA"),
        rows,
        title="Paper Table 1 with aggregated answers",
    )

    mv_eval = evaluate_predictions(mv_pred, dataset.truth)
    cpa_eval = evaluate_predictions(cpa_pred, dataset.truth)
    summary = format_table(
        ("method", "precision", "recall"),
        [("MV", mv_eval.precision, mv_eval.recall), ("CPA", cpa_eval.precision, cpa_eval.recall)],
        title="Accuracy on the 4-item example",
    )

    mv_issue_i1 = 3 in mv_pred.get(0, frozenset())  # 'water' wrongly kept for i1
    return ExperimentReport(
        experiment_id="table1",
        title="Motivating example",
        paper_artefact="Table 1",
        tables=[table, summary],
        notes=[
            "The paper's observation reproduces: majority voting keeps the "
            "uniform spammer's label 'water' on i1 and misses labels on i4."
            if mv_issue_i1
            else "MV avoided the i1 error on this configuration.",
        ],
        data={
            "mv": {k: set(v) for k, v in mv_pred.items()},
            "cpa": {k: set(v) for k, v in cpa_pred.items()},
            "mv_precision": mv_eval.precision,
            "mv_recall": mv_eval.recall,
            "cpa_precision": cpa_eval.precision,
            "cpa_recall": cpa_eval.recall,
            "mv_includes_water_on_i1": mv_issue_i1,
        },
    )
