"""Dataset perturbations behind the robustness experiments.

* :func:`sparsify` — remove a fraction of answers uniformly at random
  (Fig 3: "randomly removing a certain share of the answers").
* :func:`inject_spammers` — append fresh spammer workers until their
  answers account for a target share of all answers (Fig 4: "adding
  answers of spammers … such that they account for 20% or 40% of the
  data").
* :func:`inject_label_dependencies` — move a share of the globally-missing
  true labels into answers that already contain a correct label (Fig 5:
  the label-dependency information-loss study).
* :func:`reveal_truth_fraction` — keep ground truth on only a random
  fraction of items (test questions; used by semi-supervised experiments).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.data.answers import AnswerMatrix
from repro.data.dataset import CrowdDataset
from repro.errors import ValidationError
from repro.utils.random import RandomState, Seed
from repro.workers.behavior import AnswerBehavior
from repro.workers.population import PopulationSpec, sample_population


def sparsify(dataset: CrowdDataset, sparsity: float, seed: Seed = None) -> CrowdDataset:
    """Remove ``sparsity`` of the answers uniformly at random.

    ``sparsity`` is the *removed* share, matching Fig 3's x-axis (0 keeps
    everything, 0.9 keeps 10%).  Items can lose all their answers — that is
    part of the stress the figure measures.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValidationError("sparsity must lie in [0, 1)")
    rng = RandomState(seed)
    pairs = [(a.item, a.worker) for a in dataset.answers.iter_answers()]
    keep = max(1, int(round(len(pairs) * (1.0 - sparsity))))
    order = rng.permutation(len(pairs))
    kept_pairs = [pairs[i] for i in order[:keep]]
    matrix = dataset.answers.subset(kept_pairs)
    return dataset.with_answers(matrix, suffix=f"+sparsity{sparsity:.0%}")


def inject_spammers(
    dataset: CrowdDataset,
    spam_share: float,
    seed: Seed = None,
    *,
    population: PopulationSpec | None = None,
) -> CrowdDataset:
    """Append spammer workers so their answers form ``spam_share`` of all data.

    New worker indices are added after the existing ones; each new spammer
    answers a random set of items until the target share is met.  The
    returned dataset's ``worker_types`` is extended accordingly, so
    diagnostics can still identify the injected population.
    """
    if not 0.0 <= spam_share < 1.0:
        raise ValidationError("spam_share must lie in [0, 1)")
    if spam_share == 0.0:
        return dataset
    rng = RandomState(seed)
    population = population or PopulationSpec.spammers_only()
    if population.spammer_fraction() != 1.0:
        raise ValidationError("injection population must be spammers only")

    n_existing = dataset.answers.n_answers
    # share = spam / (existing + spam)  =>  spam = existing * share / (1-share)
    n_spam_answers = int(round(n_existing * spam_share / (1.0 - spam_share)))
    if n_spam_answers == 0:
        return dataset

    # Give each injected spammer roughly the workload of an average
    # existing worker, so spammers are not identifiable by volume alone.
    active = dataset.answers.active_workers()
    per_worker = max(1, n_existing // max(len(active), 1))
    n_new_workers = max(1, int(np.ceil(n_spam_answers / per_worker)))

    profiles = sample_population(
        population,
        n_new_workers,
        dataset.n_labels,
        rng,
        typical_answer_size=max(
            1.0, dataset.answers.to_arrays()[2].sum(axis=1).mean()
        ),
    )
    behavior = AnswerBehavior(dataset.n_labels)

    matrix = AnswerMatrix(
        dataset.n_items, dataset.n_workers + n_new_workers, dataset.n_labels
    )
    for answer in dataset.answers.iter_answers():
        matrix.add(answer.item, answer.worker, answer.labels)

    remaining = n_spam_answers
    for offset, profile in enumerate(profiles):
        worker = dataset.n_workers + offset
        quota = min(per_worker, remaining, dataset.n_items)
        if quota <= 0:
            break
        items = rng.choice(dataset.n_items, size=quota, replace=False)
        for item in items:
            truth = dataset.truth.get(int(item)) or frozenset()
            matrix.add(int(item), worker, behavior.generate(profile, truth, rng))
        remaining -= quota

    worker_types = None
    if dataset.worker_types is not None:
        worker_types = list(dataset.worker_types) + [
            profile.worker_type.value for profile in profiles
        ]
    result = CrowdDataset(
        name=dataset.name + f"+spam{spam_share:.0%}",
        answers=matrix,
        truth=dataset.truth,
        label_names=dataset.label_names,
        worker_types=worker_types,
        item_clusters=dataset.item_clusters,
        extras=dict(dataset.extras),
    )
    return result


def inject_label_dependencies(
    dataset: CrowdDataset, level: float, seed: Seed = None
) -> CrowdDataset:
    """Fill in ``level`` of the globally-missing true labels (Fig 5).

    A "missing label" is a (answer, label) pair where the label is in the
    item's truth but absent from the answer, counted only over answers that
    already contain at least one correct label (the paper's condition).  A
    random ``level`` fraction of those pairs is added to the corresponding
    answers, simulating workers who exploit label co-occurrence.
    """
    if not 0.0 <= level <= 1.0:
        raise ValidationError("level must lie in [0, 1]")
    if level == 0.0:
        return dataset
    rng = RandomState(seed)

    missing: List[Tuple[int, int, int]] = []
    for answer in dataset.answers.iter_answers():
        truth = dataset.truth.get(answer.item)
        if truth is None or not (answer.labels & truth):
            continue
        for label in truth - answer.labels:
            missing.append((answer.item, answer.worker, label))

    if not missing:
        return dataset
    n_add = int(round(level * len(missing)))
    order = rng.permutation(len(missing))
    chosen = [missing[i] for i in order[:n_add]]

    matrix = dataset.answers.copy()
    for item, worker, label in chosen:
        current = matrix.get(item, worker)
        assert current is not None
        matrix.add(item, worker, current | {label})
    return dataset.with_answers(matrix, suffix=f"+deps{level:.0%}")


def reveal_truth_fraction(
    dataset: CrowdDataset, fraction: float, seed: Seed = None
) -> CrowdDataset:
    """Keep ground truth on a random ``fraction`` of items, hide the rest.

    Models the "test questions" setting of paper §3.2 where a small ``ȳ``
    is observed.  Metrics should still be computed against the *full*
    original truth; this helper only restricts what inference may see.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValidationError("fraction must lie in [0, 1]")
    rng = RandomState(seed)
    known = dataset.truth.known_items()
    n_keep = int(round(fraction * len(known)))
    keep = rng.choice(len(known), size=n_keep, replace=False) if n_keep else []
    kept_items = [known[int(i)] for i in keep]
    return CrowdDataset(
        name=dataset.name + f"+truth{fraction:.0%}",
        answers=dataset.answers,
        truth=dataset.truth.restricted_to(kept_items),
        label_names=dataset.label_names,
        worker_types=dataset.worker_types,
        item_clusters=dataset.item_clusters,
        extras=dict(dataset.extras),
    )
