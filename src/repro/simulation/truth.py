"""Ground-truth generation from item clusters (the paper's generative view).

The CPA model assumes items group into clusters whose members share label
assignment probabilities ``φ_t`` (paper §3.2, "Item Clusters").  The
simulator generates data from exactly that process so the evaluation
exercises the regime the model targets *and* the regime it does not: a
``correlation_strength`` knob interpolates between fully clustered truth
(strength 1, like the paper's image/topic/entity datasets) and independent
labels drawn from a global marginal (strength 0, like movie).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.data.dataset import GroundTruth
from repro.errors import ValidationError
from repro.simulation.labelspace import LabelSpace
from repro.utils.random import RandomState, Seed


@dataclass(frozen=True)
class TruthModel:
    """Per-item-cluster label inclusion probabilities.

    ``profiles[t, c]`` is the probability that an item of cluster ``t``
    truly carries label ``c`` (the generative ``φ_t`` of the paper);
    ``weights[t]`` is the cluster's prior mass.
    """

    profiles: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        profiles = np.asarray(self.profiles, dtype=float)
        weights = np.asarray(self.weights, dtype=float)
        if profiles.ndim != 2:
            raise ValidationError("profiles must be (T, C)")
        if weights.shape != (profiles.shape[0],):
            raise ValidationError("weights must have one entry per cluster")
        if np.any(profiles < 0) or np.any(profiles > 1):
            raise ValidationError("profiles must be probabilities")
        if np.any(weights < 0) or not np.isclose(weights.sum(), 1.0, atol=1e-6):
            raise ValidationError("weights must be a distribution")

    @property
    def n_clusters(self) -> int:
        return int(np.asarray(self.profiles).shape[0])

    @property
    def n_labels(self) -> int:
        return int(np.asarray(self.profiles).shape[1])


def build_truth_model(
    label_space: LabelSpace,
    n_item_clusters: int,
    labels_per_item_mean: float,
    correlation_strength: float,
    seed: Seed = None,
    *,
    core_inclusion: float = 0.92,
    fringe_inclusion: float = 0.2,
    background_inclusion: float = 0.01,
) -> TruthModel:
    """Construct a :class:`TruthModel` over ``label_space``.

    Every item cluster has a *sharp* profile — a few high-probability
    "core" labels (items of the cluster almost always carry them) plus
    optional medium-probability "fringe" labels — because in the paper's
    real datasets items in a latent cluster share essentially the same
    label set.  ``correlation_strength`` controls where core labels come
    from and therefore how coherent cross-item label co-occurrence is:

    * at strength 1, core labels are drawn from one or two label-space
      *clusters* (themes), so the same label groups recur across many item
      clusters and pairwise label correlation is high (the paper's image /
      topic / entity datasets);
    * at strength 0, each core label is drawn uniformly from the whole
      label space and fringe mass vanishes, so label pairs co-occur only by
      chance (the paper's movie dataset).
    """
    if n_item_clusters <= 0:
        raise ValidationError("n_item_clusters must be positive")
    if labels_per_item_mean <= 0:
        raise ValidationError("labels_per_item_mean must be positive")
    if not 0.0 <= correlation_strength <= 1.0:
        raise ValidationError("correlation_strength must lie in [0, 1]")

    rng = RandomState(seed)
    n_labels = label_space.n_labels
    profiles = np.full((n_item_clusters, n_labels), background_inclusion)

    for t in range(n_item_clusters):
        n_themes = 1 if label_space.n_clusters == 1 else int(rng.integers(1, 3))
        theme_ids = rng.choice(
            label_space.n_clusters,
            size=min(n_themes, label_space.n_clusters),
            replace=False,
        )
        theme_labels: List[int] = []
        for theme in theme_ids:
            theme_labels.extend(label_space.clusters[int(theme)])
        theme_labels = sorted(set(theme_labels))

        n_core = max(1, min(n_labels, int(round(labels_per_item_mean))))
        core: set[int] = set()
        while len(core) < n_core:
            if rng.random() < correlation_strength and len(core) < len(theme_labels):
                pool = [lab for lab in theme_labels if lab not in core]
            else:
                pool = [lab for lab in range(n_labels) if lab not in core]
            core.add(int(rng.choice(pool)))

        fringe_level = fringe_inclusion * correlation_strength
        if fringe_level > 0:
            for label in theme_labels:
                if label not in core:
                    profiles[t, label] = fringe_level * rng.uniform(0.6, 1.4)
        for label in core:
            profiles[t, label] = core_inclusion * rng.uniform(0.9, 1.08)

    profiles = np.clip(profiles, 1e-4, 0.97)
    raw_weights = rng.dirichlet(np.full(n_item_clusters, 5.0))
    return TruthModel(profiles=profiles, weights=raw_weights)


def sample_truth(
    model: TruthModel,
    n_items: int,
    seed: Seed = None,
    *,
    max_labels_per_item: int = 10,
) -> Tuple[List[int], GroundTruth]:
    """Sample item-cluster assignments and true label sets from ``model``.

    Returns ``(assignments, truth)`` where ``assignments[i]`` is item ``i``'s
    generating cluster.  Label sets are per-label Bernoulli draws from the
    cluster profile, clamped to ``[1, max_labels_per_item]`` labels (an
    all-miss draw falls back to the cluster's most probable label, an
    oversized draw keeps the most probable sampled labels).
    """
    if n_items <= 0:
        raise ValidationError("n_items must be positive")
    if max_labels_per_item <= 0:
        raise ValidationError("max_labels_per_item must be positive")

    rng = RandomState(seed)
    profiles = np.asarray(model.profiles, dtype=float)
    weights = np.asarray(model.weights, dtype=float)

    assignments = rng.choice(model.n_clusters, size=n_items, p=weights)
    truth = GroundTruth(n_items, model.n_labels)
    for item in range(n_items):
        profile = profiles[assignments[item]]
        mask = rng.random(model.n_labels) < profile
        labels = np.flatnonzero(mask)
        if labels.size == 0:
            labels = np.array([int(np.argmax(profile))])
        elif labels.size > max_labels_per_item:
            order = np.argsort(-profile[labels])
            labels = labels[order[:max_labels_per_item]]
        truth.set(item, (int(label) for label in labels))
    return [int(a) for a in assignments], truth
