"""Crowd-simulation substrate.

The paper evaluates on five CrowdFlower-labelled datasets (Table 3) that are
not publicly redistributable; this package builds their synthetic
equivalents (see DESIGN.md §3): label spaces with co-occurrence clusters
(Fig 1), item-cluster-driven ground truth, heterogeneous worker populations
(§5.1's simulation recipe), and the perturbation tools behind the
robustness experiments (sparsity — Fig 3, spammer injection — Fig 4,
label-dependency injection — Fig 5).
"""

from repro.simulation.generator import SimulationConfig, generate_dataset
from repro.simulation.labelspace import LabelSpace, cooccurrence_graph
from repro.simulation.perturbations import (
    inject_label_dependencies,
    inject_spammers,
    reveal_truth_fraction,
    sparsify,
)
from repro.simulation.scenarios import (
    SCENARIO_NAMES,
    large_scale_config,
    make_scenario,
    scenario_config,
)
from repro.simulation.truth import TruthModel, build_truth_model, sample_truth

__all__ = [
    "SimulationConfig",
    "generate_dataset",
    "LabelSpace",
    "cooccurrence_graph",
    "inject_label_dependencies",
    "inject_spammers",
    "reveal_truth_fraction",
    "sparsify",
    "SCENARIO_NAMES",
    "large_scale_config",
    "make_scenario",
    "scenario_config",
    "TruthModel",
    "build_truth_model",
    "sample_truth",
]
