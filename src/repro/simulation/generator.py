"""End-to-end crowd dataset generation.

:func:`generate_dataset` wires the substrates together: a label space with
co-occurrence clusters → an item-cluster truth model → a heterogeneous
worker population → per-answer synthesis.  The output is a
:class:`~repro.data.dataset.CrowdDataset` carrying full provenance (true
worker types, generating item clusters) so diagnostics experiments can
compare inferred structure against the generating one.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from repro.data.answers import AnswerMatrix
from repro.data.dataset import CrowdDataset
from repro.errors import ValidationError
from repro.simulation.labelspace import LabelSpace
from repro.simulation.truth import build_truth_model, sample_truth
from repro.utils.random import Seed, spawn_rngs
from repro.workers.behavior import AnswerBehavior
from repro.workers.population import PopulationSpec, sample_population
from repro.workers.types import WorkerProfile


@dataclass(frozen=True)
class SimulationConfig:
    """Full specification of one synthetic crowd dataset.

    The fields mirror the knobs the paper's evaluation varies: sizes
    (items/workers/labels/answers), label-correlation strength, worker
    population mixture, answer-distribution skew, and task difficulty
    (paper §5.1, "the distribution of worker answers is skewed in datasets
    (1) and (5) … tasks in (2), (3), (4) … more difficult … labels in (1),
    (2), (4) strongly correlated").
    """

    name: str
    n_items: int
    n_workers: int
    n_labels: int
    n_label_clusters: int
    n_item_clusters: int
    labels_per_item_mean: float = 2.0
    max_labels_per_item: int = 10
    answers_per_item: int = 6
    correlation_strength: float = 0.9
    difficulty: float = 0.0
    item_difficulty_spread: float = 0.5
    worker_skew: str = "normal"
    population: PopulationSpec = field(default_factory=PopulationSpec.paper_default)

    def __post_init__(self) -> None:
        for name in ("n_items", "n_workers", "n_labels", "n_label_clusters", "n_item_clusters"):
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be positive")
        if self.n_label_clusters > self.n_labels:
            raise ValidationError("cannot have more label clusters than labels")
        if self.answers_per_item <= 0:
            raise ValidationError("answers_per_item must be positive")
        if self.answers_per_item > self.n_workers:
            raise ValidationError("answers_per_item cannot exceed n_workers")
        if not 0.0 <= self.correlation_strength <= 1.0:
            raise ValidationError("correlation_strength must lie in [0, 1]")
        if not 0.0 <= self.difficulty <= 1.0:
            raise ValidationError("difficulty must lie in [0, 1]")
        if not 0.0 <= self.item_difficulty_spread <= 1.0:
            raise ValidationError("item_difficulty_spread must lie in [0, 1]")
        if self.worker_skew not in ("normal", "skewed"):
            raise ValidationError("worker_skew must be 'normal' or 'skewed'")

    def scaled(self, factor: float) -> "SimulationConfig":
        """A resized copy: item/worker counts multiplied by ``factor``.

        Labels and cluster counts are kept (the label space defines the
        task); answers-per-item is preserved so sparsity stays comparable.
        """
        if factor <= 0:
            raise ValidationError("factor must be positive")
        return replace(
            self,
            n_items=max(4, int(round(self.n_items * factor))),
            n_workers=max(
                self.answers_per_item, int(round(self.n_workers * factor))
            ),
        )


def _apply_difficulty(
    profiles: List[WorkerProfile], difficulty: float
) -> List[WorkerProfile]:
    """Degrade honest workers on harder tasks.

    Difficulty ``d`` scales sensitivities by ``1 - 0.35 d`` and inflates
    false-positive counts by ``1 + d`` — harder tasks make honest workers
    miss more true labels and guess more wrong ones, while spammers are (by
    definition) unaffected.
    """
    if difficulty == 0.0:
        return profiles
    adjusted: List[WorkerProfile] = []
    for profile in profiles:
        if profile.worker_type.is_spammer:
            adjusted.append(profile)
            continue
        adjusted.append(
            WorkerProfile(
                worker_type=profile.worker_type,
                sensitivity=np.clip(
                    np.asarray(profile.sensitivity) * (1.0 - 0.35 * difficulty),
                    0.05,
                    0.995,
                ),
                fp_mean=profile.fp_mean * (1.0 + difficulty),
            )
        )
    return adjusted


def _worker_selection_weights(
    n_workers: int, skew: str, rng: np.random.Generator
) -> np.ndarray:
    """Per-worker assignment propensities.

    ``normal`` gives mild lognormal variation (every worker does similar
    amounts of work); ``skewed`` gives a heavy-tailed Zipf-like profile
    (a few prolific workers dominate), matching the answer-count skew the
    paper reports for the image and movie datasets.
    """
    if skew == "normal":
        weights = rng.lognormal(mean=0.0, sigma=0.25, size=n_workers)
    else:
        ranks = np.arange(1, n_workers + 1, dtype=float)
        weights = 1.0 / ranks**0.85
        rng.shuffle(weights)
    return weights / weights.sum()


def generate_dataset(
    config: SimulationConfig,
    seed: Seed = None,
    label_space: Optional[LabelSpace] = None,
) -> CrowdDataset:
    """Generate a complete synthetic crowd dataset from ``config``.

    The five random stages (label space, truth model, truth sampling,
    population, answers) consume independent child RNGs, so e.g. enlarging
    the worker pool does not change the ground truth drawn for a given seed.
    """
    rng_space, rng_model, rng_truth, rng_pop, rng_answers = spawn_rngs(seed, 5)

    if label_space is None:
        label_space = LabelSpace.generate(
            config.n_labels, config.n_label_clusters, rng_space
        )
    elif label_space.n_labels != config.n_labels:
        raise ValidationError("label_space size disagrees with config.n_labels")

    model = build_truth_model(
        label_space,
        config.n_item_clusters,
        config.labels_per_item_mean,
        config.correlation_strength,
        rng_model,
    )
    clusters, truth = sample_truth(
        model,
        config.n_items,
        rng_truth,
        max_labels_per_item=config.max_labels_per_item,
    )

    profiles = sample_population(
        config.population,
        config.n_workers,
        config.n_labels,
        rng_pop,
        typical_answer_size=config.labels_per_item_mean,
    )
    profiles = _apply_difficulty(profiles, config.difficulty)

    behavior = AnswerBehavior(
        config.n_labels,
        confusability=label_space.confusability(),
    )
    weights = _worker_selection_weights(config.n_workers, config.worker_skew, rng_answers)

    # Per-item difficulty: a hard item degrades *every* worker's chance of
    # recognising its labels, correlating errors across workers.
    item_hardness = rng_answers.beta(2.0, 4.0, size=config.n_items)
    sensitivity_scales = np.clip(
        1.0 - config.item_difficulty_spread * item_hardness, 0.2, 1.0
    )

    matrix = AnswerMatrix(config.n_items, config.n_workers, config.n_labels)
    all_workers = np.arange(config.n_workers)
    for item in range(config.n_items):
        chosen = rng_answers.choice(
            all_workers, size=config.answers_per_item, replace=False, p=weights
        )
        item_truth = truth.get(item)
        assert item_truth is not None  # sample_truth covers every item
        for worker in chosen:
            answer = behavior.generate(
                profiles[int(worker)],
                item_truth,
                rng_answers,
                sensitivity_scale=float(sensitivity_scales[item]),
            )
            matrix.add(item, int(worker), answer)

    return CrowdDataset(
        name=config.name,
        answers=matrix,
        truth=truth,
        worker_types=[profile.worker_type.value for profile in profiles],
        item_clusters=clusters,
        extras={
            "label_space_clusters": [list(c) for c in label_space.clusters],
            "config": config,
        },
    )
