"""The five evaluation scenarios (synthetic stand-ins for paper Table 3).

Each scenario preserves the *relative* characteristics the paper reports
for its real dataset (§5.1):

=========  ==============  ===========  =============  ===========
scenario   label corr.     difficulty   answer skew    paper source
=========  ==============  ===========  =============  ===========
image      strong          low          skewed         NUS-WIDE image tagging
topic      strong          high         normal         TREC-2011 tweet topics
aspect     weak            high         normal         restaurant review aspects
entity     strongest       high         normal         T-NER tweet entities
movie      weak            low          skewed         IMDB genre tagging
=========  ==============  ===========  =============  ===========

Sizes are scaled to laptop budgets (hundreds of items, ~1e4 answers at
``scale=1``) while keeping the answer-per-item density of the originals
(Table 3: ≈ 4–30 answers per question).  ``scale`` rescales item and worker
counts for quick tests or heavier runs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ValidationError
from repro.data.dataset import CrowdDataset
from repro.simulation.generator import SimulationConfig, generate_dataset
from repro.utils.random import Seed

SCENARIO_NAMES: List[str] = ["image", "topic", "aspect", "entity", "movie"]

_BASE_CONFIGS: Dict[str, SimulationConfig] = {
    "image": SimulationConfig(
        name="image",
        n_items=240,
        n_workers=100,
        n_labels=30,
        n_label_clusters=6,
        n_item_clusters=10,
        labels_per_item_mean=3.0,
        max_labels_per_item=10,
        answers_per_item=5,
        correlation_strength=0.92,
        difficulty=0.3,
        worker_skew="skewed",
    ),
    "topic": SimulationConfig(
        name="topic",
        n_items=240,
        n_workers=90,
        n_labels=25,
        n_label_clusters=5,
        n_item_clusters=9,
        labels_per_item_mean=2.4,
        max_labels_per_item=5,
        answers_per_item=5,
        correlation_strength=0.9,
        difficulty=0.5,
        worker_skew="normal",
    ),
    "aspect": SimulationConfig(
        name="aspect",
        n_items=280,
        n_workers=110,
        n_labels=36,
        n_label_clusters=18,
        n_item_clusters=12,
        labels_per_item_mean=2.6,
        max_labels_per_item=5,
        answers_per_item=5,
        correlation_strength=0.45,
        difficulty=0.55,
        worker_skew="normal",
    ),
    "entity": SimulationConfig(
        name="entity",
        n_items=240,
        n_workers=110,
        n_labels=32,
        n_label_clusters=5,
        n_item_clusters=8,
        labels_per_item_mean=2.8,
        max_labels_per_item=8,
        answers_per_item=5,
        correlation_strength=0.97,
        difficulty=0.5,
        worker_skew="normal",
    ),
    "movie": SimulationConfig(
        name="movie",
        n_items=160,
        n_workers=120,
        n_labels=22,
        n_label_clusters=14,
        n_item_clusters=10,
        labels_per_item_mean=2.2,
        max_labels_per_item=4,
        answers_per_item=6,
        correlation_strength=0.35,
        difficulty=0.2,
        worker_skew="skewed",
    ),
}

#: Per-scenario base seeds so each scenario is a *different* random world
#: even when the caller passes the same experiment seed.
_SCENARIO_SEED_OFFSETS: Dict[str, int] = {
    name: 1009 * (index + 1) for index, name in enumerate(SCENARIO_NAMES)
}


def scenario_config(name: str, scale: float = 1.0) -> SimulationConfig:
    """The :class:`SimulationConfig` for scenario ``name`` at ``scale``."""
    if name not in _BASE_CONFIGS:
        raise ValidationError(
            f"unknown scenario {name!r}; choose from {SCENARIO_NAMES}"
        )
    config = _BASE_CONFIGS[name]
    return config if scale == 1.0 else config.scaled(scale)


def make_scenario(name: str, seed: Seed = 0, scale: float = 1.0) -> CrowdDataset:
    """Generate scenario ``name`` deterministically from ``seed``.

    Integer seeds are offset per scenario so the five scenarios drawn with
    the same experiment seed remain independent datasets.
    """
    config = scenario_config(name, scale)
    if isinstance(seed, int):
        seed = seed + _SCENARIO_SEED_OFFSETS[name]
    return generate_dataset(config, seed)


def large_scale_config(
    n_items: int = 2000,
    n_workers: int = 400,
    n_labels: int = 10,
    answers_per_item: int = 10,
) -> SimulationConfig:
    """The Fig-7 scalability workload (paper: 1e4 items/workers, 10 labels).

    Defaults are sized for a laptop sweep; the Fig-7 experiment scales
    ``answers_per_item`` to sweep the number of answers, exactly as the
    paper varies "the number of workers per item from 10 to 100".
    """
    return SimulationConfig(
        name="large-scale",
        n_items=n_items,
        n_workers=n_workers,
        n_labels=n_labels,
        n_label_clusters=3,
        n_item_clusters=6,
        labels_per_item_mean=2.5,
        max_labels_per_item=6,
        answers_per_item=answers_per_item,
        correlation_strength=0.9,
        difficulty=0.2,
        worker_skew="normal",
    )
