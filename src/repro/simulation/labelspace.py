"""Label spaces with cluster structure and co-occurrence graphs.

Requirement R3 of the paper rests on labels being *correlated*: similar
items share overlapping label sets, and the co-occurrence structure forms
clusters (paper Fig 1 shows {sky, birds, cloud} vs {flower, road} in
NUS-WIDE).  A :class:`LabelSpace` partitions labels into such clusters;
:func:`cooccurrence_graph` recovers the empirical co-occurrence graph from
answers, which the Fig-1 experiment renders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.errors import ValidationError
from repro.utils.random import RandomState, Seed


@dataclass(frozen=True)
class LabelSpace:
    """A label index space partitioned into co-occurrence clusters."""

    n_labels: int
    clusters: Tuple[Tuple[int, ...], ...]
    names: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.n_labels <= 0:
            raise ValidationError("n_labels must be positive")
        seen: set[int] = set()
        for cluster in self.clusters:
            if not cluster:
                raise ValidationError("label clusters must be non-empty")
            for label in cluster:
                if not 0 <= label < self.n_labels:
                    raise ValidationError(f"label {label} out of range")
                if label in seen:
                    raise ValidationError(f"label {label} appears in two clusters")
                seen.add(label)
        if seen != set(range(self.n_labels)):
            raise ValidationError("clusters must partition the label space")
        if self.names is not None and len(self.names) != self.n_labels:
            raise ValidationError("names length must equal n_labels")

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def cluster_of(self, label: int) -> int:
        """Index of the cluster containing ``label``."""
        for index, cluster in enumerate(self.clusters):
            if label in cluster:
                return index
        raise ValidationError(f"label {label} not in any cluster")

    def cluster_assignment(self) -> np.ndarray:
        """Length-``C`` vector mapping label → cluster index."""
        assignment = np.empty(self.n_labels, dtype=int)
        for index, cluster in enumerate(self.clusters):
            for label in cluster:
                assignment[label] = index
        return assignment

    def confusability(self, within: float = 3.0, across: float = 0.3) -> np.ndarray:
        """``C × C`` confusion-plausibility matrix for answer synthesis.

        Wrongly adding a label from the *same* cluster as a true label is
        ``within / across`` times more plausible than a cross-cluster
        mistake; the diagonal is zero (a true label cannot be its own false
        positive).
        """
        if within <= 0 or across <= 0:
            raise ValidationError("confusability weights must be positive")
        assignment = self.cluster_assignment()
        same = assignment[:, None] == assignment[None, :]
        matrix = np.where(same, within, across).astype(float)
        np.fill_diagonal(matrix, 0.0)
        return matrix

    @classmethod
    def generate(
        cls,
        n_labels: int,
        n_clusters: int,
        seed: Seed = None,
        names: Optional[Sequence[str]] = None,
    ) -> "LabelSpace":
        """Random balanced partition of ``n_labels`` into ``n_clusters``."""
        if n_clusters <= 0 or n_clusters > n_labels:
            raise ValidationError("need 1 <= n_clusters <= n_labels")
        rng = RandomState(seed)
        order = rng.permutation(n_labels)
        buckets: List[List[int]] = [[] for _ in range(n_clusters)]
        for position, label in enumerate(order):
            buckets[position % n_clusters].append(int(label))
        return cls(
            n_labels=n_labels,
            clusters=tuple(tuple(sorted(bucket)) for bucket in buckets),
            names=tuple(names) if names is not None else None,
        )

    @classmethod
    def trivial(cls, n_labels: int) -> "LabelSpace":
        """Every label its own cluster — the *uncorrelated* limit."""
        return cls(
            n_labels=n_labels,
            clusters=tuple((label,) for label in range(n_labels)),
        )


def cooccurrence_graph(
    counts: np.ndarray,
    *,
    min_edge_weight: float = 0.05,
    label_names: Optional[Sequence[str]] = None,
) -> nx.Graph:
    """Build the Fig-1 style co-occurrence graph from a count matrix.

    ``counts`` is the symmetric matrix from
    :meth:`repro.data.answers.AnswerMatrix.cooccurrence_counts` (diagonal =
    per-label occurrence cardinality).  Edge weights are normalised
    co-occurrence strengths ``count(a, b) / min(count(a), count(b))``; edges
    weaker than ``min_edge_weight`` are dropped.  Node attribute ``size``
    holds the occurrence cardinality, matching the figure's vertex sizes.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 2 or counts.shape[0] != counts.shape[1]:
        raise ValidationError("counts must be a square matrix")
    n = counts.shape[0]
    graph = nx.Graph()
    for label in range(n):
        name = label_names[label] if label_names is not None else str(label)
        graph.add_node(label, name=name, size=float(counts[label, label]))
    for a in range(n):
        for b in range(a + 1, n):
            if counts[a, b] <= 0:
                continue
            denom = min(counts[a, a], counts[b, b])
            if denom <= 0:
                continue
            weight = counts[a, b] / denom
            if weight >= min_edge_weight:
                graph.add_edge(a, b, weight=float(weight))
    return graph


def detected_label_clusters(graph: nx.Graph, *, min_weight: float = 0.25) -> List[set]:
    """Connected components of the thresholded co-occurrence graph.

    A cheap structural check used in tests and the Fig-1 experiment: with
    strong within-cluster co-occurrence, components recover the generating
    label clusters.
    """
    strong = nx.Graph()
    strong.add_nodes_from(graph.nodes)
    for a, b, data in graph.edges(data=True):
        if data.get("weight", 0.0) >= min_weight:
            strong.add_edge(a, b)
    return [set(component) for component in nx.connected_components(strong)]
