"""R5 — dtype hygiene: the hot numeric modules name their dtypes.

The ROADMAP's float32-at-volume item will flip the working precision of
the variational state behind a config knob.  That flip is only safe if
today's float64 choices are *explicit*: an ``np.zeros(shape)`` relying
on NumPy's float64 default silently upcasts the moment a float32 array
flows into the same expression — and the related exp-family VB stacks
this repo draws on hit exactly that class of bug.  The rule makes the
implicit default illegal in the three modules that allocate the
numeric state: ``core/kernels.py``, ``core/sharding.py``,
``core/svi.py``.

Flagged: ``np.zeros/ones/empty/full/array/linspace/eye/identity`` calls
without an explicit ``dtype=`` keyword.  Deliberately *not* flagged:

* ``asarray``/``asanyarray`` — a dtype-preserving view of the caller's
  array is the point;
* ``*_like`` constructors — they inherit the exemplar's dtype by
  definition;
* ``arange`` on integer arguments — index math with a well-defined
  integer result.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Tuple

from repro.analysis.base import (
    Finding,
    Module,
    Rule,
    dotted_name,
    enclosing_symbols,
)

#: package-relative files that allocate the numeric state.
SCOPED_FILES = ("core/kernels.py", "core/sharding.py", "core/svi.py")

#: numpy constructors that take NumPy's float64 default when dtype is
#: omitted (``array`` infers from data, equally implicit).
CONSTRUCTORS = {
    "zeros",
    "ones",
    "empty",
    "full",
    "array",
    "linspace",
    "eye",
    "identity",
}

#: module aliases the constructors are reached through.
NUMPY_ALIASES = {"np", "numpy"}


class DtypeHygieneRule(Rule):
    rule_id = "R5"
    name = "dtype-hygiene"
    description = (
        "array constructors in core/kernels.py, core/sharding.py and "
        "core/svi.py must pass an explicit dtype= (float32-at-volume prep)"
    )

    def check(self, modules: Sequence[Module]) -> List[Finding]:
        findings: List[Finding] = []
        for module in modules:
            if module.rel not in SCOPED_FILES:
                continue
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: Module) -> List[Finding]:
        findings: List[Finding] = []
        symbols = enclosing_symbols(module.tree)
        per_symbol: Dict[Tuple[str, str], int] = {}
        calls = sorted(
            (
                node
                for node in ast.walk(module.tree)
                if isinstance(node, ast.Call)
            ),
            key=lambda call: (call.lineno, call.col_offset),
        )
        for node in calls:
            dotted = dotted_name(node.func)
            if dotted is None or "." not in dotted:
                continue
            prefix, _, constructor = dotted.rpartition(".")
            if prefix not in NUMPY_ALIASES or constructor not in CONSTRUCTORS:
                continue
            if any(keyword.arg == "dtype" for keyword in node.keywords):
                continue
            symbol = symbols.get(id(node), "<module>")
            index = per_symbol.get((symbol, constructor), 0)
            per_symbol[(symbol, constructor)] = index + 1
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=module.rel,
                    line=node.lineno,
                    message=(
                        f"{dotted}() without explicit dtype= takes the "
                        "float64 default implicitly; name the dtype so the "
                        "float32-at-volume switch cannot silently upcast"
                    ),
                    key=f"R5:{module.rel}:{symbol}:{constructor}:{index}",
                )
            )
        return findings
