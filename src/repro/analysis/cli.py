"""``python -m repro.analysis`` — run the rule set over a source tree.

Exit codes follow the perf gate's convention:

* ``0`` — clean (no findings beyond the baseline; in ``--check`` mode
  the baseline must also have no stale entries);
* ``1`` — new findings (or stale baseline entries under ``--check``);
* ``2`` — the analyzer itself could not run (unreadable source,
  malformed baseline, unknown rule id).

``main`` returns the code rather than raising ``SystemExit`` so the
test suite and future tooling can call it in-process.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, TextIO

from repro.analysis.base import Rule, collect_modules, run_rules
from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    save_baseline,
)
from repro.analysis.checkpoint_sync import CheckpointSyncRule
from repro.analysis.determinism import DeterminismRule
from repro.analysis.dtypes import DtypeHygieneRule
from repro.analysis.locks import LockDisciplineRule
from repro.analysis.taxonomy import ErrorTaxonomyRule
from repro.analysis.wire import WireProtocolRule
from repro.errors import AnalysisError

#: the full rule registry, in rule-id order.
ALL_RULES: List[Rule] = [
    DeterminismRule(),
    LockDisciplineRule(),
    WireProtocolRule(),
    ErrorTaxonomyRule(),
    DtypeHygieneRule(),
    CheckpointSyncRule(),
]

#: default scan target: the installed ``repro`` package itself.
DEFAULT_TARGET = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def select_rules(spec: Optional[str]) -> List[Rule]:
    """Resolve a ``--rules R1,R4`` spec against the registry."""
    if spec is None:
        return list(ALL_RULES)
    by_id = {rule.rule_id: rule for rule in ALL_RULES}
    selected: List[Rule] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token not in by_id:
            raise AnalysisError(
                f"unknown rule id {token!r}; known: {', '.join(sorted(by_id))}"
            )
        selected.append(by_id[token])
    if not selected:
        raise AnalysisError(f"--rules selected nothing from {spec!r}")
    return selected


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repo-invariant static analysis for the repro package",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files or directories to scan (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="suppression file (default: the checked-in BASELINE.json)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="R1,R2",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI mode: also fail on stale baseline entries",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to cover exactly the current findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def main(
    argv: Optional[Sequence[str]] = None, stream: Optional[TextIO] = None
) -> int:
    out = stream if stream is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            out.write(f"{rule.rule_id}  {rule.name}: {rule.description}\n")
        return 0
    try:
        rules = select_rules(args.rules)
        modules = collect_modules(args.paths or [DEFAULT_TARGET])
        findings = run_rules(modules, rules)
        baseline = load_baseline(args.baseline)
        if args.write_baseline:
            baseline = save_baseline(args.baseline, findings, baseline)
        new, suppressed, stale = baseline.split(findings)
    except AnalysisError as exc:
        out.write(f"analysis error: {exc}\n")
        return 2
    # stale entries from unselected rules are expected, not drift
    if args.rules is not None:
        selected_ids = {rule.rule_id for rule in rules}
        stale = [key for key in stale if key.split(":", 1)[0] in selected_ids]
    failed = bool(new) or (args.check and bool(stale))
    if args.format == "json":
        out.write(
            json.dumps(
                {
                    "findings": [finding.as_dict() for finding in new],
                    "suppressed": len(suppressed),
                    "stale": stale,
                    "modules": len(modules),
                    "ok": not failed,
                },
                indent=2,
            )
            + "\n"
        )
    else:
        for finding in new:
            out.write(finding.render() + "\n")
        for key in stale:
            out.write(
                f"stale baseline entry: {key} (no longer matches anything "
                "— remove it)\n"
            )
        out.write(
            f"{len(modules)} modules, {len(rules)} rules: "
            f"{len(new)} new finding(s), {len(suppressed)} baselined"
            + (f", {len(stale)} stale baseline entr(y/ies)" if stale else "")
            + "\n"
        )
    return 1 if failed else 0
