"""``python -m repro.analysis`` — run the rule set over a source tree.

Exit codes follow the perf gate's convention:

* ``0`` — clean (no findings beyond the baseline; in ``--check`` mode
  the baseline must also have no stale entries);
* ``1`` — new findings (or stale baseline entries under ``--check``);
* ``2`` — the analyzer itself could not run (unreadable source,
  malformed baseline, unknown rule id).

``main`` returns the code rather than raising ``SystemExit`` so the
test suite and future tooling can call it in-process.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional, Sequence, Set, TextIO

from repro.analysis.base import Module, Rule, collect_modules, run_rules
from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    save_baseline,
)
from repro.analysis.checkpoint_sync import CheckpointSyncRule
from repro.analysis.config_plumbing import ConfigPlumbingRule
from repro.analysis.determinism import DeterminismRule
from repro.analysis.dtypes import DtypeHygieneRule
from repro.analysis.graph import GraphRule, build_graph
from repro.analysis.lifecycle import ResourceLifecycleRule
from repro.analysis.lockorder import LockOrderRule
from repro.analysis.locks import LockDisciplineRule
from repro.analysis.replies import ReplyShapeRule
from repro.analysis.taxonomy import ErrorTaxonomyRule
from repro.analysis.wire import WireProtocolRule
from repro.errors import AnalysisError

#: the full rule registry, in rule-id order.
ALL_RULES: List[Rule] = [
    DeterminismRule(),
    LockDisciplineRule(),
    WireProtocolRule(),
    ErrorTaxonomyRule(),
    DtypeHygieneRule(),
    CheckpointSyncRule(),
    LockOrderRule(),
    ConfigPlumbingRule(),
    ResourceLifecycleRule(),
    ReplyShapeRule(),
]

#: default scan target: the installed ``repro`` package itself.
DEFAULT_TARGET = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def select_rules(spec: Optional[str]) -> List[Rule]:
    """Resolve a ``--rules R1,R4`` spec against the registry."""
    if spec is None:
        return list(ALL_RULES)
    by_id = {rule.rule_id: rule for rule in ALL_RULES}
    selected: List[Rule] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token not in by_id:
            raise AnalysisError(
                f"unknown rule id {token!r}; known: {', '.join(sorted(by_id))}"
            )
        selected.append(by_id[token])
    if not selected:
        raise AnalysisError(f"--rules selected nothing from {spec!r}")
    return selected


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repo-invariant static analysis for the repro package",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files or directories to scan (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="suppression file (default: the checked-in BASELINE.json)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format (github: Actions workflow annotations)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run rules on N threads (graph built once, order unchanged)",
    )
    parser.add_argument(
        "--diff-base",
        default=None,
        metavar="REF",
        help=(
            "analyze only modules changed since the git ref, plus their "
            "import closure (both directions); stale-baseline checks are "
            "skipped in this mode — run the full tree for those"
        ),
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="R1,R2",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI mode: also fail on stale baseline entries",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to cover exactly the current findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def main(
    argv: Optional[Sequence[str]] = None, stream: Optional[TextIO] = None
) -> int:
    out = stream if stream is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            out.write(f"{rule.rule_id}  {rule.name}: {rule.description}\n")
        return 0
    timings: Dict[str, float] = {}
    try:
        if args.jobs < 1:
            raise AnalysisError(f"--jobs must be >= 1, got {args.jobs}")
        rules = select_rules(args.rules)
        modules = collect_modules(args.paths or [DEFAULT_TARGET])
        if args.diff_base is not None:
            modules = _narrow_to_diff(modules, args.diff_base)
            if not modules:
                out.write(
                    f"no scanned modules changed since {args.diff_base}\n"
                )
                return 0
        graph = (
            build_graph(modules)
            if any(isinstance(rule, GraphRule) for rule in rules)
            else None
        )
        findings = run_rules(
            modules, rules, jobs=args.jobs, graph=graph, timings=timings
        )
        baseline = load_baseline(args.baseline)
        if args.write_baseline:
            baseline = save_baseline(args.baseline, findings, baseline)
        new, suppressed, stale = baseline.split(findings)
    except AnalysisError as exc:
        out.write(f"analysis error: {exc}\n")
        return 2
    # stale entries from unselected rules are expected, not drift
    if args.rules is not None:
        selected_ids = {rule.rule_id for rule in rules}
        stale = [key for key in stale if key.split(":", 1)[0] in selected_ids]
    if args.diff_base is not None:
        stale = []  # a partial scan cannot tell stale from out-of-scope
    failed = bool(new) or (args.check and bool(stale))
    if args.format == "json":
        out.write(
            json.dumps(
                {
                    "findings": [finding.as_dict() for finding in new],
                    "suppressed": len(suppressed),
                    "stale": stale,
                    "modules": len(modules),
                    "timings": {
                        rule_id: round(seconds, 6)
                        for rule_id, seconds in sorted(timings.items())
                    },
                    "ok": not failed,
                },
                indent=2,
            )
            + "\n"
        )
    elif args.format == "github":
        paths = {module.rel: module.path for module in modules}
        for finding in new:
            file_path = os.path.relpath(paths.get(finding.path, finding.path))
            message = finding.message.replace("\n", " ")
            out.write(
                f"::error file={file_path},line={finding.line},"
                f"title={finding.rule}::{message}\n"
            )
        for key in stale:
            out.write(f"::warning title=stale-baseline::{key} no longer "
                      "matches anything — remove it\n")
    else:
        for finding in new:
            out.write(finding.render() + "\n")
        for key in stale:
            out.write(
                f"stale baseline entry: {key} (no longer matches anything "
                "— remove it)\n"
            )
        out.write(
            f"{len(modules)} modules, {len(rules)} rules: "
            f"{len(new)} new finding(s), {len(suppressed)} baselined"
            + (f", {len(stale)} stale baseline entr(y/ies)" if stale else "")
            + "\n"
        )
    return 1 if failed else 0


def _narrow_to_diff(modules: List[Module], ref: str) -> List[Module]:
    """The ``--diff-base`` scope: modules git reports changed since
    ``ref``, widened to their import closure in both directions (a
    change to ``transport.py`` re-checks everything importing it)."""
    if not modules:
        return []
    anchor = os.path.dirname(modules[0].path)
    try:
        top = subprocess.run(
            ["git", "-C", anchor, "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=False,
        )
        diff = subprocess.run(
            ["git", "-C", anchor, "diff", "--name-only", ref, "--"],
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError as exc:
        raise AnalysisError(f"cannot run git for --diff-base: {exc}") from exc
    if top.returncode != 0:
        raise AnalysisError(
            "--diff-base needs the scanned tree inside a git repository: "
            + top.stderr.strip()
        )
    if diff.returncode != 0:
        raise AnalysisError(
            f"git diff against {ref!r} failed: " + diff.stderr.strip()
        )
    root = top.stdout.strip()
    changed_paths: Set[str] = {
        os.path.abspath(os.path.join(root, line.strip()))
        for line in diff.stdout.splitlines()
        if line.strip()
    }
    changed_rels = {
        module.rel for module in modules if module.path in changed_paths
    }
    if not changed_rels:
        return []
    scope = build_graph(modules).module_closure(changed_rels)
    return [module for module in modules if module.rel in scope]
