"""R9 — resource lifecycle: acquired resources are released on all paths.

The serving stack acquires real OS resources — sockets
(``socket.create_server`` / ``connect``), worker subprocesses, scratch
directories (``tempfile.mkdtemp``), thread/process pools, daemons and
channels — and a leak only shows up hours into a soak run as fd
exhaustion or a zombie worker.  The repo's convention (idempotent
``close()``, ``try/finally`` around serve loops, ``weakref.finalize``
for scratch dirs) is easy to forget at a new call site, so this rule
enforces it statically.

For every *local variable* assigned from a resource factory, one of the
following must hold inside the function:

* the acquisition is a context manager (``with factory() as x``);
* some ``finally`` block (or an ``except`` cleanup handler) calls a
  release method on it (``close``/``kill``/``terminate``/``join``/
  ``shutdown``/``cancel``/``cleanup``/``release``) or passes it to a
  cleanup call (``shutil.rmtree(x)``);
* the value **escapes** — returned/yielded, stored on an object or into
  a container, passed to another call, or aliased — i.e. ownership
  moves to someone with a longer lifetime (``self._listener = ...`` is
  the class's ``close()`` contract, ``weakref.finalize(..., x)`` is the
  GC's).

A factory call whose result is simply dropped is always a leak (with
one exception: ``Thread(..., daemon=True)`` — daemon threads are
reaped by the runtime and the repo uses them by design).  Straight-line
``x.close()`` without ``try/finally`` does **not** count as a release:
"on all paths" is the point, and every fixed leak in this repo was an
early ``raise`` skipping exactly that line.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.base import (
    Finding,
    Module,
    Rule,
    dotted_name,
    enclosing_symbols,
    walk_no_nested_defs,
)

#: dotted-name terminals that acquire an OS-level resource.
RESOURCE_FACTORIES = {
    "socket": "socket",
    "create_server": "socket",
    "create_connection": "socket",
    "Popen": "subprocess",
    "mkdtemp": "tempfile",
    "mkstemp": "tempfile",
    "NamedTemporaryFile": "tempfile",
    "Thread": "thread",
    "ThreadPoolExecutor": "pool",
    "ProcessPoolExecutor": "pool",
    # project factories: a Channel owns a socket, a server owns a
    # listener + threads, an executor owns lanes/pools, clients own
    # channels.
    "connect": "channel",
    "Channel": "channel",
    "make_executor": "executor",
    "WorkerServer": "server",
    "ConsensusServer": "server",
    "ServeClient": "client",
    "FleetManager": "fleet",
    "FleetClient": "client",
}

#: method calls that release the receiver.
RELEASE_METHODS = {
    "close",
    "kill",
    "terminate",
    "join",
    "shutdown",
    "cancel",
    "cleanup",
    "release",
}


class ResourceLifecycleRule(Rule):
    rule_id = "R9"
    name = "resource-lifecycle"
    description = (
        "sockets/threads/executors/tempdirs acquired in a function are "
        "released on all paths (with/try-finally) or escape to an owner"
    )

    def check(self, modules: Sequence[Module]) -> List[Finding]:
        findings: List[Finding] = []
        for module in modules:
            symbols = enclosing_symbols(module.tree)
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    findings.extend(
                        self._check_function(module, node, symbols)
                    )
        return findings

    def _check_function(
        self,
        module: Module,
        func: ast.AST,
        symbols: Dict[int, str],
    ) -> List[Finding]:
        symbol = symbols[id(func)]  # already includes the def's own name
        acquisitions: Dict[str, ast.Call] = {}  # local name -> factory call
        dropped: List[ast.Call] = []
        for node in walk_no_nested_defs(func):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                kind = _factory_kind(node.value)
                if kind is None:
                    continue
                if _is_daemon_thread(node.value, kind):
                    continue
                if len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Name
                ):
                    acquisitions[node.targets[0].id] = node.value
                # attribute/subscript targets transfer ownership already
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                kind = _factory_kind(node.value)
                if kind is not None and not _is_daemon_thread(node.value, kind):
                    dropped.append(node.value)
        findings: List[Finding] = []
        for call in dropped:
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=module.rel,
                    line=call.lineno,
                    message=(
                        f"{symbol} acquires "
                        f"{dotted_name(call.func) or 'a resource'}() and "
                        "drops the handle — nothing can ever release it"
                    ),
                    key=(
                        f"R9:dropped:{module.rel}:{symbol}:"
                        f"{dotted_name(call.func)}"
                    ),
                )
            )
        for name, call in acquisitions.items():
            if _escapes(func, name, call) or _released_in_cleanup(func, name):
                continue
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=module.rel,
                    line=call.lineno,
                    message=(
                        f"{symbol} acquires {name} = "
                        f"{dotted_name(call.func) or '...'}() but never "
                        "releases it in a finally/with and it does not "
                        "escape — an early exception leaks the resource"
                    ),
                    key=f"R9:leak:{module.rel}:{symbol}:{name}",
                )
            )
        return findings


def _factory_kind(call: ast.Call) -> Optional[str]:
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    terminal = dotted.split(".")[-1]
    if terminal not in RESOURCE_FACTORIES:
        return None
    # `self.connect(...)` etc. are methods, not the module factories
    if dotted.startswith("self.") and terminal not in ("connect",):
        return None
    return RESOURCE_FACTORIES[terminal]


def _is_daemon_thread(call: ast.Call, kind: str) -> bool:
    if kind != "thread":
        return False
    for keyword in call.keywords:
        if keyword.arg == "daemon":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False


def _escapes(func: ast.AST, name: str, acquisition: ast.Call) -> bool:
    """Ownership leaves the function: returned, stored, passed, aliased."""
    for node in walk_no_nested_defs(func):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and _mentions(node.value, name):
                return True
        elif isinstance(node, ast.Call):
            if node is acquisition:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if _mentions(arg, name):
                    return True
        elif isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Name) and node.value.id == name:
                return True  # alias — tracked no further
            if _mentions_in_container(node.value, name):
                for target in node.targets:
                    if not (
                        isinstance(target, ast.Name) and target.id == name
                    ):
                        return True
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if _mentions(node.value, name):
                        return True
    return False


def _mentions(node: ast.AST, name: str) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == name:
            return True
    return False


def _mentions_in_container(node: ast.AST, name: str) -> bool:
    if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
        return _mentions(node, name)
    return False


def _released_in_cleanup(func: ast.AST, name: str) -> bool:
    """A finally block or except handler releases ``name``, or the
    acquisition itself is a ``with`` context."""
    for node in walk_no_nested_defs(func):
        if isinstance(node, ast.With):
            for item in node.items:
                target = item.optional_vars
                if (
                    isinstance(target, ast.Name)
                    and target.id == name
                ):
                    return True
        elif isinstance(node, ast.Try):
            cleanup_bodies = list(node.finalbody)
            for handler in node.handlers:
                cleanup_bodies.extend(handler.body)
            for stmt in cleanup_bodies:
                for child in ast.walk(stmt):
                    if not isinstance(child, ast.Call):
                        continue
                    callee = child.func
                    if (
                        isinstance(callee, ast.Attribute)
                        and callee.attr in RELEASE_METHODS
                        and isinstance(callee.value, ast.Name)
                        and callee.value.id == name
                    ):
                        return True
                    # shutil.rmtree(x), os.unlink(x), registry.discard(x)
                    for arg in child.args:
                        if isinstance(arg, ast.Name) and arg.id == name:
                            return True
    return False
