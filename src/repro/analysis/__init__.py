"""Repo-invariant static analysis for the :mod:`repro` package.

Six AST-level rules encode the invariants the test suite cannot
exhaustively check (DESIGN.md §7): replay determinism (R1), lock
discipline in the threaded daemon code (R2), client/server wire-protocol
agreement (R3), the ``repro.errors`` taxonomy (R4), explicit dtypes in
the numeric core (R5), and checkpoint-schema sync (R6).  Run with
``python -m repro.analysis``; suppressions live in the checked-in
``BASELINE.json`` next to this package.
"""

from repro.analysis.base import (
    Finding,
    Module,
    Rule,
    collect_modules,
    load_module,
    run_rules,
)
from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    Baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.checkpoint_sync import CheckpointSyncRule
from repro.analysis.cli import ALL_RULES, main, select_rules
from repro.analysis.determinism import DeterminismRule
from repro.analysis.dtypes import DtypeHygieneRule
from repro.analysis.locks import LockDisciplineRule
from repro.analysis.taxonomy import ErrorTaxonomyRule
from repro.analysis.wire import WireProtocolRule

__all__ = [
    "ALL_RULES",
    "Baseline",
    "CheckpointSyncRule",
    "DEFAULT_BASELINE",
    "DeterminismRule",
    "DtypeHygieneRule",
    "ErrorTaxonomyRule",
    "Finding",
    "LockDisciplineRule",
    "Module",
    "Rule",
    "WireProtocolRule",
    "collect_modules",
    "load_baseline",
    "load_module",
    "main",
    "run_rules",
    "save_baseline",
    "select_rules",
]
