"""Repo-invariant static analysis for the :mod:`repro` package.

Ten AST-level rules encode the invariants the test suite cannot
exhaustively check (DESIGN.md §7).  Per-module (first generation):
replay determinism (R1), lock discipline in the threaded daemon code
(R2), client/server wire-protocol agreement (R3), the ``repro.errors``
taxonomy (R4), explicit dtypes in the numeric core (R5), and
checkpoint-schema sync (R6).  Interprocedural (second generation, fed by
the shared :mod:`project graph <repro.analysis.graph>`): lock-order
cycles and blocking-under-lock (R7), config-plumbing completeness (R8),
resource lifecycle (R9), and reply-shape conformance (R10).  Run with
``python -m repro.analysis`` (or ``python -m repro analysis``);
suppressions live in the checked-in ``BASELINE.json`` next to this
package.
"""

from repro.analysis.base import (
    Finding,
    Module,
    Rule,
    collect_modules,
    load_module,
    run_rules,
)
from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    Baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.checkpoint_sync import CheckpointSyncRule
from repro.analysis.cli import ALL_RULES, main, select_rules
from repro.analysis.config_plumbing import ConfigPlumbingRule
from repro.analysis.determinism import DeterminismRule
from repro.analysis.dtypes import DtypeHygieneRule
from repro.analysis.graph import GraphRule, ProjectGraph, build_graph
from repro.analysis.lifecycle import ResourceLifecycleRule
from repro.analysis.lockorder import LockOrderRule
from repro.analysis.locks import LockDisciplineRule
from repro.analysis.replies import ReplyShapeRule
from repro.analysis.taxonomy import ErrorTaxonomyRule
from repro.analysis.wire import WireProtocolRule

__all__ = [
    "ALL_RULES",
    "Baseline",
    "CheckpointSyncRule",
    "ConfigPlumbingRule",
    "DEFAULT_BASELINE",
    "DeterminismRule",
    "DtypeHygieneRule",
    "ErrorTaxonomyRule",
    "Finding",
    "GraphRule",
    "LockDisciplineRule",
    "LockOrderRule",
    "Module",
    "ProjectGraph",
    "ReplyShapeRule",
    "ResourceLifecycleRule",
    "Rule",
    "WireProtocolRule",
    "build_graph",
    "collect_modules",
    "load_baseline",
    "load_module",
    "main",
    "run_rules",
    "save_baseline",
    "select_rules",
]
