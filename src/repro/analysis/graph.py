"""The shared project graph behind the interprocedural rules (R7-R10).

The first-generation rules (R1-R6) are per-module AST walks; the bug
classes this package grew to catch next — lock-order inversions, blocking
calls reached *through* helper methods while a lock is held, config
fields nobody reads, reply variants nobody handles — are properties of
the whole program.  This module builds, once per run, the three shared
structures those rules consume:

* **symbol tables** — every class (with its lock attributes, methods and
  base-class names) and every module-level function, addressed by a
  *qualified name* ``"<rel>::<Class>.<method>"`` / ``"<rel>::<func>"``;
* an **approximate call graph** — edges resolved from call sites via
  ``self.``-dispatch (including inherited methods), module-level names,
  project imports, and — deliberately last — a *unique-method-name*
  match (``registry.put(...)`` resolves to ``PayloadRegistry.put`` only
  because exactly one project class defines ``put``);
* **lock-acquisition contexts** — for every function, which of its
  class's ``threading.Lock``/``RLock`` attributes it takes and what runs
  under them, plus which locks *guard state* (some attribute mutation
  happens under them — R2's notion), which R7 uses to tell a shared-state
  lock from a dedicated long-operation mutex.

Soundness limits (documented in DESIGN.md §7): resolution is
name-based, so calls through variables of unknown type resolve only when
the method name is project-unique (ambiguous names like ``close`` are
dropped, an *under*-approximation), while a unique name on the wrong
receiver resolves anyway (an *over*-approximation).  ``getattr``,
decorators that rebind, and ``super()`` chains outside the project are
invisible.  The rules are linters, not verifiers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import (
    Finding,
    Module,
    Rule,
    dotted_name,
    enclosing_symbols,
    self_attribute,
)
from repro.analysis.locks import LOCK_FACTORIES, MUTATOR_METHODS


@dataclass
class FunctionInfo:
    """One function or method, addressed by its qualified name."""

    qname: str  # "<rel>::<symbol>", e.g. "utils/transport.py::Channel.recv"
    rel: str  # module the function lives in
    symbol: str  # "Class.method", "func", or "func.nested"
    node: ast.AST  # the FunctionDef/AsyncFunctionDef
    class_name: Optional[str]  # owning class for methods, else None


@dataclass
class ClassInfo:
    """One class: its methods, bases, and lock-typed attributes."""

    name: str
    rel: str
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qname
    bases: Tuple[str, ...] = ()
    lock_attrs: FrozenSet[str] = frozenset()


@dataclass
class LockSite:
    """One ``with self.<lock>`` acquisition inside one function."""

    lock: str  # lock id: "<rel>::<Class>.<attr>"
    node: ast.With
    line: int


class ProjectGraph:
    """Symbol tables + call graph + lock contexts over one module set."""

    def __init__(self, modules: Sequence[Module]) -> None:
        self.modules: Tuple[Module, ...] = tuple(modules)
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}  # keyed "<rel>::<Class>"
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        #: method name -> qnames of every project method with that name.
        self.method_index: Dict[str, List[str]] = {}
        #: rel -> {local name: ("module", rel) | ("symbol", rel, name)}
        self.imports: Dict[str, Dict[str, Tuple]] = {}
        #: rel -> project modules it imports (for --diff-base closure).
        self.import_edges: Dict[str, Set[str]] = {}
        self.calls: Dict[str, Set[str]] = {}
        self.callers: Dict[str, Set[str]] = {}
        #: qname -> [LockSite...] acquisitions lexically inside it.
        self.lock_sites: Dict[str, List[LockSite]] = {}
        #: lock ids under which some self-attribute mutation happens.
        self.state_locks: Set[str] = set()
        self._build()

    # ----------------------------------------------------------- building

    def _build(self) -> None:
        self._rels = {module.rel for module in self.modules}
        for module in self.modules:
            self._index_module(module)
        for module in self.modules:
            self._resolve_imports(module)
        for module in self.modules:
            self._resolve_calls(module)
        for module in self.modules:
            self._collect_lock_contexts(module)

    def _index_module(self, module: Module) -> None:
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # enclosing_symbols already includes the def's own name
                symbol = symbols[id(node)]
                qname = f"{module.rel}::{symbol}"
                parts = symbol.split(".")
                class_name = None
                if len(parts) >= 2:
                    owner = self.classes.get(f"{module.rel}::{parts[-2]}")
                    if owner is not None:
                        class_name = parts[-2]
                info = FunctionInfo(
                    qname=qname,
                    rel=module.rel,
                    symbol=symbol,
                    node=node,
                    class_name=class_name,
                )
                self.functions[qname] = info
                if class_name is not None:
                    owner = self.classes[f"{module.rel}::{class_name}"]
                    owner.methods.setdefault(node.name, qname)
                    self.method_index.setdefault(node.name, []).append(qname)
            elif isinstance(node, ast.ClassDef):
                info = ClassInfo(
                    name=node.name,
                    rel=module.rel,
                    node=node,
                    bases=tuple(
                        name
                        for name in (dotted_name(base) for base in node.bases)
                        if name is not None
                    ),
                    lock_attrs=_lock_attributes(node),
                )
                self.classes[f"{module.rel}::{node.name}"] = info
                self.classes_by_name.setdefault(node.name, []).append(info)

    def _resolve_imports(self, module: Module) -> None:
        table: Dict[str, Tuple] = {}
        edges: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    rel = self._module_rel(alias.name)
                    if rel is not None:
                        table[alias.asname or alias.name.split(".")[0]] = (
                            "module",
                            rel,
                        )
                        edges.add(rel)
            elif isinstance(node, ast.ImportFrom) and node.module:
                rel = self._module_rel(node.module)
                if rel is None:
                    continue
                edges.add(rel)
                for alias in node.names:
                    table[alias.asname or alias.name] = (
                        "symbol",
                        rel,
                        alias.name,
                    )
        self.imports[module.rel] = table
        self.import_edges[module.rel] = edges

    def _module_rel(self, dotted: str) -> Optional[str]:
        """Map an import's dotted module path to a scanned module's rel."""
        tail = dotted
        for prefix in ("repro.",):
            if tail.startswith(prefix):
                tail = tail[len(prefix) :]
        if tail == "repro":
            tail = ""
        for candidate in (
            tail.replace(".", "/") + ".py",
            tail.replace(".", "/") + "/__init__.py",
            "__init__.py" if not tail else None,
        ):
            if candidate is not None and candidate in self._rels:
                return candidate
        return None

    # ------------------------------------------------------ call resolution

    #: method names too generic for the unique-name fallback — resolving
    #: ``x.get(...)`` to the single project class defining ``get`` is the
    #: over-approximation this graph accepts, but builtin-container names
    #: this common would drown the call graph in wrong edges.
    AMBIGUOUS_METHOD_NAMES = frozenset(
        {
            "append",
            "add",
            "items",
            "values",
            "copy",
            "pop",
            "read",
            "write",
            "update",
            "setdefault",
            "sort",
            "split",
            "strip",
            "format",
            "encode",
            "decode",
            "startswith",
            "endswith",
            # stdlib concurrency/IO verbs: ``thread.start()`` must not
            # resolve to the one project class that happens to define
            # ``start`` — these receivers are Threads/Events/locks/
            # sockets far more often than project objects.
            "start",
            "stop",
            "run",
            "close",
            "join",
            "wait",
            "set",
            "clear",
            "acquire",
            "release",
            "get",
            "put",
            "send",
            "connect",
            "shutdown",
            "terminate",
            "kill",
            "cancel",
        }
    )

    def _resolve_calls(self, module: Module) -> None:
        symbols = enclosing_symbols(module.tree)
        table = self.imports.get(module.rel, {})
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            symbol = symbols[id(node)]
            if symbol == "<module>":
                continue
            caller = f"{module.rel}::{symbol}"
            if caller not in self.functions:
                continue
            callee = self._resolve_callee(node.func, module.rel, table, symbol)
            if callee is None:
                continue
            self.calls.setdefault(caller, set()).add(callee)
            self.callers.setdefault(callee, set()).add(caller)

    def _resolve_callee(
        self,
        func: ast.AST,
        rel: str,
        imports: Dict[str, Tuple],
        caller_symbol: str,
    ) -> Optional[str]:
        dotted = dotted_name(func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        # self.m(...) — the enclosing class or an inherited project method
        if parts[0] == "self" and len(parts) == 2:
            class_name = caller_symbol.split(".")[0]
            return self._resolve_method(rel, class_name, parts[1])
        if len(parts) == 1:
            name = parts[0]
            local = f"{rel}::{name}"
            if local in self.functions:
                return local
            target = imports.get(name)
            if target is not None and target[0] == "symbol":
                return self._resolve_symbol(target[1], target[2])
            # Name() of a same-module class: the constructor
            if f"{rel}::{name}" in self.classes:
                return self.classes[f"{rel}::{name}"].methods.get("__init__")
            return None
        # mod.f(...) via an imported module alias
        target = imports.get(parts[0])
        if target is not None and target[0] == "module" and len(parts) == 2:
            return self._resolve_symbol(target[1], parts[1])
        # obj.m(...) — unique project method name, last resort
        method = parts[-1]
        if method in self.AMBIGUOUS_METHOD_NAMES:
            return None
        candidates = self.method_index.get(method, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _resolve_method(
        self, rel: str, class_name: str, method: str, _depth: int = 0
    ) -> Optional[str]:
        """``Class.method`` in ``rel``, walking project base classes."""
        if _depth > 8:
            return None
        info = self.classes.get(f"{rel}::{class_name}")
        if info is None:
            return None
        if method in info.methods:
            return info.methods[method]
        for base in info.bases:
            base_name = base.split(".")[-1]
            for base_info in self.classes_by_name.get(base_name, []):
                found = self._resolve_method(
                    base_info.rel, base_info.name, method, _depth + 1
                )
                if found is not None:
                    return found
        return None

    def _resolve_symbol(self, rel: str, name: str) -> Optional[str]:
        qname = f"{rel}::{name}"
        if qname in self.functions:
            return qname
        if qname in self.classes:
            return self.classes[qname].methods.get("__init__")
        return None

    # ------------------------------------------------------- lock contexts

    def _collect_lock_contexts(self, module: Module) -> None:
        for qname, info in self.functions.items():
            if info.rel != module.rel or info.class_name is None:
                continue
            owner = self.classes[f"{module.rel}::{info.class_name}"]
            if not owner.lock_attrs:
                continue
            sites: List[LockSite] = []
            for node in _walk_no_nested_defs_of(info.node):
                if not isinstance(node, ast.With):
                    continue
                for item in node.items:
                    attr = self_attribute(item.context_expr)
                    if attr in owner.lock_attrs:
                        lock_id = f"{module.rel}::{info.class_name}.{attr}"
                        sites.append(
                            LockSite(lock=lock_id, node=node, line=node.lineno)
                        )
                        if _mutates_self_attribute(node):
                            self.state_locks.add(lock_id)
            if sites:
                self.lock_sites[qname] = sites

    # ------------------------------------------------------------ closures

    def transitive(
        self, roots: Iterable[str], edges: Dict[str, Set[str]]
    ) -> Set[str]:
        """Everything reachable from ``roots`` along ``edges`` (roots
        included)."""
        seen: Set[str] = set()
        todo = list(roots)
        while todo:
            node = todo.pop()
            if node in seen:
                continue
            seen.add(node)
            todo.extend(edges.get(node, ()))
        return seen

    def callees_of(self, qname: str) -> Set[str]:
        return self.transitive([qname], self.calls)

    def callers_of(self, qname: str) -> Set[str]:
        return self.transitive([qname], self.callers)

    def module_closure(self, rels: Iterable[str]) -> Set[str]:
        """``--diff-base`` scope: the changed modules plus everything they
        import and everything that imports them, transitively."""
        reverse: Dict[str, Set[str]] = {}
        for importer, targets in self.import_edges.items():
            for target in targets:
                reverse.setdefault(target, set()).add(importer)
        roots = [rel for rel in rels if rel in self._rels]
        return self.transitive(roots, self.import_edges) | self.transitive(
            roots, reverse
        )


def _lock_attributes(cls: ast.ClassDef) -> FrozenSet[str]:
    """Attributes assigned from ``threading.Lock``/``RLock`` on ``self``."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        factory = node.value.func
        name = (
            factory.attr
            if isinstance(factory, ast.Attribute)
            else factory.id
            if isinstance(factory, ast.Name)
            else None
        )
        if name not in LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = self_attribute(target)
            if attr is not None:
                locks.add(attr)
    return frozenset(locks)


def _walk_no_nested_defs_of(node: ast.AST) -> Iterable[ast.AST]:
    """Descendants of ``node``'s body, skipping nested defs/lambdas (a
    closure's execution context is not the method's lock context)."""
    todo: List[ast.AST] = list(ast.iter_child_nodes(node))
    while todo:
        child = todo.pop(0)
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        todo.extend(ast.iter_child_nodes(child))


def _mutates_self_attribute(with_node: ast.With) -> bool:
    """Whether a ``with self.<lock>`` body mutates any ``self.X`` — the
    R2 notion that makes the lock a *state* lock (vs a pure serialization
    mutex, which R7's blocking check exempts)."""
    for node in _walk_no_nested_defs_of(with_node):
        targets: List[ast.AST] = []
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                list(node.targets) if isinstance(node, ast.Assign) else [node.target]
            )
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATOR_METHODS:
                if self_attribute(node.func.value) is not None:
                    return True
        for target in targets:
            elements = (
                target.elts
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
            for element in elements:
                if isinstance(element, ast.Subscript):
                    element = element.value
                if self_attribute(element) is not None:
                    return True
    return False


def build_graph(modules: Sequence[Module]) -> ProjectGraph:
    """Build the shared graph once; rules receive it from the runner."""
    return ProjectGraph(modules)


class GraphRule(Rule):
    """A rule that consumes the shared :class:`ProjectGraph`.

    The runner builds the graph once and passes it to every graph rule;
    calling :meth:`check` directly (tests, ad-hoc use) builds a private
    one, so graph rules stay drop-in :class:`~repro.analysis.base.Rule`
    instances.
    """

    def check(
        self,
        modules: Sequence[Module],
        graph: Optional[ProjectGraph] = None,
    ) -> List[Finding]:
        if graph is None:
            graph = build_graph(modules)
        return self.check_graph(modules, graph)

    def check_graph(
        self, modules: Sequence[Module], graph: ProjectGraph
    ) -> List[Finding]:
        raise NotImplementedError
