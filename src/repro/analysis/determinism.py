"""R1 — determinism: no ambient entropy inside the replayed modules.

Every stochastic component of the inference/data/simulation stack must
draw its randomness through the :mod:`repro.utils.random` seam
(``RandomState`` / ``spawn_rngs``), which canonicalises seeds and derives
independent child generators.  An inline ``np.random.default_rng()``,
stdlib ``random.*`` call, or wall-clock read inside ``core/``, ``data/``
or ``simulation/`` silently breaks bitwise replay — exactly the class of
bug behind the PR 7 ``AnswerStream`` fix, where batches depended on
*when* an iterator was consumed rather than on the seed alone.

The rule flags **calls**, not references: annotating a parameter as
``np.random.Generator`` is how the seam's contract is spelled and stays
legal; *constructing* entropy in scope is what gets flagged.
"""

from __future__ import annotations

import ast
from typing import List, Sequence, Set

from repro.analysis.base import (
    Finding,
    Module,
    Rule,
    dotted_name,
    enclosing_symbols,
)

#: directories (package-relative) whose modules must stay replayable.
SCOPED_DIRS = ("core/", "data/", "simulation/")

#: dotted call prefixes that mint ambient entropy or wall-clock state.
BANNED_PREFIXES = (
    "np.random.",
    "numpy.random.",
    "secrets.",
)

#: exact dotted calls banned outright.
BANNED_CALLS = {
    "time.time",
    "time.time_ns",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}


class DeterminismRule(Rule):
    rule_id = "R1"
    name = "determinism"
    description = (
        "core/, data/ and simulation/ must draw randomness via the "
        "repro.utils.random seam — no np.random/random/time.time entropy"
    )

    def check(self, modules: Sequence[Module]) -> List[Finding]:
        findings: List[Finding] = []
        for module in modules:
            if not module.rel.startswith(SCOPED_DIRS):
                continue
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: Module) -> List[Finding]:
        findings: List[Finding] = []
        symbols = enclosing_symbols(module.tree)
        stdlib_random_aliases = _stdlib_random_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            head = dotted.split(".", 1)[0]
            banned = (
                dotted in BANNED_CALLS
                or dotted.startswith(BANNED_PREFIXES)
                or head in stdlib_random_aliases
            )
            if not banned:
                continue
            symbol = symbols.get(id(node), "<module>")
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=module.rel,
                    line=node.lineno,
                    message=(
                        f"call to {dotted}() mints ambient entropy inside "
                        f"{module.rel}; thread a generator through the "
                        "repro.utils.random seam instead (bitwise replay)"
                    ),
                    key=f"R1:{module.rel}:{symbol}:{dotted}",
                )
            )
        return findings


def _stdlib_random_aliases(tree: ast.Module) -> Set[str]:
    """Names the *stdlib* ``random`` module is bound to in this file.

    ``import random`` / ``import random as rnd`` both count;
    ``from repro.utils.random import RandomState`` does not — the seam
    is the sanctioned entry point.
    """
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom):
            # `from random import shuffle` binds bare names to entropy
            if node.module == "random" and node.level == 0:
                for alias in node.names:
                    aliases.add(alias.asname or alias.name)
    return aliases
