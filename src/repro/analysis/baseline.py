"""Checked-in suppression baseline for the static-analysis pass.

A finding the team has looked at and accepted is recorded here instead
of being silenced in code, mirroring how the perf gate pins its
reference numbers.  The file is JSON so diffs review cleanly::

    {
      "version": 1,
      "entries": [
        {"key": "R1:core/x.py:f:np.random.default_rng",
         "justification": "one line on why this is acceptable"}
      ]
    }

Two properties keep the baseline honest:

* every entry **must** carry a non-empty justification — an entry is an
  argument, not a mute button;
* entries are matched by the finding's stable key; an entry whose key no
  longer matches anything is *stale* and fails ``--check``, so fixed
  violations cannot leave suppressions behind.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.base import Finding
from repro.errors import AnalysisError

BASELINE_VERSION = 1

#: the checked-in baseline next to the package, so ``--check`` resolves
#: it from any working directory.
DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__), "BASELINE.json")


@dataclass
class Baseline:
    """Suppression entries: finding key → one-line justification."""

    entries: Dict[str, str] = field(default_factory=dict)

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """``(new, suppressed, stale_keys)`` for a finding set."""
        new: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            if finding.key in self.entries:
                suppressed.append(finding)
            else:
                new.append(finding)
        live_keys = {finding.key for finding in findings}
        stale = sorted(key for key in self.entries if key not in live_keys)
        return new, suppressed, stale


def load_baseline(path: str) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline.

    Malformed structure, duplicate keys, and empty justifications are
    :class:`AnalysisError` — a broken suppression file must never be
    silently treated as 'suppress nothing' (or 'suppress everything').
    """
    if not os.path.exists(path):
        return Baseline()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise AnalysisError(
            f"baseline {path}: expected a dict with version "
            f"{BASELINE_VERSION}, got {type(raw).__name__}"
        )
    entries_raw = raw.get("entries")
    if not isinstance(entries_raw, list):
        raise AnalysisError(f"baseline {path}: 'entries' must be a list")
    entries: Dict[str, str] = {}
    for position, entry in enumerate(entries_raw):
        if not isinstance(entry, dict):
            raise AnalysisError(
                f"baseline {path}: entry {position} is not an object"
            )
        key = entry.get("key")
        justification = entry.get("justification")
        if not isinstance(key, str) or not key:
            raise AnalysisError(
                f"baseline {path}: entry {position} lacks a 'key'"
            )
        if not isinstance(justification, str) or not justification.strip():
            raise AnalysisError(
                f"baseline {path}: entry for {key!r} lacks a justification "
                "— a baseline entry is an argument, not a mute button"
            )
        if key in entries:
            raise AnalysisError(f"baseline {path}: duplicate key {key!r}")
        entries[key] = justification.strip()
    return Baseline(entries=entries)


def save_baseline(
    path: str, findings: Sequence[Finding], previous: Baseline
) -> Baseline:
    """Write a baseline covering exactly ``findings``.

    Justifications already present in ``previous`` are kept; new keys get
    an explicit TODO placeholder that :func:`load_baseline` will keep
    accepting but reviewers are expected to replace.
    """
    entries: Dict[str, str] = {}
    for finding in findings:
        kept = previous.entries.get(finding.key)
        entries[finding.key] = kept or f"TODO: justify ({finding.message})"
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {"key": key, "justification": entries[key]}
            for key in sorted(entries)
        ],
    }
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
    except OSError as exc:
        raise AnalysisError(f"cannot write baseline {path}: {exc}") from exc
    return Baseline(entries=entries)
