"""R8 — config plumbing: every config field is read, every flag is used.

The configuration surface has grown a field at a time (dtype, backend,
shard counts, executor specs, serving knobs), and its two real bugs both
had the same shape: a value that parses, validates, and then silently
falls off the path that should consume it (PR 7's ``use_item_evidence``
ignored by ``label_probabilities``; the seed's CLI accepting flags it
never forwarded).  No test enumerates the plumbing, so this rule does:

* **dead config fields** — for every frozen ``@dataclass`` whose name
  ends in ``Config``, each annotated field must be *read* somewhere in
  the project (``config.field`` / ``self.field`` attribute loads).
  Reads inside ``__post_init__`` do not count — validation is not
  consumption; reads in ``resolve_*`` helpers and everywhere else do.
* **dropped CLI flags** — in any module that builds an
  ``argparse`` parser, every ``add_argument("--flag")`` destination must
  be read back (``args.flag``) in that same module.  A flag the parser
  accepts but the program ignores is a config field lost on the CLI
  path.  Modules that consume the namespace dynamically
  (``vars(args)`` / ``getattr(args, ...)``) are skipped — the rule
  cannot see those reads.

Field reads are matched by attribute *name* project-wide, so a read of
an identically-named attribute on an unrelated object counts — an
under-reporting approximation (documented in DESIGN.md §7) that keeps
the rule free of type inference.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.base import Finding, Module, dotted_name
from repro.analysis.graph import GraphRule, ProjectGraph


class ConfigPlumbingRule(GraphRule):
    rule_id = "R8"
    name = "config-plumbing"
    description = (
        "every *Config dataclass field is read somewhere outside its "
        "validation, and every argparse flag's dest is read in its module"
    )

    def check_graph(
        self, modules: Sequence[Module], graph: ProjectGraph
    ) -> List[Finding]:
        findings: List[Finding] = []
        findings.extend(self._dead_fields(modules))
        findings.extend(self._dropped_flags(modules))
        return findings

    # ------------------------------------------------------- config fields

    def _dead_fields(self, modules: Sequence[Module]) -> List[Finding]:
        # (module, class node, field -> line) per *Config dataclass
        configs: List[Tuple[Module, ast.ClassDef, Dict[str, int]]] = []
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and _is_config_dataclass(node):
                    configs.append((module, node, _dataclass_fields(node)))
        if not configs:
            return []
        reads = self._attribute_reads(modules, configs)
        findings: List[Finding] = []
        for module, cls, fields in configs:
            for field_name in sorted(fields):
                if field_name in reads:
                    continue
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=module.rel,
                        line=fields[field_name],
                        message=(
                            f"{cls.name}.{field_name} is defined (and "
                            "validated) but never read anywhere in the "
                            "project — the value silently has no effect"
                        ),
                        key=f"R8:dead-field:{cls.name}.{field_name}",
                    )
                )
        return findings

    def _attribute_reads(
        self,
        modules: Sequence[Module],
        configs: List[Tuple[Module, ast.ClassDef, Dict[str, int]]],
    ) -> Set[str]:
        """Attribute names read (Load context) anywhere, excluding each
        config class's ``__post_init__`` body and its own field lines."""
        skip_nodes: Set[int] = set()
        for _, cls, _fields in configs:
            for stmt in cls.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == "__post_init__"
                ):
                    for child in ast.walk(stmt):
                        skip_nodes.add(id(child))
        reads: Set[str] = set()
        for module in modules:
            for node in ast.walk(module.tree):
                if id(node) in skip_nodes:
                    continue
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    reads.add(node.attr)
        return reads

    # ---------------------------------------------------------- CLI flags

    def _dropped_flags(self, modules: Sequence[Module]) -> List[Finding]:
        findings: List[Finding] = []
        for module in modules:
            flags = _argparse_dests(module.tree)
            if not flags:
                continue
            if _reads_namespace_dynamically(module.tree):
                continue  # vars(args)/getattr(args, ...): reads invisible
            read_attrs = {
                node.attr
                for node in ast.walk(module.tree)
                if isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
            }
            for dest in sorted(flags):
                if dest in read_attrs:
                    continue
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=module.rel,
                        line=flags[dest],
                        message=(
                            f"CLI flag dest {dest!r} is parsed but never "
                            "read in this module — the flag is accepted "
                            "and silently dropped"
                        ),
                        key=f"R8:dropped-flag:{module.rel}:{dest}",
                    )
                )
        return findings


def _is_config_dataclass(node: ast.ClassDef) -> bool:
    if not node.name.endswith("Config"):
        return False
    for decorator in node.decorator_list:
        name = dotted_name(
            decorator.func if isinstance(decorator, ast.Call) else decorator
        )
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> Dict[str, int]:
    """Annotated field name -> definition line, from the class body."""
    fields: Dict[str, int] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if not stmt.target.id.startswith("_"):
                fields[stmt.target.id] = stmt.lineno
    return fields


def _argparse_dests(tree: ast.Module) -> Dict[str, int]:
    """dest -> line for every ``add_argument`` option in the module."""
    dests: Dict[str, int] = {}
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
        ):
            continue
        dest = None
        for keyword in node.keywords:
            if (
                keyword.arg == "dest"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, str)
            ):
                dest = keyword.value.value
        if dest is None:
            for arg in node.args:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("--")
                ):
                    dest = arg.value.lstrip("-").replace("-", "_")
                    break
        if dest is not None:
            dests[dest] = node.lineno
    return dests


def _reads_namespace_dynamically(tree: ast.Module) -> bool:
    """``vars(...)`` or ``getattr(...)`` anywhere: namespace reads the
    rule cannot attribute to a dest."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("vars", "getattr"):
                return True
    return False
