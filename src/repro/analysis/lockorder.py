"""R7 — lock order: deadlock cycles and blocking calls under a lock.

R2 checks that shared attributes are *mutated* under their class's lock;
this rule checks what the code **does while holding** a lock, across
module boundaries.  Two failure shapes, both interprocedural:

* **lock-order cycles** — thread A takes ``X._lock`` then (possibly
  through helper calls) ``Y._lock`` while thread B nests them the other
  way round: a classic deadlock no test reliably reproduces.  The rule
  builds the lock-acquisition *order graph* — an edge ``L1 → L2``
  whenever code acquires ``L2`` (directly or transitively through calls
  resolved by the :mod:`project graph <repro.analysis.graph>`) while
  holding ``L1`` — and flags every cycle.
* **blocking under a state lock** — a ``Channel.recv``, ``socket.*``
  connect/accept/send, ``subprocess.*`` call/wait, thread ``join`` or
  ``time.sleep`` executed (again: possibly transitively) while holding a
  lock that guards shared state.  A daemon thread stuck in ``recv`` with
  the registry lock held stalls every other connection — the
  fleet-refresh-under-lock shape this rule was built on.

A lock that guards **no** attribute mutation anywhere in its class is a
*dedicated serialization mutex* (it exists to make one slow operation
single-flight); blocking under it is its purpose, so only the cycle
check applies to it.  ``join`` / ``wait`` are only treated as blocking
when the receiver looks like a thread/process (``self._thread.join()``
yes, ``", ".join()`` / ``event.wait()`` no) — the approximations are
listed in DESIGN.md §7.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import Finding, Module, dotted_name
from repro.analysis.graph import (
    GraphRule,
    ProjectGraph,
    _walk_no_nested_defs_of,
)

#: callee terminal names that always block (sockets, channels, pipes).
BLOCKING_METHODS = {
    "recv",
    "recv_into",
    "recv_or_eof",
    "accept",
    "connect",
    "create_connection",
    "sendall",
    "communicate",
    "select",
}

#: receiver-name fragments that make ``.join()`` a thread join (not
#: ``str.join`` / ``os.path.join``) and ``.wait()`` a process wait (not
#: ``Event.wait``, which carries its own timeout discipline).
JOIN_RECEIVER_HINTS = ("thread", "proc", "worker", "child", "timer")
WAIT_RECEIVER_HINTS = ("proc", "popen", "child")


def _is_blocking_call(node: ast.Call) -> Optional[str]:
    """A human-readable description when ``node`` is a blocking call."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    terminal = parts[-1]
    if dotted.startswith("subprocess."):
        return f"{dotted}(...)"
    if terminal in BLOCKING_METHODS:
        return f"{dotted}(...)"
    if "sleep" in terminal:
        return f"{dotted}(...)"
    receiver = ".".join(parts[:-1]).lower()
    if terminal == "join" and any(h in receiver for h in JOIN_RECEIVER_HINTS):
        return f"{dotted}(...)"
    if terminal == "wait" and any(h in receiver for h in WAIT_RECEIVER_HINTS):
        return f"{dotted}(...)"
    return None


class LockOrderRule(GraphRule):
    rule_id = "R7"
    name = "lock-order"
    description = (
        "no cycles in the cross-class lock-acquisition order graph, and "
        "no blocking call (recv/socket/subprocess/join/sleep) while "
        "holding a state lock — transitively through resolved calls"
    )

    def check_graph(
        self, modules: Sequence[Module], graph: ProjectGraph
    ) -> List[Finding]:
        by_rel = {module.rel: module for module in modules}
        blocking = _blocking_functions(graph)
        acquires = _acquired_locks(graph)
        findings: List[Finding] = []
        # edge set of the lock-order graph, with one witness site each
        edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}
        for qname, sites in graph.lock_sites.items():
            info = graph.functions[qname]
            for site in sites:
                for child in _walk_no_nested_defs_of(site.node):
                    if not isinstance(child, ast.Call):
                        continue
                    # (a) blocking while holding a state lock
                    if site.lock in graph.state_locks:
                        reason = _blocking_reason(child, qname, graph, blocking)
                        if reason is not None:
                            findings.append(
                                Finding(
                                    rule=self.rule_id,
                                    path=info.rel,
                                    line=child.lineno,
                                    message=(
                                        f"{info.symbol} calls {reason} while "
                                        f"holding {_lock_label(site.lock)} — a "
                                        "blocked thread stalls every path "
                                        "serialized on that lock"
                                    ),
                                    key=(
                                        f"R7:blocking:{info.rel}:{info.symbol}"
                                        f":{site.lock.split('::')[-1]}"
                                    ),
                                )
                            )
                    # (b) lock-order edges through this call
                    callee = _callee_of(child, qname, graph)
                    if callee is None:
                        continue
                    for inner in acquires.get(callee, ()):  # transitive set
                        if inner != site.lock:
                            edges.setdefault(
                                (site.lock, inner),
                                (info.rel, child.lineno, info.symbol),
                            )
                # nested `with self.<other lock>` inside this with
                for child in _walk_no_nested_defs_of(site.node):
                    if not isinstance(child, ast.With):
                        continue
                    for nested in graph.lock_sites.get(qname, ()):
                        if nested.node is child and nested.lock != site.lock:
                            edges.setdefault(
                                (site.lock, nested.lock),
                                (info.rel, child.lineno, info.symbol),
                            )
        findings.extend(self._cycle_findings(edges, by_rel))
        # one finding per key: a method blocking twice under the same
        # lock is one violation site, not two baseline entries
        unique: Dict[str, Finding] = {}
        for finding in findings:
            unique.setdefault(finding.key, finding)
        return list(unique.values())

    def _cycle_findings(
        self,
        edges: Dict[Tuple[str, str], Tuple[str, int, str]],
        by_rel: Dict[str, Module],
    ) -> List[Finding]:
        graph_edges: Dict[str, Set[str]] = {}
        for src, dst in edges:
            graph_edges.setdefault(src, set()).add(dst)
        findings: List[Finding] = []
        seen_cycles: Set[Tuple[str, ...]] = set()
        for start in sorted(graph_edges):
            cycle = _find_cycle(start, graph_edges)
            if cycle is None:
                continue
            canonical = _canonical_cycle(cycle)
            if canonical in seen_cycles:
                continue
            seen_cycles.add(canonical)
            rel, line, symbol = edges[(cycle[0], cycle[1])]
            order = " -> ".join(_lock_label(lock) for lock in cycle)
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=rel,
                    line=line,
                    message=(
                        f"lock-order cycle {order} (witness: {symbol}); two "
                        "threads interleaving these acquisitions deadlock"
                    ),
                    key="R7:cycle:" + ":".join(sorted(set(canonical))),
                )
            )
        return findings


def _blocking_functions(graph: ProjectGraph) -> Dict[str, str]:
    """qname -> description, for every function that blocks directly or
    through resolved calls (fixpoint over the call graph)."""
    blocking: Dict[str, str] = {}
    for qname, info in graph.functions.items():
        for node in _walk_no_nested_defs_of(info.node):
            if isinstance(node, ast.Call):
                desc = _is_blocking_call(node)
                if desc is not None:
                    blocking[qname] = desc
                    break
    changed = True
    while changed:
        changed = False
        for caller, callees in graph.calls.items():
            if caller in blocking:
                continue
            for callee in callees:
                if callee in blocking:
                    blocking[caller] = (
                        f"{graph.functions[callee].symbol}(...) "
                        f"[-> {blocking[callee]}]"
                    )
                    changed = True
                    break
    return blocking


def _acquired_locks(graph: ProjectGraph) -> Dict[str, Set[str]]:
    """qname -> lock ids the function acquires, directly or transitively."""
    acquires: Dict[str, Set[str]] = {
        qname: {site.lock for site in sites}
        for qname, sites in graph.lock_sites.items()
    }
    changed = True
    while changed:
        changed = False
        for caller, callees in graph.calls.items():
            merged = acquires.setdefault(caller, set())
            before = len(merged)
            for callee in callees:
                merged |= acquires.get(callee, set())
            if len(merged) != before:
                changed = True
    return acquires


def _blocking_reason(
    call: ast.Call,
    caller: str,
    graph: ProjectGraph,
    blocking: Dict[str, str],
) -> Optional[str]:
    direct = _is_blocking_call(call)
    if direct is not None:
        return direct
    callee = _callee_of(call, caller, graph)
    if callee is not None and callee in blocking:
        return f"{graph.functions[callee].symbol}(...) [-> {blocking[callee]}]"
    return None


def _callee_of(
    call: ast.Call, caller: str, graph: ProjectGraph
) -> Optional[str]:
    """Resolve one call expression with the caller's import table."""
    info = graph.functions[caller]
    return graph._resolve_callee(
        call.func, info.rel, graph.imports.get(info.rel, {}), info.symbol
    )


def _find_cycle(
    start: str, edges: Dict[str, Set[str]]
) -> Optional[List[str]]:
    """A cycle reachable from ``start`` (DFS), as ``[a, b, ..., a]``."""
    path: List[str] = []
    on_path: Set[str] = set()
    visited: Set[str] = set()

    def dfs(node: str) -> Optional[List[str]]:
        path.append(node)
        on_path.add(node)
        for neighbour in sorted(edges.get(node, ())):
            if neighbour in on_path:
                return path[path.index(neighbour) :] + [neighbour]
            if neighbour not in visited:
                found = dfs(neighbour)
                if found is not None:
                    return found
        on_path.discard(node)
        visited.add(node)
        path.pop()
        return None

    return dfs(start)


def _canonical_cycle(cycle: List[str]) -> Tuple[str, ...]:
    """Rotation-independent form of a cycle for dedup and stable keys."""
    body = cycle[:-1]
    pivot = body.index(min(body))
    return tuple(body[pivot:] + body[:pivot])


def _lock_label(lock_id: str) -> str:
    """``Class._lock`` from ``rel::Class._lock`` (message brevity)."""
    return lock_id.split("::", 1)[-1]
