"""R10 — reply-shape conformance: clients handle every reply variant.

R3 checks the *request* direction: every op a client sends is dispatched
somewhere.  This rule checks the *reply* direction, which R3 cannot see:
some ops answer with more than the ``("ok", value)`` /
``("err", exc, tb)`` envelope.  ``map_on`` answers ``("stale", key)``
when the resident payload was dropped; ``chunk_assemble`` answers
``("missing", digests)`` when the chunk cache lost blocks;
``restore_key`` answers ``("stale", key)`` when the named checkpoint is
gone.  The transport surfaces those as :class:`StaleBroadcast` /
:class:`ChunksMissing`, and a call site that does not catch them turns a
*recoverable* protocol miss into a crashed lane — the exact shape of the
chunked-broadcast fallback bugs PR 6/9 fixed by hand.

Statically:

* **server variant map** — inside ``handle``/``handle_request``, every
  ``return`` of a tuple literal whose head is a string other than
  ``"ok"``/``"err"`` is a reply *variant* of the op(s) guarding that
  branch (``if op == ...`` / ``op in (...)``);
* **client send sites** — as in R3: tuple literals passed to
  ``request``/``_request``/``send`` and tuple-literal lambda bodies,
  but now attributed to their enclosing function via the project graph;
* **coverage** — for each send site and each variant of its op, a
  handler must exist in the sender, its transitive callees or callers
  (the ``_dispatch`` retry loop catching for ``map_on``'s lambda), or a
  lexically enclosing function (nested checkpoint-shipping helpers).  A
  handler is an ``except StaleBroadcast/ChunksMissing`` clause for the
  variant's exception, or a string comparison against the variant name.

The callers-direction search deliberately over-approximates — *some*
caller handling the variant is taken as coverage for all — because the
repo funnels every remote call through one retry seam per subsystem;
DESIGN.md §7 lists this among the soundness trades.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import (
    Finding,
    Module,
    dotted_name,
    enclosing_symbols,
)
from repro.analysis.graph import (
    GraphRule,
    ProjectGraph,
    _walk_no_nested_defs_of,
)
from repro.analysis.wire import (
    CLIENT_SEND_FUNCTIONS,
    SERVER_DISPATCH_FUNCTIONS,
    _string_constants,
    _tuple_head,
)

#: reply heads that are part of the base envelope, not variants.
ENVELOPE_HEADS = {"ok", "err"}

#: variant head -> exception the transport raises for it.
VARIANT_EXCEPTIONS = {
    "stale": "StaleBroadcast",
    "missing": "ChunksMissing",
}


class ReplyShapeRule(GraphRule):
    rule_id = "R10"
    name = "reply-shape"
    description = (
        "every client call site of an op with non-ok reply variants "
        "(stale/missing/...) handles each variant, directly or in its "
        "call-graph component"
    )

    def check_graph(
        self, modules: Sequence[Module], graph: ProjectGraph
    ) -> List[Finding]:
        variants = _server_variants(modules)
        if not variants:
            return []
        findings: List[Finding] = []
        for op, sender, rel, line in _send_sites(modules, graph):
            for variant in sorted(variants.get(op, ())):
                if self._variant_handled(sender, variant, graph):
                    continue
                exc = VARIANT_EXCEPTIONS.get(variant)
                hint = (
                    f"catch {exc}" if exc else f'check for "{variant}"'
                )
                symbol = sender.split("::", 1)[-1]
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=rel,
                        line=line,
                        message=(
                            f"{symbol} sends op {op!r} but nothing on its "
                            f"call path handles the ({variant!r}, ...) "
                            f"reply — {hint} or the lane crashes on a "
                            "recoverable miss"
                        ),
                        key=f"R10:{op}:{variant}:{symbol}",
                    )
                )
        # one finding per (op, variant, sender): several literals in one
        # function are one coverage gap
        unique: Dict[str, Finding] = {}
        for finding in findings:
            unique.setdefault(finding.key, finding)
        return list(unique.values())

    def _variant_handled(
        self, sender: str, variant: str, graph: ProjectGraph
    ) -> bool:
        component = graph.callees_of(sender) | graph.callers_of(sender)
        component |= _lexical_ancestors(sender, graph)
        exception = VARIANT_EXCEPTIONS.get(variant)
        for qname in component:
            info = graph.functions.get(qname)
            if info is None:
                continue
            if _handles(info.node, variant, exception):
                return True
        return False


def _server_variants(
    modules: Sequence[Module],
) -> Dict[str, Set[str]]:
    """op -> reply-variant heads, from tuple-literal returns inside the
    dispatch functions, attributed to the enclosing op guard."""
    variants: Dict[str, Set[str]] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in SERVER_DISPATCH_FUNCTIONS:
                continue
            _collect_variants(node.body, frozenset(), variants)
    return variants


def _collect_variants(
    stmts: Sequence[ast.stmt],
    ops: frozenset,
    out: Dict[str, Set[str]],
) -> None:
    for stmt in stmts:
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            for head, _line in _tuple_head(stmt.value):
                if head in ENVELOPE_HEADS:
                    continue
                for op in ops:
                    out.setdefault(op, set()).add(head)
        elif isinstance(stmt, ast.If):
            guarded = _guarded_ops(stmt.test)
            _collect_variants(stmt.body, guarded or ops, out)
            _collect_variants(stmt.orelse, ops, out)
        elif isinstance(stmt, ast.Try):
            _collect_variants(stmt.body, ops, out)
            for handler in stmt.handlers:
                _collect_variants(handler.body, ops, out)
            _collect_variants(stmt.orelse, ops, out)
            _collect_variants(stmt.finalbody, ops, out)
        elif isinstance(stmt, (ast.For, ast.While, ast.With)):
            _collect_variants(stmt.body, ops, out)
            if hasattr(stmt, "orelse"):
                _collect_variants(stmt.orelse, ops, out)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested defs run in their own dispatch context


def _guarded_ops(test: ast.AST) -> Optional[frozenset]:
    """The op literals an ``if`` guard pins down, if it is an op guard."""
    if not isinstance(test, ast.Compare):
        return None
    left = test.left
    if not (isinstance(left, ast.Name) and left.id == "op"):
        return None
    ops: Set[str] = set()
    for operator, comparator in zip(test.ops, test.comparators):
        if isinstance(operator, (ast.Eq, ast.In)):
            ops.update(op for op, _line in _string_constants(comparator))
    return frozenset(ops) or None


def _send_sites(
    modules: Sequence[Module], graph: ProjectGraph
) -> List[Tuple[str, str, str, int]]:
    """``(op, sender qname, rel, line)`` per client request literal."""
    sites: List[Tuple[str, str, str, int]] = []
    for module in modules:
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            heads: List[Tuple[str, int]] = []
            if isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                if (
                    callee is not None
                    and callee.rsplit(".", 1)[-1] in CLIENT_SEND_FUNCTIONS
                ):
                    for arg in node.args:
                        heads.extend(_tuple_head(arg))
            elif isinstance(node, ast.Lambda):
                heads.extend(_tuple_head(node.body))
            if not heads:
                continue
            symbol = symbols[id(node)]
            if symbol == "<module>":
                continue
            qname = f"{module.rel}::{symbol}"
            if qname not in graph.functions:
                continue
            for op, line in heads:
                sites.append((op, qname, module.rel, line))
    return sites


def _lexical_ancestors(qname: str, graph: ProjectGraph) -> Set[str]:
    """Enclosing functions of a nested def — ``f.g`` runs inside ``f``,
    so a handler around the call site in ``f`` covers ``g``'s sends even
    though the bare-name call edge may not resolve."""
    rel, symbol = qname.split("::", 1)
    ancestors: Set[str] = set()
    parts = symbol.split(".")
    for cut in range(1, len(parts)):
        candidate = f"{rel}::{'.'.join(parts[:cut])}"
        if candidate in graph.functions:
            ancestors.add(candidate)
    return ancestors


def _handles(
    func: ast.AST, variant: str, exception: Optional[str]
) -> bool:
    """An ``except <exception>`` clause or a string compare against the
    variant name anywhere in ``func``'s own body."""
    for node in _walk_no_nested_defs_of(func):
        if isinstance(node, ast.ExceptHandler) and node.type is not None:
            if exception is not None and _names_in(node.type, exception):
                return True
        elif isinstance(node, ast.Compare):
            constants = [node.left] + list(node.comparators)
            for constant in constants:
                if (
                    isinstance(constant, ast.Constant)
                    and constant.value == variant
                ):
                    return True
    return False


def _names_in(node: ast.AST, name: str) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == name:
            return True
        if isinstance(child, ast.Attribute) and child.attr == name:
            return True
    return False
