"""AST-walker framework for the repo-invariant static-analysis pass.

The correctness of this system increasingly rests on invariants no test
can exhaustively check — bitwise replay determinism, lock discipline in
the threaded daemon code, client/server agreement on the pickled wire
protocol (DESIGN.md §7).  This package encodes those invariants as
machine-checked rules, the static-analysis analogue of the perf
regression gate (``benchmarks/run_perf --check``).

The framework is deliberately small:

* :class:`Module` — one parsed source file: absolute path, the
  *package-relative* path rules scope on (``core/svi.py``), the raw
  source, its physical lines, and the :mod:`ast` tree.
* :class:`Rule` — a named check over the whole module set.  Rules see
  every module at once because two of the invariants are cross-module
  (wire-protocol completeness, checkpoint-schema sync); per-module rules
  simply iterate.
* :class:`Finding` — one violation: where, what, and a *stable
  suppression key* that survives unrelated edits (no line numbers in the
  key), so the checked-in baseline (:mod:`repro.analysis.baseline`) does
  not churn.

Rules live in their own modules (:mod:`repro.analysis.determinism` and
siblings); the registry and CLI are in :mod:`repro.analysis.cli`.
"""

from __future__ import annotations

import ast
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``key`` identifies the violation *site* independently of line
    numbers (rule id + relative path + enclosing symbol + subject), so a
    baseline entry keeps suppressing it across unrelated edits and goes
    stale the moment the flagged code is actually fixed or removed.
    """

    rule: str
    path: str
    line: int
    message: str
    key: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "key": self.key,
        }


@dataclass(frozen=True)
class Module:
    """One parsed source file handed to every rule."""

    path: str  # absolute filesystem path (diagnostics)
    rel: str  # package-relative path with forward slashes (rule scoping)
    source: str
    lines: Tuple[str, ...]
    tree: ast.Module


class Rule:
    """One invariant, checked over the full module set.

    Subclasses set ``rule_id`` (stable, referenced by baselines and CLI
    ``--rules``), ``name`` (human slug), ``description`` (one line shown
    by ``--list-rules``), and implement :meth:`check`.
    """

    rule_id: str = "R0"
    name: str = "abstract"
    description: str = ""

    def check(self, modules: Sequence[Module]) -> List[Finding]:
        raise NotImplementedError


def _package_relative(path: str, root: Optional[str]) -> str:
    """The path rules scope on: relative to the enclosing ``repro``
    package when the file lives in one, else relative to the scan root.

    Walking up to the nearest ``repro`` package means fixtures laid out
    as ``<tmp>/core/bad.py`` and the real ``src/repro/core/svi.py`` both
    present as ``core/...`` to the rules.
    """
    directory = os.path.dirname(os.path.abspath(path))
    probe = directory
    while True:
        if os.path.basename(probe) == "repro" and os.path.isfile(
            os.path.join(probe, "__init__.py")
        ):
            rel = os.path.relpath(os.path.abspath(path), probe)
            return rel.replace(os.sep, "/")
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    base = os.path.abspath(root) if root else os.path.dirname(os.path.abspath(path))
    rel = os.path.relpath(os.path.abspath(path), base)
    return rel.replace(os.sep, "/")


def _iter_source_files(path: str) -> Iterable[str]:
    if os.path.isfile(path):
        yield path
        return
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def load_module(path: str, root: Optional[str] = None) -> Module:
    """Parse one file into a :class:`Module`; loud on unreadable input."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from exc
    return Module(
        path=os.path.abspath(path),
        rel=_package_relative(path, root),
        source=source,
        lines=tuple(source.splitlines()),
        tree=tree,
    )


def collect_modules(paths: Sequence[str]) -> List[Module]:
    """Load every ``.py`` file under ``paths`` (files or directories)."""
    modules: List[Module] = []
    seen: set = set()
    for path in paths:
        if not os.path.exists(path):
            raise AnalysisError(f"no such file or directory: {path}")
        root = path if os.path.isdir(path) else None
        for filename in _iter_source_files(path):
            absolute = os.path.abspath(filename)
            if absolute in seen:
                continue
            seen.add(absolute)
            modules.append(load_module(filename, root))
    return modules


def run_rules(
    modules: Sequence[Module],
    rules: Sequence[Rule],
    *,
    jobs: int = 1,
    graph: Optional[object] = None,
    timings: Optional[Dict[str, float]] = None,
) -> List[Finding]:
    """Run every rule over the module set; findings in (path, line) order.

    ``graph`` is the shared interprocedural :class:`ProjectGraph` (built
    once by the runner and handed to every rule exposing ``check_graph``
    — duck-typed here so this module needs no import of
    :mod:`repro.analysis.graph`, which imports us).  ``jobs > 1`` runs
    rules on a thread pool; rules are pure functions of the parsed
    module set, and the final sort makes output order independent of
    completion order.  ``timings``, when given, receives per-rule wall
    seconds keyed by rule id.
    """

    def _run_one(rule: Rule) -> List[Finding]:
        start = time.perf_counter()
        if graph is not None and hasattr(rule, "check_graph"):
            found = rule.check(modules, graph)  # type: ignore[call-arg]
        else:
            found = rule.check(modules)
        if timings is not None:
            timings[rule.rule_id] = time.perf_counter() - start
        return found

    if jobs > 1 and len(rules) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            per_rule = list(pool.map(_run_one, rules))
    else:
        per_rule = [_run_one(rule) for rule in rules]
    findings: List[Finding] = []
    for found in per_rule:
        findings.extend(found)
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.key))


# --------------------------------------------------------------- AST helpers
#
# Shared by the rule modules; tiny on purpose — each rule reads as a direct
# statement of its invariant, not as visitor plumbing.


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attribute(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def walk_no_nested_defs(node: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas.

    Used where the *execution context* matters (lock-discipline): a
    closure defined inside a method runs who-knows-where, so its body
    must not be attributed to the method's lock state.
    """
    todo: List[ast.AST] = list(ast.iter_child_nodes(node))
    while todo:
        child = todo.pop(0)
        yield child
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        todo.extend(ast.iter_child_nodes(child))


def enclosing_symbols(tree: ast.Module) -> Dict[int, str]:
    """Map every AST node id to its enclosing ``Class.method`` symbol.

    Rules use this to build line-independent suppression keys; the
    module level maps to ``"<module>"``.
    """
    symbols: Dict[int, str] = {}

    def visit(node: ast.AST, symbol: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_symbol = symbol
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                child_symbol = (
                    child.name if symbol == "<module>" else f"{symbol}.{child.name}"
                )
            symbols[id(child)] = child_symbol
            visit(child, child_symbol)

    symbols[id(tree)] = "<module>"
    visit(tree, "<module>")
    return symbols
