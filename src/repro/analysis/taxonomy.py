"""R4 — error taxonomy: the library fails through ``repro.errors``.

Callers are promised (``errors.py`` docstring) that every deliberate
failure derives from :class:`~repro.errors.ReproError`, so they can
catch library errors without swallowing programming bugs.  Two edits
erode that promise silently: a ``raise ValueError(...)`` deep in a
kernel, and a broad ``except Exception`` that quietly eats more than its
author intended.  The second already has a written convention — every
broad except carries ``# noqa: BLE001 - <reason>`` (see ``parallel.py``)
— but nothing checked the comment was present or the reason non-empty.

So two checks, library-wide:

* **builtin raises** — ``raise <Builtin>(...)`` for a known builtin
  exception name is flagged; raise the matching ``repro.errors`` type
  (many subclass the builtin, e.g. ``ValidationError(ReproError,
  ValueError)``, so callers keep working).  ``raise NotImplementedError``
  (the abstract-method idiom) and bare re-raises are exempt.
* **broad excepts** — every ``except Exception`` / ``BaseException``
  handler line must end with ``# noqa: BLE001 - <reason>`` with a
  non-empty reason; a bare ``# noqa: BLE001`` is a suppression without
  an argument and is flagged too.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Sequence

from repro.analysis.base import (
    Finding,
    Module,
    Rule,
    dotted_name,
    enclosing_symbols,
)

#: builtin exception names library code must not raise directly.
BUILTIN_EXCEPTIONS = {
    "Exception",
    "BaseException",
    "ValueError",
    "TypeError",
    "RuntimeError",
    "KeyError",
    "IndexError",
    "LookupError",
    "AttributeError",
    "OSError",
    "IOError",
    "ConnectionError",
    "TimeoutError",
    "ArithmeticError",
    "ZeroDivisionError",
    "OverflowError",
    "FloatingPointError",
    "AssertionError",
    "StopIteration",
    "SystemExit",
    "MemoryError",
}

#: the abstract-method idiom stays legal.
EXEMPT_RAISES = {"NotImplementedError"}

#: handler line must match this: ``# noqa: BLE001 - why it is safe``.
_NOQA_WITH_REASON = re.compile(r"#\s*noqa:\s*BLE001\s*-\s*\S")
_NOQA_BARE = re.compile(r"#\s*noqa:\s*BLE001")

#: broad handler type names.
BROAD_TYPES = {"Exception", "BaseException"}


class ErrorTaxonomyRule(Rule):
    rule_id = "R4"
    name = "error-taxonomy"
    description = (
        "library raises only repro.errors types; every broad "
        "'except Exception' carries '# noqa: BLE001 - reason'"
    )

    def check(self, modules: Sequence[Module]) -> List[Finding]:
        findings: List[Finding] = []
        for module in modules:
            findings.extend(self._check_raises(module))
            findings.extend(self._check_broad_excepts(module))
        return findings

    def _check_raises(self, module: Module) -> List[Finding]:
        findings: List[Finding] = []
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = dotted_name(target)
            if name is None or "." in name:
                continue  # re-raised variables and qualified names pass
            if name in EXEMPT_RAISES or name not in BUILTIN_EXCEPTIONS:
                continue
            symbol = symbols.get(id(node), "<module>")
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=module.rel,
                    line=node.lineno,
                    message=(
                        f"raises builtin {name}; raise the matching "
                        "repro.errors type instead (the hierarchy "
                        "subclasses the builtins callers expect)"
                    ),
                    key=f"R4:{module.rel}:{symbol}:{name}",
                )
            )
        return findings

    def _check_broad_excepts(self, module: Module) -> List[Finding]:
        findings: List[Finding] = []
        symbols = enclosing_symbols(module.tree)
        per_symbol: Dict[str, int] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            if dotted_name(node.type) not in BROAD_TYPES:
                continue
            symbol = symbols.get(id(node), "<module>")
            index = per_symbol.get(symbol, 0)
            per_symbol[symbol] = index + 1
            line_text = (
                module.lines[node.lineno - 1]
                if node.lineno - 1 < len(module.lines)
                else ""
            )
            if _NOQA_WITH_REASON.search(line_text):
                continue
            if _NOQA_BARE.search(line_text):
                problem = (
                    "bare '# noqa: BLE001' — add the reason: "
                    "'# noqa: BLE001 - why swallowing is safe'"
                )
            else:
                problem = (
                    "broad 'except Exception' without "
                    "'# noqa: BLE001 - reason' justification"
                )
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=module.rel,
                    line=node.lineno,
                    message=problem,
                    key=f"R4:{module.rel}:{symbol}:broad-except:{index}",
                )
            )
        return findings
