"""R2 — lock discipline: a static race detector for the threaded classes.

The daemon/lane layer (``utils/transport.py``, ``repro/serve.py``) runs
instance methods on many threads at once: ``WorkerServer`` serves each
accepted connection on its own thread against shared per-instance state,
and ``ConsensusEngine`` is queried concurrently by every connection of
its server.  Those classes own a ``threading.Lock``/``RLock`` precisely
so that shared attributes are only mutated under it — but nothing
enforced the convention, and an unlocked counter increment from a
handler thread is a silent lost-update bug (the ``WorkerServer.op_counts``
race this rule was built on).

For every class that *owns* a lock (assigns ``self.X = threading.Lock()``
in its body) the rule flags attribute mutations outside a
``with self.<lock>`` block when either:

* the enclosing method is a **thread entry point** — passed as a
  ``Thread(target=self.method)`` somewhere in the class, or the
  ``handle()`` wire-dispatch seam, both of which run concurrently per
  connection; or
* the same attribute is mutated **under the lock elsewhere** in the
  class — the code itself declares it lock-protected, so an unlocked
  site is a discipline break.

``__init__`` is exempt (no concurrent access before construction
completes), as are mutations *of* synchronisation primitives themselves
(``Event``/``Lock`` attributes are internally thread-safe).  Nested
function bodies are skipped — a closure runs in whatever context calls
it, so attributing it to the method's lock state would be a guess.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.base import Finding, Module, Rule, self_attribute

#: factory calls that make an attribute a lock this rule keys on.
LOCK_FACTORIES = {"Lock", "RLock"}

#: factories whose attributes are thread-safe on their own — mutations of
#: these (e.g. ``self._shutdown.clear()`` on an Event) are not races.
SYNC_FACTORIES = LOCK_FACTORIES | {
    "Event",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
}

#: method names that mutate their receiver in place.
MUTATOR_METHODS = {
    "append",
    "appendleft",
    "extend",
    "insert",
    "remove",
    "pop",
    "popleft",
    "popitem",
    "clear",
    "update",
    "add",
    "discard",
    "setdefault",
}

#: methods treated as thread entry points besides Thread(target=...) ones:
#: the wire-dispatch seam runs once per in-flight request.
DISPATCH_ENTRY_METHODS = ("handle",)


class LockDisciplineRule(Rule):
    rule_id = "R2"
    name = "lock-discipline"
    description = (
        "classes owning a threading.Lock must mutate shared attributes "
        "under it in thread-entry methods (static race detector)"
    )

    def check(self, modules: Sequence[Module]) -> List[Finding]:
        findings: List[Finding] = []
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    findings.extend(self._check_class(module, node))
        return findings

    def _check_class(
        self, module: Module, cls: ast.ClassDef
    ) -> List[Finding]:
        lock_attrs, sync_attrs = _sync_attributes(cls)
        if not lock_attrs:
            return []
        thread_entries = _thread_entry_methods(cls)
        methods = [
            node
            for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # (method name, attr, line, locked?) for every mutation site
        sites: List[Tuple[str, str, int, bool]] = []
        for method in methods:
            for attr, line, locked in _mutation_sites(method, lock_attrs):
                if attr in sync_attrs:
                    continue
                sites.append((method.name, attr, line, locked))
        guarded = {attr for name, attr, _, locked in sites if locked}
        findings: List[Finding] = []
        for name, attr, line, locked in sites:
            if locked or name == "__init__":
                continue
            entry = name in thread_entries
            if not entry and attr not in guarded:
                continue
            why = (
                f"'{name}' is a thread entry point"
                if entry
                else f"'{attr}' is lock-protected elsewhere in {cls.name}"
            )
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=module.rel,
                    line=line,
                    message=(
                        f"{cls.name}.{name} mutates self.{attr} outside "
                        f"'with self.{sorted(lock_attrs)[0]}' ({why}); "
                        "concurrent handlers race on it"
                    ),
                    key=f"R2:{module.rel}:{cls.name}.{name}:{attr}",
                )
            )
        return findings


def _sync_attributes(cls: ast.ClassDef) -> Tuple[Set[str], Set[str]]:
    """``(lock attrs, all sync-primitive attrs)`` assigned on ``self``."""
    locks: Set[str] = set()
    sync: Set[str] = set()
    for node in ast.walk(cls):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        factory = node.value.func
        name: Optional[str] = None
        if isinstance(factory, ast.Attribute):
            name = factory.attr  # threading.Lock()
        elif isinstance(factory, ast.Name):
            name = factory.id  # Lock() imported bare
        if name not in SYNC_FACTORIES:
            continue
        for target in node.targets:
            attr = self_attribute(target)
            if attr is not None:
                sync.add(attr)
                if name in LOCK_FACTORIES:
                    locks.add(attr)
    return locks, sync


def _thread_entry_methods(cls: ast.ClassDef) -> Set[str]:
    """Methods run on their own threads: ``Thread(target=self.X)``
    targets anywhere in the class, plus the wire-dispatch seam."""
    entries: Set[str] = set(DISPATCH_ENTRY_METHODS)
    for node in ast.walk(cls):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        callee_name = (
            callee.attr
            if isinstance(callee, ast.Attribute)
            else callee.id
            if isinstance(callee, ast.Name)
            else None
        )
        if callee_name != "Thread":
            continue
        for keyword in node.keywords:
            if keyword.arg == "target":
                attr = self_attribute(keyword.value)
                if attr is not None:
                    entries.add(attr)
    return entries


def _mutation_sites(
    method: ast.AST, lock_attrs: Set[str]
) -> List[Tuple[str, int, bool]]:
    """``(attr, line, under-lock?)`` for every ``self.<attr>`` mutation.

    Recognised mutations: assignment (plain, annotated, augmented,
    tuple-unpacking), subscript assignment (``self.X[k] = v``), ``del``,
    and in-place mutator calls (``self.X.append(...)``).  Nested defs and
    lambdas are skipped (their execution context is unknowable here).
    """
    sites: List[Tuple[str, int, bool]] = []

    def targeted_attr(target: ast.AST) -> Optional[str]:
        attr = self_attribute(target)
        if attr is not None:
            return attr
        if isinstance(target, ast.Subscript):
            return self_attribute(target.value)
        return None

    def visit(node: ast.AST, locked: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            child_locked = locked
            if isinstance(child, ast.With):
                for item in child.items:
                    attr = self_attribute(item.context_expr)
                    if attr in lock_attrs:
                        child_locked = True
            if isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    elements = (
                        target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for element in elements:
                        attr = targeted_attr(element)
                        if attr is not None:
                            sites.append((attr, child.lineno, child_locked))
            elif isinstance(child, ast.Delete):
                for target in child.targets:
                    attr = targeted_attr(target)
                    if attr is not None:
                        sites.append((attr, child.lineno, child_locked))
            elif isinstance(child, ast.Call) and isinstance(
                child.func, ast.Attribute
            ):
                if child.func.attr in MUTATOR_METHODS:
                    attr = self_attribute(child.func.value)
                    if attr is not None:
                        sites.append((attr, child.lineno, child_locked))
            visit(child, child_locked)

    visit(method, False)
    return sites
