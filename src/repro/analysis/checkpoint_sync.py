"""R6 — checkpoint-schema sync: ``CPAState`` and the payload agree.

The checkpoint format (``core/checkpoint.py``) mirrors ``CPAState``
three ways: scalar fields become payload keys in ``checkpoint_payload``,
array fields are enumerated in ``_ARRAY_FIELDS``, and the shape header
is the ``CheckpointMeta`` dataclass.  A field added to ``CPAState``
without threading it through all three is the classic silent-drift bug:
checkpoints round-trip, tests pass, and the new field is quietly reset
to its default on every restore.

The rule recovers all four schemas statically — ``CPAState`` annotated
fields, ``_ARRAY_FIELDS`` string entries, the string keys of the dict
literal in ``checkpoint_payload``, and ``CheckpointMeta`` annotated
fields — and checks:

* every ``CPAState`` field is serialized (a payload key, or listed in
  ``_ARRAY_FIELDS``);
* every ``_ARRAY_FIELDS`` entry is a real ``CPAState`` field;
* every ``CheckpointMeta`` field is read from a payload key of the same
  name;
* every payload key (bar the ``magic`` marker) corresponds to a
  ``CPAState`` or ``CheckpointMeta`` field — no write-only keys.

When the scanned tree lacks either side (fixture runs over a partial
tree), the rule stays silent rather than inventing drift.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.base import Finding, Module, Rule

STATE_CLASS = "CPAState"
META_CLASS = "CheckpointMeta"
ARRAY_FIELDS_NAME = "_ARRAY_FIELDS"
PAYLOAD_FUNCTION = "checkpoint_payload"

#: payload keys that are format framing, not state.
FRAMING_KEYS = {"magic"}


class CheckpointSyncRule(Rule):
    rule_id = "R6"
    name = "checkpoint-sync"
    description = (
        "CPAState fields, _ARRAY_FIELDS, checkpoint_payload keys and "
        "CheckpointMeta stay in agreement (no silent schema drift)"
    )

    def check(self, modules: Sequence[Module]) -> List[Finding]:
        state = _dataclass_fields(modules, STATE_CLASS)
        meta = _dataclass_fields(modules, META_CLASS)
        arrays = _array_fields(modules)
        payload = _payload_keys(modules)
        if state is None or payload is None:
            return []  # partial tree: nothing to compare against
        state_fields, state_site = state
        payload_keys, payload_site = payload
        array_fields = arrays[0] if arrays else set()
        findings: List[Finding] = []

        serialized = payload_keys | array_fields
        for field in sorted(state_fields - serialized):
            findings.append(
                _finding(
                    self.rule_id,
                    state_site,
                    f"CPAState.{field} is never serialized — add it to "
                    f"{PAYLOAD_FUNCTION}() or {ARRAY_FIELDS_NAME} or a "
                    "restore will silently reset it",
                    f"R6:state-unserialized:{field}",
                )
            )
        if arrays:
            for field in sorted(arrays[0] - state_fields):
                findings.append(
                    _finding(
                        self.rule_id,
                        arrays[1],
                        f"{ARRAY_FIELDS_NAME} names {field!r} which is not "
                        "a CPAState field",
                        f"R6:array-unknown:{field}",
                    )
                )
        if meta is not None:
            for field in sorted(meta[0] - payload_keys):
                findings.append(
                    _finding(
                        self.rule_id,
                        meta[1],
                        f"CheckpointMeta.{field} has no matching "
                        f"{PAYLOAD_FUNCTION}() key — the header cannot be "
                        "populated from a payload",
                        f"R6:meta-unwritten:{field}",
                    )
                )
        known = state_fields | (meta[0] if meta else set()) | FRAMING_KEYS
        for key in sorted(payload_keys - known):
            findings.append(
                _finding(
                    self.rule_id,
                    payload_site,
                    f"{PAYLOAD_FUNCTION}() writes key {key!r} that neither "
                    "CPAState nor CheckpointMeta reads back — write-only "
                    "schema drift",
                    f"R6:payload-orphan:{key}",
                )
            )
        return findings


def _finding(rule: str, site: Tuple[str, int], message: str, key: str) -> Finding:
    return Finding(rule=rule, path=site[0], line=site[1], message=message, key=key)


def _dataclass_fields(
    modules: Sequence[Module], class_name: str
) -> Optional[Tuple[Set[str], Tuple[str, int]]]:
    """Annotated field names of the first class named ``class_name``."""
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                fields = {
                    stmt.target.id
                    for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                }
                return fields, (module.rel, node.lineno)
    return None


def _array_fields(
    modules: Sequence[Module],
) -> Optional[Tuple[Set[str], Tuple[str, int]]]:
    """String entries of the ``_ARRAY_FIELDS`` tuple/list assignment."""
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(target, ast.Name) and target.id == ARRAY_FIELDS_NAME
                for target in node.targets
            ):
                continue
            if isinstance(node.value, (ast.Tuple, ast.List)):
                names = {
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                }
                return names, (module.rel, node.lineno)
    return None


def _payload_keys(
    modules: Sequence[Module],
) -> Optional[Tuple[Set[str], Tuple[str, int]]]:
    """String keys written by ``checkpoint_payload``: the dict literal's
    keys plus ``payload[name]``-style writes where the subscript is a
    string constant (the ``_ARRAY_FIELDS`` loop uses a variable and is
    accounted separately)."""
    for module in modules:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == PAYLOAD_FUNCTION
            ):
                continue
            keys: Set[str] = set()
            for child in ast.walk(node):
                if isinstance(child, ast.Dict):
                    for key in child.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            keys.add(key.value)
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.slice, ast.Constant)
                            and isinstance(target.slice.value, str)
                        ):
                            keys.add(target.slice.value)
            return keys, (module.rel, node.lineno)
    return None
