"""R3 — wire-protocol completeness: client and server op tables agree.

The wire protocol is length-prefixed pickled tuples whose first element
is an op string (``utils/transport.py`` module docstring).  The dispatch
table lives in ``handle_request`` / ``ConsensusServer.handle``; the call
sites live in ``RemoteExecutor`` / ``ServeClient`` / the checkpoint
shipper.  Nothing ties the two sides together — an op added to one side
only is either dead server code or a client request that every daemon
answers with ``("err", ValidationError(...))``, and both failure shapes
have shipped in real systems because no test enumerates the tables.

This rule recovers both tables statically:

* **server ops** — in any function named ``handle`` or
  ``handle_request``, every comparison of the name ``op`` against a
  string literal (``op == "ping"``, ``op in ("a", "b")``);
* **client ops** — the first element of every tuple literal passed to a
  call named ``request``/``_request``/``send``, plus tuple literals that
  are the body of a lambda (the ``_dispatch(lambda tasks: ("map_on",
  ...))`` message-factory pattern).

Reply tuples never trip the client collector: servers *return* them or
``send()`` a variable, not a literal.  Each unmatched op is one finding,
keyed on the op name alone so the baseline survives any edit that does
not change the protocol.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Tuple

from repro.analysis.base import Finding, Module, Rule, dotted_name

#: function/method names whose bodies define the server dispatch table.
SERVER_DISPATCH_FUNCTIONS = {"handle", "handle_request"}

#: callee names whose tuple-literal arguments are client requests.
CLIENT_SEND_FUNCTIONS = {"request", "_request", "send"}


class WireProtocolRule(Rule):
    rule_id = "R3"
    name = "wire-protocol"
    description = (
        "every op dispatched in handle()/handle_request() has a client "
        "call site, and every op a client sends is dispatched somewhere"
    )

    def check(self, modules: Sequence[Module]) -> List[Finding]:
        # op -> (rel path, line) of one representative site per side
        server_ops: Dict[str, Tuple[str, int]] = {}
        client_ops: Dict[str, Tuple[str, int]] = {}
        for module in modules:
            for op, line in _server_ops(module.tree):
                server_ops.setdefault(op, (module.rel, line))
            for op, line in _client_ops(module.tree):
                client_ops.setdefault(op, (module.rel, line))
        if not server_ops and not client_ops:
            return []
        findings: List[Finding] = []
        for op in sorted(set(server_ops) - set(client_ops)):
            rel, line = server_ops[op]
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=rel,
                    line=line,
                    message=(
                        f"server dispatches op {op!r} but no client call "
                        "site sends it — dead protocol surface (or a "
                        "missing client method)"
                    ),
                    key=f"R3:server-only:{op}",
                )
            )
        for op in sorted(set(client_ops) - set(server_ops)):
            rel, line = client_ops[op]
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=rel,
                    line=line,
                    message=(
                        f"client sends op {op!r} but no handle()/"
                        "handle_request() dispatches it — every daemon "
                        "will answer with an error reply"
                    ),
                    key=f"R3:client-only:{op}",
                )
            )
        return findings


def _server_ops(tree: ast.Module) -> List[Tuple[str, int]]:
    """``(op, line)`` for every literal the dispatch seam compares against."""
    ops: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name not in SERVER_DISPATCH_FUNCTIONS:
            continue
        for compare in ast.walk(node):
            if not isinstance(compare, ast.Compare):
                continue
            left = compare.left
            if not (isinstance(left, ast.Name) and left.id == "op"):
                continue
            for operator, comparator in zip(compare.ops, compare.comparators):
                if isinstance(operator, (ast.Eq, ast.In)):
                    ops.extend(_string_constants(comparator))
    return ops


def _client_ops(tree: ast.Module) -> List[Tuple[str, int]]:
    """``(op, line)`` for every request-tuple literal a client builds."""
    ops: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if callee is None:
                continue
            if callee.rsplit(".", 1)[-1] not in CLIENT_SEND_FUNCTIONS:
                continue
            for arg in node.args:
                ops.extend(_tuple_head(arg))
        elif isinstance(node, ast.Lambda):
            ops.extend(_tuple_head(node.body))
    return ops


def _tuple_head(node: ast.AST) -> List[Tuple[str, int]]:
    """The leading string constant of a tuple literal, if that is what
    ``node`` is."""
    if (
        isinstance(node, ast.Tuple)
        and node.elts
        and isinstance(node.elts[0], ast.Constant)
        and isinstance(node.elts[0].value, str)
    ):
        return [(node.elts[0].value, node.lineno)]
    return []


def _string_constants(node: ast.AST) -> List[Tuple[str, int]]:
    """String literals in a comparator: one constant, or a tuple/list/set
    of constants (``op in ("a", "b")``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [(node.value, node.lineno)]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        found: List[Tuple[str, int]] = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                found.append((element.value, element.lineno))
        return found
    return []
