"""Integration and qualitative-shape tests spanning multiple modules.

These encode the paper's *claims* as testable invariants at small scale:
CPA beats the baselines, spammer weighting works, the greedy search
instantiates sensible label sets, and online learning converges towards
the offline solution.
"""

import numpy as np
import pytest

from repro.baselines import (
    CommunityBCCAggregator,
    CPAAggregator,
    MajorityVoteAggregator,
)
from repro.core.config import CPAConfig
from repro.core.model import CPAModel
from repro.data.streams import AnswerStream
from repro.evaluation.metrics import evaluate_predictions
from repro.simulation.generator import generate_dataset
from repro.simulation.perturbations import (
    inject_spammers,
    reveal_truth_fraction,
    sparsify,
)
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def medium_dataset():
    """A slightly larger crowd where accuracy ordering is stable."""
    config = tiny_config(
        name="medium",
        n_items=120,
        n_workers=60,
        n_labels=18,
        n_label_clusters=5,
        n_item_clusters=8,
        answers_per_item=5,
        labels_per_item_mean=2.5,
    )
    return generate_dataset(config, seed=77)


class TestAccuracyOrdering:
    def test_cpa_beats_mv_on_f1(self, medium_dataset):
        cpa = evaluate_predictions(
            CPAAggregator().aggregate(medium_dataset), medium_dataset.truth
        )
        mv = evaluate_predictions(
            MajorityVoteAggregator().aggregate(medium_dataset), medium_dataset.truth
        )
        assert cpa.f1 > mv.f1 + 0.05
        assert cpa.recall > mv.recall

    def test_cpa_competitive_with_cbcc(self, medium_dataset):
        cpa = evaluate_predictions(
            CPAAggregator().aggregate(medium_dataset), medium_dataset.truth
        )
        cbcc = evaluate_predictions(
            CommunityBCCAggregator().aggregate(medium_dataset), medium_dataset.truth
        )
        assert cpa.f1 >= cbcc.f1 - 0.03


class TestRobustness:
    def test_sparsity_degrades_gracefully(self, medium_dataset):
        full = evaluate_predictions(
            CPAAggregator().aggregate(medium_dataset), medium_dataset.truth
        )
        sparse_ds = sparsify(medium_dataset, 0.4, seed=1)
        sparse = evaluate_predictions(
            CPAAggregator().aggregate(sparse_ds), medium_dataset.truth
        )
        assert sparse.precision > 0.5 * full.precision

    def test_spam_injection_bounded_damage(self, medium_dataset):
        clean = evaluate_predictions(
            CPAAggregator().aggregate(medium_dataset), medium_dataset.truth
        )
        spammed_ds = inject_spammers(medium_dataset, 0.3, seed=2)
        spammed = evaluate_predictions(
            CPAAggregator().aggregate(spammed_ds), medium_dataset.truth
        )
        assert spammed.precision > 0.7 * clean.precision


class TestSupervision:
    def test_partial_truth_does_not_hurt(self, medium_dataset):
        unsupervised = evaluate_predictions(
            CPAModel(CPAConfig(seed=4)).fit(medium_dataset).predict(),
            medium_dataset.truth,
        )
        partially = reveal_truth_fraction(medium_dataset, 0.3, seed=3)
        supervised_model = CPAModel(CPAConfig(seed=4)).fit(
            partially.answers, truth=partially.truth
        )
        supervised = evaluate_predictions(
            supervised_model.predict(), medium_dataset.truth
        )
        assert supervised.f1 >= unsupervised.f1 - 0.08


class TestOnlineConvergence:
    def test_online_approaches_offline(self, medium_dataset):
        offline = evaluate_predictions(
            CPAModel(CPAConfig(seed=5)).fit(medium_dataset).predict(),
            medium_dataset.truth,
        )
        model = CPAModel(CPAConfig(seed=5)).start_online(
            medium_dataset.n_items,
            medium_dataset.n_workers,
            medium_dataset.n_labels,
            seed=5,
            total_answers_hint=medium_dataset.n_answers,
        )
        # stream seed 4 draws a typical permutation (ratios 0.56-0.74
        # across seeds 1-9; the old seed 6 was an unlucky-tail draw once
        # AnswerStream gained per-call child seeds for replay determinism)
        for batch in AnswerStream(medium_dataset.answers, seed=4).by_fractions(
            [0.25, 0.5, 0.75, 1.0]
        ):
            model.partial_fit(batch)
        online = evaluate_predictions(model.predict(), medium_dataset.truth)
        # at this scale SVI sees ~12 batches; the full-scale gap is measured
        # by the fig6/table5 benchmarks.
        assert online.f1 > 0.55 * offline.f1

    def test_more_data_improves_quality(self, medium_dataset):
        scores = []
        model = CPAModel(CPAConfig(seed=7)).start_online(
            medium_dataset.n_items,
            medium_dataset.n_workers,
            medium_dataset.n_labels,
            seed=7,
            total_answers_hint=medium_dataset.n_answers,
        )
        for batch in AnswerStream(medium_dataset.answers, seed=8).by_fractions(
            [0.2, 0.6, 1.0]
        ):
            model.partial_fit(batch)
            scores.append(
                evaluate_predictions(model.predict(), medium_dataset.truth).f1
            )
        assert scores[-1] > scores[0]


class TestStructureRecovery:
    def test_item_clusters_align_with_generative(self, medium_dataset):
        model = CPAModel(CPAConfig(seed=9)).fit(medium_dataset)
        inferred = np.asarray(model.item_clusters())
        true_clusters = np.asarray(medium_dataset.item_clusters)
        purity = 0
        for cluster in np.unique(inferred):
            members = true_clusters[inferred == cluster]
            purity += np.bincount(members).max()
        assert purity / len(inferred) > 0.55

    def test_communities_separate_spammers(self, medium_dataset):
        model = CPAModel(CPAConfig(seed=9)).fit(medium_dataset)
        communities = np.asarray(model.worker_communities())
        spam = np.asarray(
            [t.endswith("spammer") for t in medium_dataset.worker_types]
        )
        purity = 0
        for community in np.unique(communities):
            members = spam[communities == community]
            purity += max(members.sum(), (~members).sum())
        assert purity / len(communities) > 0.75
