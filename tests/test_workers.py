"""Tests for worker archetypes, populations, and answer behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.utils.random import RandomState
from repro.workers.behavior import AnswerBehavior, expected_operating_point
from repro.workers.population import PopulationSpec, sample_population
from repro.workers.types import WorkerProfile, WorkerType, sample_profile


class TestWorkerType:
    def test_spammer_flags(self):
        assert WorkerType.UNIFORM_SPAMMER.is_spammer
        assert WorkerType.RANDOM_SPAMMER.is_spammer
        assert WorkerType.RELIABLE.is_honest
        assert not WorkerType.SLOPPY.is_spammer


class TestWorkerProfile:
    def test_uniform_spammer_needs_fixed_answer(self):
        with pytest.raises(ValidationError):
            WorkerProfile(worker_type=WorkerType.UNIFORM_SPAMMER)

    def test_random_spammer_needs_inclusion(self):
        with pytest.raises(ValidationError):
            WorkerProfile(worker_type=WorkerType.RANDOM_SPAMMER, random_inclusion=0.0)

    def test_honest_needs_sensitivity(self):
        with pytest.raises(ValidationError):
            WorkerProfile(worker_type=WorkerType.RELIABLE)

    def test_sample_profile_ranges(self):
        rng = RandomState(0)
        for _ in range(20):
            profile = sample_profile(WorkerType.RELIABLE, 10, rng)
            assert profile.sensitivity.shape == (10,)
            assert profile.sensitivity.mean() > 0.7
            assert 0 <= profile.confusion_prob <= 0.1
            assert profile.attention_budget >= 4

    def test_sloppy_below_reliable(self):
        rng = RandomState(1)
        reliable = np.mean(
            [sample_profile(WorkerType.RELIABLE, 8, rng).sensitivity.mean() for _ in range(10)]
        )
        sloppy = np.mean(
            [sample_profile(WorkerType.SLOPPY, 8, rng).sensitivity.mean() for _ in range(10)]
        )
        assert reliable > sloppy + 0.2


class TestPopulationSpec:
    def test_paper_default_sums_to_one(self):
        spec = PopulationSpec.paper_default()
        assert sum(spec.mixture.values()) == pytest.approx(1.0)
        assert spec.spammer_fraction() == pytest.approx(0.25)

    def test_from_alpha_beta_gamma(self):
        spec = PopulationSpec.from_alpha_beta_gamma(43, 32, 25)
        assert spec.spammer_fraction() == pytest.approx(0.25)
        assert sum(spec.mixture.values()) == pytest.approx(1.0)
        with pytest.raises(ValidationError):
            PopulationSpec.from_alpha_beta_gamma(50, 30, 30)

    def test_invalid_mixtures(self):
        with pytest.raises(ValidationError):
            PopulationSpec({WorkerType.RELIABLE: 0.5})
        with pytest.raises(ValidationError):
            PopulationSpec({})

    def test_sample_population_counts(self):
        spec = PopulationSpec.paper_default()
        profiles = sample_population(spec, 40, 10, seed=0)
        assert len(profiles) == 40
        spam = sum(1 for p in profiles if p.worker_type.is_spammer)
        assert spam == 10  # 25% of 40

    def test_sample_population_deterministic(self):
        spec = PopulationSpec.spammers_only()
        a = sample_population(spec, 10, 5, seed=3)
        b = sample_population(spec, 10, 5, seed=3)
        assert [p.worker_type for p in a] == [p.worker_type for p in b]


class TestAnswerBehavior:
    def _reliable(self, n_labels=10, budget=0):
        return WorkerProfile(
            worker_type=WorkerType.RELIABLE,
            sensitivity=np.full(n_labels, 0.95),
            fp_mean=0.0,
            confusion_prob=0.0,
            attention_budget=budget,
        )

    def test_reliable_worker_mostly_correct(self):
        behavior = AnswerBehavior(10)
        rng = RandomState(0)
        truth = frozenset({1, 4, 7})
        hits = 0
        for _ in range(200):
            answer = behavior.generate(self._reliable(), truth, rng)
            hits += len(answer & truth)
            assert answer  # never empty
            assert not answer - truth  # fp_mean = 0 -> no false positives
        assert hits / (200 * 3) > 0.9

    def test_uniform_spammer_constant(self):
        behavior = AnswerBehavior(6)
        profile = WorkerProfile(
            worker_type=WorkerType.UNIFORM_SPAMMER, fixed_answer=frozenset({2})
        )
        rng = RandomState(0)
        answers = {behavior.generate(profile, frozenset({0}), rng) for _ in range(20)}
        assert answers == {frozenset({2})}

    def test_random_spammer_nonempty_and_truth_blind(self):
        behavior = AnswerBehavior(20)
        profile = WorkerProfile(
            worker_type=WorkerType.RANDOM_SPAMMER, random_inclusion=0.1
        )
        rng = RandomState(0)
        sizes = [len(behavior.generate(profile, frozenset({0, 1}), rng)) for _ in range(300)]
        assert min(sizes) >= 1
        assert np.mean(sizes) < 6

    def test_attention_budget_caps_answer(self):
        behavior = AnswerBehavior(10)
        profile = self._reliable(budget=2)
        rng = RandomState(0)
        for _ in range(50):
            answer = behavior.generate(profile, frozenset(range(8)), rng)
            assert len(answer) <= 2

    def test_confusion_substitutes_within_cluster(self):
        # confusability concentrated on label 1 when label 0 is true
        confusability = np.zeros((4, 4))
        confusability[0, 1] = 1.0
        behavior = AnswerBehavior(4, confusability=confusability)
        profile = WorkerProfile(
            worker_type=WorkerType.NORMAL,
            sensitivity=np.full(4, 0.99),
            fp_mean=0.0,
            confusion_prob=1.0,  # always substitute
        )
        rng = RandomState(0)
        answers = [behavior.generate(profile, frozenset({0}), rng) for _ in range(50)]
        assert all(1 in a for a in answers)

    def test_difficulty_scale_lowers_recall(self):
        behavior = AnswerBehavior(10)
        profile = self._reliable()
        rng = RandomState(0)
        truth = frozenset(range(5))
        easy = np.mean(
            [len(behavior.generate(profile, truth, rng) & truth) for _ in range(100)]
        )
        hard = np.mean(
            [
                len(behavior.generate(profile, truth, rng, sensitivity_scale=0.4) & truth)
                for _ in range(100)
            ]
        )
        assert hard < easy

    def test_bad_scale_rejected(self):
        behavior = AnswerBehavior(5)
        with pytest.raises(ValidationError):
            behavior.generate(self._reliable(5), frozenset({0}), RandomState(0), sensitivity_scale=0.0)

    def test_out_of_range_truth_rejected(self):
        behavior = AnswerBehavior(5)
        with pytest.raises(ValidationError):
            behavior.generate(self._reliable(5), frozenset({9}), RandomState(0))

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_answers_always_valid(self, seed):
        behavior = AnswerBehavior(8)
        rng = RandomState(seed)
        worker_type = list(WorkerType)[int(rng.integers(len(WorkerType)))]
        profile = sample_profile(worker_type, 8, rng, typical_answer_size=2.0)
        answer = behavior.generate(profile, frozenset({0, 3}), rng)
        assert answer
        assert all(0 <= label < 8 for label in answer)


class TestOperatingPoints:
    def test_reliable_top_right(self):
        rng = RandomState(0)
        profile = sample_profile(WorkerType.RELIABLE, 20, rng)
        sens, spec = expected_operating_point(profile, 20)
        assert sens > 0.8 and spec > 0.9

    def test_random_spammer_on_antidiagonal(self):
        profile = WorkerProfile(
            worker_type=WorkerType.RANDOM_SPAMMER, random_inclusion=0.3
        )
        sens, spec = expected_operating_point(profile, 20)
        assert sens + spec == pytest.approx(1.0)

    def test_uniform_spammer_low_sensitivity(self):
        profile = WorkerProfile(
            worker_type=WorkerType.UNIFORM_SPAMMER, fixed_answer=frozenset({0})
        )
        sens, spec = expected_operating_point(profile, 20)
        assert sens < 0.2
        assert spec > 0.9
