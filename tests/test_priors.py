"""Tests for the prior-knowledge extension (paper §6's conditional hook)."""

import numpy as np
import pytest

from repro.core.priors import LabelKnowledge, apply_knowledge, knowledge_coverage
from repro.errors import ValidationError


class TestLabelKnowledge:
    def test_add_and_matrix(self):
        knowledge = LabelKnowledge(n_labels=4)
        knowledge.add_implication(0, 1, 0.9)
        matrix = knowledge.conditional_matrix()
        assert matrix[0, 1] == 0.9
        assert matrix[1, 0] == 0.5  # neutral elsewhere

    def test_last_rule_wins(self):
        knowledge = LabelKnowledge(n_labels=3)
        knowledge.add_implication(0, 1, 0.7)
        knowledge.add_implication(0, 1, 0.9)
        assert knowledge.conditional_matrix()[0, 1] == 0.9

    @pytest.mark.parametrize(
        "cause,effect,probability",
        [(0, 0, 0.8), (0, 9, 0.8), (-1, 1, 0.8), (0, 1, 0.0), (0, 1, 1.0)],
    )
    def test_invalid_rules(self, cause, effect, probability):
        knowledge = LabelKnowledge(n_labels=4)
        with pytest.raises(ValidationError):
            knowledge.add_implication(cause, effect, probability)

    def test_invalid_at_construction(self):
        with pytest.raises(ValidationError):
            LabelKnowledge(n_labels=2, implications=[(0, 0, 0.5)])
        with pytest.raises(ValidationError):
            LabelKnowledge(n_labels=0)

    def test_from_cooccurrence_graph(self, tiny_dataset):
        from repro.simulation.labelspace import cooccurrence_graph

        graph = cooccurrence_graph(tiny_dataset.answers.cooccurrence_counts())
        knowledge = LabelKnowledge.from_cooccurrence_graph(
            graph, tiny_dataset.n_labels, strength=0.8, min_weight=0.3
        )
        stats = knowledge_coverage(knowledge)
        assert stats["n_rules"] >= 2
        assert stats["mean_strength"] == pytest.approx(0.8)

    def test_coverage_empty(self):
        assert knowledge_coverage(LabelKnowledge(n_labels=3))["n_rules"] == 0


class TestApplyKnowledge:
    def test_boosts_implied_label(self, tiny_model):
        consensus = tiny_model.consensus_
        # Find a cluster with one confident label and one weak label.
        inclusion = consensus.inclusion
        cluster = int(np.argmax(inclusion.max(axis=1)))
        cause = int(np.argmax(inclusion[cluster]))
        effect = int(np.argmin(inclusion[cluster]))
        knowledge = LabelKnowledge(n_labels=inclusion.shape[1])
        knowledge.add_implication(cause, effect, 0.95)

        adjusted = apply_knowledge(consensus, knowledge)
        assert adjusted.inclusion[cluster, effect] > inclusion[cluster, effect]
        # untouched entries stay identical (up to the clipping)
        untouched = np.ones_like(inclusion, dtype=bool)
        untouched[:, effect] = False
        np.testing.assert_allclose(
            adjusted.inclusion[untouched], np.clip(inclusion, 1e-4, 1 - 1e-4)[untouched],
            atol=1e-9,
        )

    def test_inactive_cause_changes_nothing(self, tiny_model):
        consensus = tiny_model.consensus_
        inclusion = consensus.inclusion
        cause = int(np.argmin(inclusion.max(axis=0)))  # weak everywhere
        effect = (cause + 1) % inclusion.shape[1]
        knowledge = LabelKnowledge(n_labels=inclusion.shape[1])
        knowledge.add_implication(cause, effect, 0.95)
        adjusted = apply_knowledge(consensus, knowledge, confidence_threshold=0.99)
        np.testing.assert_allclose(
            adjusted.inclusion, np.clip(inclusion, 1e-4, 1 - 1e-4), atol=1e-9
        )

    def test_input_not_mutated(self, tiny_model):
        consensus = tiny_model.consensus_
        before = consensus.inclusion.copy()
        knowledge = LabelKnowledge(n_labels=before.shape[1])
        knowledge.add_implication(0, 1, 0.9)
        apply_knowledge(consensus, knowledge)
        np.testing.assert_array_equal(consensus.inclusion, before)

    def test_shape_mismatch_rejected(self, tiny_model):
        with pytest.raises(ValidationError):
            apply_knowledge(tiny_model.consensus_, LabelKnowledge(n_labels=99))

    def test_bad_threshold_rejected(self, tiny_model):
        knowledge = LabelKnowledge(n_labels=tiny_model.consensus_.inclusion.shape[1])
        with pytest.raises(ValidationError):
            apply_knowledge(tiny_model.consensus_, knowledge, confidence_threshold=0.2)

    def test_end_to_end_with_prediction(self, tiny_model, tiny_dataset):
        """Knowledge derived from the data itself must not hurt accuracy."""
        from repro.core.prediction import predict_items
        from repro.evaluation.metrics import evaluate_predictions
        from repro.simulation.labelspace import cooccurrence_graph

        graph = cooccurrence_graph(tiny_dataset.answers.cooccurrence_counts())
        knowledge = LabelKnowledge.from_cooccurrence_graph(
            graph, tiny_dataset.n_labels, strength=0.7, min_weight=0.4
        )
        adjusted = apply_knowledge(tiny_model.consensus_, knowledge)
        details = predict_items(
            tiny_model.state_, adjusted, tiny_dataset.answers, tiny_model.config
        )
        baseline = evaluate_predictions(tiny_model.predict(), tiny_dataset.truth)
        augmented = evaluate_predictions(
            {k: v.labels for k, v in details.items()}, tiny_dataset.truth
        )
        assert augmented.f1 >= baseline.f1 - 0.05
