"""Checkpoint round-trips, versioning, and index-space growth.

Contracts under test (ISSUE 7 tentpole + satellite 3):

* **Bitwise round-trip** — ``save → load`` reproduces every parameter
  array bit for bit, across float32 and float64 configs, for both
  freshly initialised and SVI-trained states, including the mixed-dtype
  reality that SVI's symmetry-breaking pass leaves float64 globals under
  a float32 config.
* **Localized states** — a state shaped by shard-local truncation
  windows (``localize_clusters``) keeps its exact zero pattern through a
  round-trip, and growth appends new components *outside* every window.
* **Warm resume parity** — an engine restored from a checkpoint taken
  mid-stream continues the SVI trajectory bitwise: cold full-stream run
  and head → checkpoint → restore → tail agree on every array.
* **Format guards** — wrong magic, unsupported versions, header/array
  dtype disagreement, and corrupt blobs raise :class:`CheckpointError`,
  never a bare pickle/numpy error.
* **Growth rules** — ``grow_state`` never shrinks, preserves existing
  rows exactly (zero-padding responsibilities, prior-filling globals),
  keeps each array's own dtype, and is deterministic in its seed.
"""

import pickle

import numpy as np
import pytest

from repro.core.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    checkpoint_bytes,
    checkpoint_from_bytes,
    checkpoint_payload,
    grow_state,
    grown_truncations,
    load_checkpoint,
    payload_meta,
    save_checkpoint,
    state_from_payload,
)
from repro.core.config import CPAConfig, clamp_truncation
from repro.core.inference import VariationalInference
from repro.core.state import initialize_state
from repro.core.svi import StochasticInference, stream_from_matrix
from repro.data.answers import AnswerMatrix
from repro.errors import CheckpointError

ARRAYS = ("rho", "ups", "lam", "zeta", "kappa", "phi", "cell_mass")


def _random_matrix(seed=0, n_items=40, n_workers=20, n_labels=8, per_item=3):
    rng = np.random.default_rng(seed)
    matrix = AnswerMatrix(n_items, n_workers, n_labels)
    for item in range(n_items):
        for worker in rng.choice(n_workers, size=per_item, replace=False):
            labels = tuple(np.flatnonzero(rng.random(n_labels) < 0.3)) or (0,)
            matrix.add(item, int(worker), labels)
    return matrix


def _trained_engine(matrix, dtype="float64", n_batches=3, seed=0):
    config = CPAConfig(seed=seed, dtype=dtype, max_truncation=8, svi_batch_answers=30)
    engine = StochasticInference(
        config,
        matrix.n_items,
        matrix.n_workers,
        matrix.n_labels,
        seed=seed,
        total_answers_hint=matrix.n_answers,
    )
    batches = stream_from_matrix(matrix, answers_per_batch=30, seed=7)
    for batch in batches[:n_batches]:
        engine.process_batch(batch)
    return engine, batches


def _assert_states_bitwise(a, b):
    for name in ARRAYS:
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype, name
        np.testing.assert_array_equal(left, right, err_msg=name)
    if a.mu is None:
        assert b.mu is None
    else:
        assert a.mu.dtype == b.mu.dtype
        np.testing.assert_array_equal(a.mu, b.mu)
    assert a.batches_seen == b.batches_seen
    assert (a.n_items, a.n_workers, a.n_labels) == (b.n_items, b.n_workers, b.n_labels)
    assert (a.n_clusters, a.n_communities) == (b.n_clusters, b.n_communities)


# --------------------------------------------------------------- round-trips


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_trained_state_round_trips_bitwise(self, dtype):
        engine, _ = _trained_engine(_random_matrix(), dtype=dtype)
        blob = checkpoint_bytes(engine.state, seeded=engine._seeded)
        restored, seeded = checkpoint_from_bytes(blob)
        assert seeded is engine._seeded is True
        _assert_states_bitwise(engine.state, restored)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_fresh_state_round_trips_bitwise(self, dtype):
        config = CPAConfig(seed=3, dtype=dtype)
        state = initialize_state(config, 25, 10, 6, seed=3)
        restored, seeded = checkpoint_from_bytes(checkpoint_bytes(state))
        assert seeded is False
        _assert_states_bitwise(state, restored)

    def test_mixed_dtype_globals_survive(self):
        """SVI seeding leaves float64 globals under a float32 config; the
        checkpoint must preserve that — not cast to the header dtype."""
        engine, _ = _trained_engine(_random_matrix(), dtype="float32")
        assert engine.state.phi.dtype == np.float32
        assert engine.state.rho.dtype == np.float64  # seeded in float64
        restored, _ = checkpoint_from_bytes(checkpoint_bytes(engine.state))
        assert restored.phi.dtype == np.float32
        assert restored.rho.dtype == np.float64
        np.testing.assert_array_equal(engine.state.rho, restored.rho)

    def test_file_round_trip(self, tmp_path):
        engine, _ = _trained_engine(_random_matrix())
        path = str(tmp_path / "posterior.ckpt")
        written = save_checkpoint(path, engine.state, seeded=True)
        assert written == (tmp_path / "posterior.ckpt").stat().st_size
        restored, seeded = load_checkpoint(path)
        assert seeded is True
        _assert_states_bitwise(engine.state, restored)

    def test_payload_meta_reports_header(self):
        engine, _ = _trained_engine(_random_matrix())
        meta = payload_meta(checkpoint_payload(engine.state, seeded=True))
        assert meta.version == CHECKPOINT_VERSION
        assert (meta.n_items, meta.n_workers, meta.n_labels) == (40, 20, 8)
        assert meta.n_clusters == engine.state.n_clusters
        assert meta.batches_seen == engine.state.batches_seen == 3
        assert meta.seeded is True

    def test_loader_ignores_unknown_keys(self):
        """Serve-level snapshots extend the payload; core loaders must
        skip what they do not know rather than reject it."""
        state = initialize_state(CPAConfig(seed=0), 12, 6, 4, seed=0)
        payload = checkpoint_payload(state)
        payload["answers"] = {"entries": {(0, 1): (2,)}}
        payload["answers_seen"] = 17
        restored, _ = state_from_payload(payload)
        _assert_states_bitwise(state, restored)

    def test_localized_state_round_trips_with_zero_pattern(self):
        """A sharded-VI state carries exact zeros outside its cluster
        windows; the round-trip must reproduce the pattern bit for bit."""
        matrix = _random_matrix(seed=2, n_items=120, n_workers=24, per_item=2)
        config = CPAConfig(
            seed=0, backend="sharded", n_shards=4, adaptive_truncation="on"
        )
        engine = VariationalInference(config, matrix)
        for _ in range(3):
            engine.sweep()
        state = engine.state
        zero_mask = state.phi == 0.0
        assert zero_mask.any(), "scenario must produce localized zeros"
        restored, _ = checkpoint_from_bytes(checkpoint_bytes(state))
        _assert_states_bitwise(state, restored)
        np.testing.assert_array_equal(restored.phi == 0.0, zero_mask)


# -------------------------------------------------------------- warm resume


class TestWarmResume:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_resume_continues_trajectory_bitwise(self, dtype):
        matrix = _random_matrix(seed=4)
        cold_engine, batches = _trained_engine(matrix, dtype=dtype, n_batches=0)
        for batch in batches:
            cold_engine.process_batch(batch)

        head, _ = _trained_engine(matrix, dtype=dtype, n_batches=2)
        blob = pickle.dumps(head.checkpoint())
        warm, _ = _trained_engine(matrix, dtype=dtype, n_batches=0)
        warm.restore(pickle.loads(blob))
        for batch in batches[2:]:
            warm.process_batch(batch)

        _assert_states_bitwise(cold_engine.state, warm.state)

    def test_restore_preserves_seeded_flag(self):
        """Restoring a post-seeding checkpoint must not re-run the
        symmetry-breaking pass (which would erase the posterior)."""
        matrix = _random_matrix(seed=5)
        head, _ = _trained_engine(matrix, n_batches=2)
        assert head._seeded
        warm, _ = _trained_engine(matrix, n_batches=0)
        assert not warm._seeded
        warm.restore(head.checkpoint())
        assert warm._seeded

    def test_restore_grows_smaller_checkpoint(self):
        """A checkpoint taken before new items/workers appeared restores
        into a bigger engine by growing, deterministically."""
        small = _random_matrix(seed=6, n_items=20, n_workers=10)
        head, _ = _trained_engine(small, n_batches=2)
        payload = head.checkpoint()

        def make_big():
            config = CPAConfig(seed=0, max_truncation=8, svi_batch_answers=30)
            return StochasticInference(config, 35, 16, 8, seed=0)

        first, second = make_big(), make_big()
        first.restore(payload)
        second.restore(payload)
        _assert_states_bitwise(first.state, second.state)
        assert first.state.n_items == 35
        assert first.state.batches_seen == head.state.batches_seen
        # old rows survive exactly
        np.testing.assert_array_equal(
            first.state.phi[:20, : head.state.n_clusters], head.state.phi
        )


# ------------------------------------------------------------- format guards


class TestFormatGuards:
    def _payload(self):
        state = initialize_state(CPAConfig(seed=0), 10, 5, 4, seed=0)
        return checkpoint_payload(state)

    def test_rejects_wrong_magic(self):
        payload = self._payload()
        payload["magic"] = "not-a-checkpoint"
        with pytest.raises(CheckpointError, match="not a CPA checkpoint"):
            payload_meta(payload)
        with pytest.raises(CheckpointError):
            state_from_payload({"pickles": "arbitrary"})

    def test_rejects_future_version(self):
        payload = self._payload()
        payload["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(CheckpointError, match="version"):
            state_from_payload(payload)

    def test_rejects_header_phi_dtype_disagreement(self):
        payload = self._payload()
        payload["dtype"] = "float32"  # phi is float64
        with pytest.raises(CheckpointError, match="dtype"):
            state_from_payload(payload)

    def test_rejects_corrupt_blob(self):
        with pytest.raises(CheckpointError):
            checkpoint_from_bytes(b"\x00\x01 definitely not a pickle")

    def test_rejects_tampered_arrays(self):
        payload = self._payload()
        payload["phi"] = -payload["phi"]  # negative responsibilities
        with pytest.raises(CheckpointError, match="validation"):
            state_from_payload(payload)

    def test_magic_is_part_of_the_wire_format(self):
        assert CHECKPOINT_MAGIC == "cpa-checkpoint"
        payload = self._payload()
        assert payload["magic"] == CHECKPOINT_MAGIC


# ------------------------------------------------------------------- growth


class TestGrowth:
    def _grown(self, dtype="float64", seed=11):
        matrix = _random_matrix(seed=8)
        engine, _ = _trained_engine(matrix, dtype=dtype)
        old = engine.state
        new = grow_state(old, engine.config, 60, 30, 11, seed=seed)
        return old, new, engine.config

    def test_rejects_shrink(self):
        old, _, config = self._grown()
        with pytest.raises(CheckpointError, match="shrink"):
            grow_state(old, config, old.n_items - 1, old.n_workers, old.n_labels)

    def test_same_sizes_return_independent_copy(self):
        old, _, config = self._grown()
        copy = grow_state(old, config, old.n_items, old.n_workers, old.n_labels)
        assert copy is not old
        _assert_states_bitwise(old, copy)
        copy.phi[0, 0] += 1.0
        assert old.phi[0, 0] != copy.phi[0, 0]

    def test_truncations_never_shrink(self):
        old, new, config = self._grown()
        t, m = grown_truncations(config, old, 60, 30)
        assert (new.n_clusters, new.n_communities) == (t, m)
        assert t >= old.n_clusters and m >= old.n_communities
        assert t <= clamp_truncation(config.max_truncation, 60) or t == old.n_clusters

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_existing_rows_preserved_exactly(self, dtype):
        old, new, _ = self._grown(dtype=dtype)
        t_old, m_old = old.n_clusters, old.n_communities
        np.testing.assert_array_equal(new.phi[: old.n_items, :t_old], old.phi)
        np.testing.assert_array_equal(new.kappa[: old.n_workers, :m_old], old.kappa)
        np.testing.assert_array_equal(
            new.lam[:t_old, :m_old, : old.n_labels], old.lam
        )
        np.testing.assert_array_equal(new.zeta[:t_old, : old.n_labels], old.zeta)
        np.testing.assert_array_equal(new.rho[: m_old - 1], old.rho)
        np.testing.assert_array_equal(new.ups[: t_old - 1], old.ups)
        np.testing.assert_array_equal(
            new.cell_mass[:t_old, :m_old], old.cell_mass
        )
        # responsibilities of existing rows are padded with exact zeros,
        # so row sums (and any localized windows) are untouched
        assert np.all(new.phi[: old.n_items, t_old:] == 0.0)
        assert np.all(new.kappa[: old.n_workers, m_old:] == 0.0)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_arrays_keep_their_own_dtypes(self, dtype):
        old, new, _ = self._grown(dtype=dtype)
        for name in ARRAYS:
            assert getattr(new, name).dtype == getattr(old, name).dtype, name

    def test_growth_is_deterministic_in_seed(self):
        _, first, _ = self._grown(seed=11)
        _, second, _ = self._grown(seed=11)
        _, third, _ = self._grown(seed=12)
        _assert_states_bitwise(first, second)
        assert not np.array_equal(first.phi[40:], third.phi[40:])

    def test_grown_state_validates_and_carries_bookkeeping(self):
        old, new, _ = self._grown()
        new.validate()
        assert new.batches_seen == old.batches_seen
        assert new.mu is not None and new.mu.shape == (60, new.n_clusters - 1)

    def test_localized_windows_survive_growth(self):
        """New clusters are appended after every window, so rows localized
        to a prefix keep their exact zero tail after growth."""
        matrix = _random_matrix(seed=9, n_items=80, n_workers=16, per_item=2)
        config = CPAConfig(
            seed=0, backend="sharded", n_shards=4, adaptive_truncation="on"
        )
        engine = VariationalInference(config, matrix)
        for _ in range(2):
            engine.sweep()
        old = engine.state
        t_old = old.n_clusters
        zero_tail_rows = np.flatnonzero((old.phi == 0.0).any(axis=1))
        grown = grow_state(old, config, 100, 20, old.n_labels, seed=1)
        for row in zero_tail_rows:
            np.testing.assert_array_equal(
                grown.phi[row, :t_old] == 0.0, old.phi[row] == 0.0
            )
            assert np.all(grown.phi[row, t_old:] == 0.0)

    def test_grown_engine_accepts_pre_growth_batches(self):
        """A batch minted before label growth (narrow indicator matrix)
        must still fold after the engine grows."""
        matrix = _random_matrix(seed=10)
        engine, batches = _trained_engine(matrix, n_batches=2)
        engine.grow(matrix.n_items + 5, matrix.n_workers + 3, matrix.n_labels + 2)
        engine.process_batch(batches[2])  # old-width batch
        assert engine.state.batches_seen == 3
        engine.state.validate()
