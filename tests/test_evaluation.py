"""Tests for metrics, runners, and reports."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import CPAAggregator, MajorityVoteAggregator
from repro.data.dataset import GroundTruth
from repro.errors import ValidationError
from repro.evaluation.metrics import (
    delta_ratio,
    evaluate_predictions,
    item_precision_recall,
    micro_precision_recall,
    prediction_size_histogram,
)
from repro.evaluation.report import accuracy_matrix_table, averaged_table, scores_table
from repro.evaluation.runner import (
    average_scores,
    evaluate_methods,
    repeat_with_seeds,
)


class TestItemMetrics:
    def test_perfect_match(self):
        assert item_precision_recall({1, 2}, {1, 2}) == (1.0, 1.0)

    def test_partial(self):
        p, r = item_precision_recall({1, 2, 3}, {1, 4})
        assert p == pytest.approx(1 / 3)
        assert r == pytest.approx(1 / 2)

    def test_empty_prediction_nonempty_truth(self):
        assert item_precision_recall(set(), {1}) == (0.0, 0.0)

    def test_empty_both(self):
        assert item_precision_recall(set(), set()) == (1.0, 1.0)

    def test_nonempty_prediction_empty_truth(self):
        p, r = item_precision_recall({1}, set())
        assert p == 0.0 and r == 0.0

    @given(
        st.sets(st.integers(0, 8), max_size=5),
        st.sets(st.integers(0, 8), max_size=5),
    )
    @settings(max_examples=80)
    def test_bounds_and_symmetric_roles(self, predicted, truth):
        p, r = item_precision_recall(predicted, truth)
        assert 0 <= p <= 1 and 0 <= r <= 1
        # swapping roles swaps the metrics
        p2, r2 = item_precision_recall(truth, predicted)
        assert p == pytest.approx(r2) and r == pytest.approx(p2)


class TestDatasetMetrics:
    def test_averaging(self, micro_truth):
        predictions = {0: frozenset({0, 1}), 1: frozenset({2}), 2: frozenset(), 3: frozenset({0, 4})}
        result = evaluate_predictions(predictions, micro_truth)
        assert result.n_items == 4
        assert result.precision == pytest.approx((1 + 1 + 0 + 1) / 4)
        assert result.recall == pytest.approx((1 + 0.5 + 0 + 1) / 4)

    def test_f1(self, micro_truth):
        predictions = {i: micro_truth.get(i) for i in range(4)}
        result = evaluate_predictions(predictions, micro_truth)
        assert result.f1 == pytest.approx(1.0)

    def test_missing_items_scored_as_empty(self, micro_truth):
        result = evaluate_predictions({}, micro_truth)
        assert result.precision == 0.0

    def test_item_restriction(self, micro_truth):
        result = evaluate_predictions(
            {0: frozenset({0, 1})}, micro_truth, items=[0]
        )
        assert result.n_items == 1 and result.precision == 1.0

    def test_no_truth_raises(self):
        with pytest.raises(ValidationError):
            evaluate_predictions({}, GroundTruth(3, 2))

    def test_accepts_dataset(self, micro_dataset):
        result = evaluate_predictions(
            {0: frozenset({0, 1})}, micro_dataset, items=[0]
        )
        assert result.precision == 1.0

    def test_micro_metrics(self, micro_truth):
        predictions = {i: micro_truth.get(i) for i in range(4)}
        p, r = micro_precision_recall(predictions, micro_truth)
        assert p == 1.0 and r == 1.0

    def test_delta_ratio(self):
        assert delta_ratio(0.4, 0.8) == pytest.approx(0.5)
        assert delta_ratio(0.9, 0.0) == 0.0
        assert delta_ratio(-0.1, 0.5) == 0.0

    def test_histogram(self):
        histogram = prediction_size_histogram(
            {0: frozenset(), 1: frozenset({1}), 2: frozenset({1, 2})}
        )
        assert histogram == {0: 1, 1: 1, 2: 1}


class TestRunner:
    def test_evaluate_methods(self, tiny_dataset):
        scores = evaluate_methods(tiny_dataset, [MajorityVoteAggregator()])
        assert len(scores) == 1
        assert scores[0].method == "MV"
        assert scores[0].runtime_seconds >= 0

    def test_empty_methods_rejected(self, tiny_dataset):
        with pytest.raises(ValidationError):
            evaluate_methods(tiny_dataset, [])

    def test_repeat_with_seeds(self, tiny_dataset):
        from repro.simulation.generator import generate_dataset
        from tests.conftest import tiny_config

        grouped = repeat_with_seeds(
            lambda seed: generate_dataset(tiny_config(), seed=seed),
            lambda: [MajorityVoteAggregator()],
            seeds=[0, 1],
        )
        assert len(grouped["MV"]) == 2

    def test_repeat_requires_seeds(self):
        with pytest.raises(ValidationError):
            repeat_with_seeds(lambda s: None, lambda: [], seeds=[])

    def test_average_scores(self, tiny_dataset):
        grouped = {
            "MV": evaluate_methods(tiny_dataset, [MajorityVoteAggregator()])
            + evaluate_methods(tiny_dataset, [MajorityVoteAggregator()])
        }
        averaged = average_scores(grouped)
        assert averaged[0].n_runs == 2
        assert averaged[0].precision_std == pytest.approx(0.0)


class TestReports:
    def test_scores_table(self, tiny_dataset):
        scores = evaluate_methods(tiny_dataset, [MajorityVoteAggregator()])
        out = scores_table(scores, title="T")
        assert "MV" in out and "precision" in out

    def test_accuracy_matrix_table(self, tiny_dataset):
        scores = evaluate_methods(tiny_dataset, [MajorityVoteAggregator()])
        out = accuracy_matrix_table({"tiny": scores}, ["MV"])
        assert "tiny" in out

    def test_averaged_table(self, tiny_dataset):
        grouped = {"MV": evaluate_methods(tiny_dataset, [MajorityVoteAggregator()])}
        out = averaged_table(average_scores(grouped))
        assert "±" in out
