"""Tests for the answer matrix substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.answers import Answer, AnswerMatrix
from repro.errors import ValidationError


class TestAnswerRecord:
    def test_rejects_empty_labels(self):
        with pytest.raises(ValidationError):
            Answer(item=0, worker=0, labels=frozenset())


class TestAnswerMatrixBasics:
    def test_sizes_validated(self):
        with pytest.raises(ValidationError):
            AnswerMatrix(0, 1, 1)
        with pytest.raises(ValidationError):
            AnswerMatrix(1, 1, -2)

    def test_add_and_get(self, micro_matrix):
        assert micro_matrix.get(0, 0) == frozenset({0, 1})
        assert micro_matrix.get(2, 0) is None
        assert (0, 0) in micro_matrix
        assert len(micro_matrix) == 6

    def test_add_overwrites(self, micro_matrix):
        micro_matrix.add(0, 0, {4})
        assert micro_matrix.get(0, 0) == frozenset({4})
        assert micro_matrix.n_answers == 6  # still one answer per pair

    def test_out_of_range_indices(self, micro_matrix):
        with pytest.raises(ValidationError):
            micro_matrix.add(4, 0, {0})
        with pytest.raises(ValidationError):
            micro_matrix.add(0, 3, {0})
        with pytest.raises(ValidationError):
            micro_matrix.add(0, 0, {5})

    def test_empty_answer_rejected(self, micro_matrix):
        with pytest.raises(ValidationError):
            micro_matrix.add(0, 2, [])

    def test_remove(self, micro_matrix):
        micro_matrix.remove(0, 0)
        assert micro_matrix.get(0, 0) is None
        assert 0 not in micro_matrix.items_for_worker(0)
        with pytest.raises(ValidationError):
            micro_matrix.remove(0, 0)

    def test_indices(self, micro_matrix):
        assert micro_matrix.workers_for_item(0) == [0, 1]
        assert micro_matrix.items_for_worker(2) == [1, 3]
        assert micro_matrix.answered_items() == [0, 1, 2, 3]
        assert micro_matrix.active_workers() == [0, 1, 2]

    def test_sparsity(self, micro_matrix):
        assert micro_matrix.sparsity() == pytest.approx(1 - 6 / 12)

    def test_label_counts(self, micro_matrix):
        counts = micro_matrix.label_counts()
        assert counts.tolist() == [2, 2, 2, 1, 2]

    def test_cooccurrence_counts_symmetric(self, micro_matrix):
        counts = micro_matrix.cooccurrence_counts()
        assert (counts == counts.T).all()
        assert counts[0, 1] == 1  # labels 0,1 co-occur once (item 0, worker 0)
        assert counts[0, 0] == 2  # label 0 appears in two answers


class TestArraysExport:
    def test_roundtrip_shapes(self, micro_matrix):
        items, workers, indicators = micro_matrix.to_arrays()
        assert items.shape == workers.shape == (6,)
        assert indicators.shape == (6, 5)
        assert set(indicators.ravel().tolist()) <= {0.0, 1.0}

    def test_indicator_rows_match_sets(self, micro_matrix):
        items, workers, indicators = micro_matrix.to_arrays()
        for row in range(items.size):
            labels = frozenset(np.flatnonzero(indicators[row]).tolist())
            assert labels == micro_matrix.get(int(items[row]), int(workers[row]))

    def test_cache_invalidation_on_mutation(self, micro_matrix):
        first = micro_matrix.to_arrays()
        micro_matrix.add(2, 0, {3})
        second = micro_matrix.to_arrays()
        assert second[0].size == first[0].size + 1


class TestTransforms:
    def test_copy_independent(self, micro_matrix):
        clone = micro_matrix.copy()
        clone.add(2, 0, {1})
        assert micro_matrix.get(2, 0) is None
        assert clone.n_answers == micro_matrix.n_answers + 1

    def test_subset(self, micro_matrix):
        sub = micro_matrix.subset([(0, 0), (1, 2)])
        assert sub.n_answers == 2
        assert sub.get(0, 0) == micro_matrix.get(0, 0)

    def test_subset_missing_pair_rejected(self, micro_matrix):
        with pytest.raises(ValidationError):
            micro_matrix.subset([(2, 0)])

    def test_merge(self, micro_matrix):
        other = AnswerMatrix(4, 3, 5)
        other.add(2, 0, {2})
        other.add(0, 0, {4})  # conflict: other wins
        merged = micro_matrix.merged_with(other)
        assert merged.get(2, 0) == frozenset({2})
        assert merged.get(0, 0) == frozenset({4})
        # originals untouched
        assert micro_matrix.get(0, 0) == frozenset({0, 1})

    def test_merge_shape_mismatch(self, micro_matrix):
        with pytest.raises(ValidationError):
            micro_matrix.merged_with(AnswerMatrix(5, 3, 5))

    def test_from_mapping(self):
        matrix = AnswerMatrix.from_mapping(2, 2, 3, {(0, 0): [0], (1, 1): [1, 2]})
        assert matrix.n_answers == 2
        assert matrix.get(1, 1) == frozenset({1, 2})


@st.composite
def random_entries(draw):
    n_items = draw(st.integers(1, 6))
    n_workers = draw(st.integers(1, 5))
    n_labels = draw(st.integers(1, 6))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_items - 1), st.integers(0, n_workers - 1)
            ),
            unique=True,
            max_size=12,
        )
    )
    entries = {}
    for pair in pairs:
        labels = draw(
            st.sets(st.integers(0, n_labels - 1), min_size=1, max_size=n_labels)
        )
        entries[pair] = labels
    return n_items, n_workers, n_labels, entries


class TestAnswerMatrixProperties:
    @given(random_entries())
    @settings(max_examples=50, deadline=None)
    def test_export_roundtrip(self, spec):
        n_items, n_workers, n_labels, entries = spec
        matrix = AnswerMatrix.from_mapping(n_items, n_workers, n_labels, entries)
        assert matrix.n_answers == len(entries)
        items, workers, indicators = matrix.to_arrays()
        rebuilt = {
            (int(i), int(u)): frozenset(np.flatnonzero(x).tolist())
            for i, u, x in zip(items, workers, indicators)
        }
        assert rebuilt == {k: frozenset(v) for k, v in entries.items()}

    @given(random_entries())
    @settings(max_examples=30, deadline=None)
    def test_index_consistency(self, spec):
        n_items, n_workers, n_labels, entries = spec
        matrix = AnswerMatrix.from_mapping(n_items, n_workers, n_labels, entries)
        for item in matrix.answered_items():
            for worker in matrix.workers_for_item(item):
                assert matrix.get(item, worker) is not None
        total = sum(len(matrix.items_for_worker(u)) for u in matrix.active_workers())
        assert total == matrix.n_answers
