"""Tests for the replica-fleet serving layer (:mod:`repro.fleet`).

Router policy and health-machine tests are socket-free (the router
connects lazily); everything that talks to live daemons is
network-marked.  Thread-mode replicas are used for bitwise-parity
assertions (same ``CPAConfig`` object as the writer); process mode and
the CLI are exercised end to end over the wire.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.config import CPAConfig
from repro.data.answers import AnswerMatrix
from repro.data.streams import AnswerStream
from repro.errors import ConfigurationError, TransportError, ValidationError
from repro.fleet import FleetClient, FleetManager, FleetRouter, _build_parser
from repro.serve import ConsensusServer, ServeClient
from repro.utils.transport import LaneHealth

network = pytest.mark.network

SIZES = dict(n_items=48, n_workers=20, n_labels=8)


def _matrix(seed=0, per_item=4, **overrides):
    sizes = {**SIZES, **overrides}
    rng = np.random.default_rng(seed)
    matrix = AnswerMatrix(**sizes)
    for item in range(sizes["n_items"]):
        workers = rng.choice(sizes["n_workers"], size=per_item, replace=False)
        for worker in workers:
            labels = tuple(
                np.flatnonzero(rng.random(sizes["n_labels"]) < 0.3)
            ) or (0,)
            matrix.add(item, int(worker), labels)
    return matrix


def _config(**overrides):
    defaults = dict(seed=0, max_truncation=8, svi_batch_answers=40)
    defaults.update(overrides)
    return CPAConfig(**defaults)


def _batches(matrix, answers_per_batch=40, seed=7):
    return list(AnswerStream(matrix, seed=seed).by_answers(answers_per_batch))


def _manager(matrix, config=None, **kwargs):
    config = config or _config()
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("total_answers_hint", matrix.n_answers)
    return FleetManager(
        config, matrix.n_items, matrix.n_workers, matrix.n_labels, **kwargs
    )


def _assert_states_bitwise(a, b):
    for name in ("rho", "ups", "lam", "zeta", "kappa", "phi", "cell_mass"):
        np.testing.assert_array_equal(
            getattr(a, name), getattr(b, name), err_msg=name
        )
    if a.mu is not None:
        np.testing.assert_array_equal(a.mu, b.mu)
    assert a.batches_seen == b.batches_seen


# ------------------------------------------------------------ health machine


class TestLaneHealth:
    def test_transitions(self):
        health = LaneHealth(reconnects=2)
        assert health.live and health.state == "live"
        health.mark_suspect(123.0)
        assert health.suspect
        assert health.suspect_deadline == 123.0
        health.recover()
        assert health.live
        assert health.suspect_deadline == 0.0
        health.exclude()
        assert health.excluded

    def test_reconnect_budget(self):
        health = LaneHealth(reconnects=2)
        assert health.consume_reconnect()
        assert health.consume_reconnect()
        assert not health.consume_reconnect()
        assert health.reconnects_left == 0


# ------------------------------------------------------------------- router


ADDRS = ["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"]


class TestFleetRouter:
    def test_round_robin_cycles_live_replicas(self):
        router = FleetRouter(ADDRS, policy="round_robin")
        picks = [router.choose() for _ in range(6)]
        assert picks == ADDRS + ADDRS

    def test_round_robin_skips_excluded(self):
        router = FleetRouter(ADDRS, policy="round_robin")
        router._slot(ADDRS[1]).health.exclude()
        picks = {router.choose() for _ in range(4)}
        assert picks == {ADDRS[0], ADDRS[2]}

    def test_least_staleness_prefers_freshest(self):
        router = FleetRouter(ADDRS)
        router.note_status(ADDRS[0], {"answers_behind": 5, "snapshot_age_steps": 2})
        router.note_status(ADDRS[1], {"answers_behind": 0, "snapshot_age_steps": 9})
        router.note_status(ADDRS[2], {"answers_behind": 0, "snapshot_age_steps": 3})
        # behind wins first, snapshot age breaks the tie
        assert router.choose() == ADDRS[2]

    def test_least_staleness_unreported_sorts_last(self):
        router = FleetRouter(ADDRS[:2])
        router.note_status(
            ADDRS[1], {"answers_behind": 100, "snapshot_age_steps": 50}
        )
        assert router.choose() == ADDRS[1]

    def test_least_staleness_tie_breaks_on_registration_order(self):
        router = FleetRouter(ADDRS)
        for address in ADDRS:
            router.note_status(
                address, {"answers_behind": 0, "snapshot_age_steps": 0}
            )
        assert router.choose() == ADDRS[0]

    def test_no_live_replica_chooses_none(self):
        router = FleetRouter(ADDRS[:1], policy="round_robin")
        router._slot(ADDRS[0]).health.exclude()
        assert router.choose() is None

    def test_unknown_policy_refused(self):
        with pytest.raises(ConfigurationError, match="policy"):
            FleetRouter(ADDRS, policy="fastest")

    def test_unknown_replica_refused(self):
        router = FleetRouter(ADDRS[:1])
        with pytest.raises(ConfigurationError, match="no replica"):
            router.note_status("127.0.0.1:9999", {})

    @network
    def test_suspect_grace_then_exclusion(self):
        # nobody listens on these ports: the post-grace revive attempt is
        # refused and the replica leaves the rotation for good
        now = [0.0]
        router = FleetRouter(
            ADDRS[:2],
            policy="round_robin",
            reconnects=1,
            suspect_grace=5.0,
            clock=lambda: now[0],
        )
        router.mark_suspect(ADDRS[0])
        assert router.states()[ADDRS[0]] == "suspect"
        # within the grace window the suspect gets no queries
        assert {router.choose() for _ in range(3)} == {ADDRS[1]}
        now[0] = 6.0  # grace expired: revive fails (connection refused)
        router.choose()
        assert router.states()[ADDRS[0]] == "excluded"


class TestFleetManagerValidation:
    def test_unknown_replica_mode_refused(self):
        with pytest.raises(ConfigurationError, match="replica_mode"):
            _manager(_matrix(), replica_mode="fiber")

    def test_negative_replicas_refused(self):
        with pytest.raises(ConfigurationError, match="n_replicas"):
            _manager(_matrix(), n_replicas=-1)

    def test_refresh_before_start_refused(self):
        manager = _manager(_matrix(), n_replicas=1)
        with pytest.raises(ConfigurationError, match="not running"):
            manager.refresh_replicas()

    def test_parser_defaults(self):
        args = _build_parser().parse_args(
            ["--items", "10", "--workers", "5", "--labels", "3"]
        )
        assert args.replicas == 2
        assert args.replica_mode == "process"
        assert args.refresh_interval == 2.0


# ----------------------------------------------------------- thread fleets


@network
class TestFleetRefresh:
    def test_writer_replica_bitwise_parity_after_chunk_refresh(self):
        """The tentpole invariant: after a chunk-delta refresh every
        replica's posterior is bitwise identical to the writer's, and
        queries answered by replicas match the writer's exactly."""
        matrix = _matrix(seed=3, per_item=6)
        with _manager(matrix, n_replicas=2) as manager:
            with manager.client(policy="round_robin") as client:
                for batch in _batches(matrix):
                    client.ingest(batch)
                reports = manager.refresh_replicas()
                assert len(reports) == 2
                writer_state = manager.engine.engine.state
                for replica in manager._replicas:
                    _assert_states_bitwise(
                        writer_state, replica.server.engine.engine.state
                    )
                expected = manager.engine.predict()
                # both replicas answer (round robin) — all bitwise equal
                for _ in range(4):
                    assert client.predict() == expected
                w_items, w_probs = manager.engine.label_probabilities([0, 1])
                items, probs = client.label_probabilities([0, 1])
                assert items == w_items
                np.testing.assert_array_equal(probs, w_probs)

    def test_second_refresh_ships_chunk_delta(self):
        # wide item space so one small step leaves most chunks untouched
        matrix = _matrix(seed=6, n_items=2000, per_item=1)
        batches = _batches(matrix)
        with _manager(matrix, n_replicas=1) as manager:
            with manager.client() as client:
                for batch in batches[:4]:
                    client.ingest(batch)
                first = next(iter(manager.refresh_replicas().values()))
                assert first.n_shipped == first.n_chunks  # cold replica
                client.ingest(batches[4])
                second = next(iter(manager.refresh_replicas().values()))
                assert second.n_shipped < second.n_chunks
                assert 0.0 < second.delta_ratio < 1.0

    def test_refresh_marks_writer_snapshot_clock(self):
        """Only the fleet's refresh path resets snapshot_age_*; a
        read-only snapshot pull by a client does not (ISSUE 9 bugfix)."""
        matrix = _matrix(seed=4)
        with _manager(matrix, n_replicas=1) as manager:
            with ServeClient(manager.writer_address, timeout=30) as client:
                for batch in _batches(matrix)[:2]:
                    client.ingest(batch)
                age = manager.engine.metrics()["snapshot_age_steps"]
                assert age > 0
                client.snapshot()  # monitoring pull — must not reset
                assert manager.engine.metrics()["snapshot_age_steps"] == age
                manager.refresh_replicas()
                assert manager.engine.metrics()["snapshot_age_steps"] == 0

    def test_read_only_replica_refuses_writes(self):
        matrix = _matrix(seed=5)
        batches = _batches(matrix)
        with _manager(matrix, n_replicas=1) as manager:
            address = manager.replica_addresses()[0]
            with ServeClient(address, timeout=30) as client:
                with pytest.raises(ValidationError, match="read replica"):
                    client.ingest(batches[0])
                with pytest.raises(ValidationError, match="read replica"):
                    client.step()
                # reads and refreshes stay open
                assert client.status()["answers_seen"] == 0
                assert client.ping() == "pong"

    def test_background_snapshot_timer_refreshes_replicas(self):
        """The refresh-interval timer thread ships snapshots without any
        explicit refresh call (replacing on-demand-only snapshots)."""
        matrix = _matrix(seed=7)
        with _manager(matrix, n_replicas=2, refresh_interval=0.2) as manager:
            with manager.client(policy="round_robin") as client:
                for batch in _batches(matrix):
                    client.ingest(batch)
                writer_seen = manager.engine.metrics()["batches_seen"]
                assert writer_seen > 0
                deadline = time.monotonic() + 20.0
                while time.monotonic() < deadline:
                    status = client.status()
                    seen = [
                        m["batches_seen"] for m in status["replicas"].values()
                    ]
                    if len(seen) == 2 and all(s == writer_seen for s in seen):
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("timer never refreshed the replicas")
                assert manager.status()["refresh_count"] >= 1
                # the timer's refresh is the durable-capture path
                assert manager.engine.metrics()["snapshot_age_steps"] == 0

    def test_writer_growth_propagates_to_thread_replicas(self):
        matrix = _matrix(seed=8)
        with _manager(matrix, n_replicas=1) as manager:
            with manager.client() as client:
                for batch in _batches(matrix)[:2]:
                    client.ingest(batch)
                wider = _matrix(
                    seed=9,
                    n_items=SIZES["n_items"] + 6,
                    n_labels=SIZES["n_labels"] + 1,
                    per_item=2,
                )
                client.ingest(_batches(wider, answers_per_batch=30)[0])
                manager.refresh_replicas()
                replica = manager._replicas[0].server.engine
                assert replica.engine.n_items == SIZES["n_items"] + 6
                assert replica.engine.n_labels == SIZES["n_labels"] + 1
                assert client.predict() == manager.engine.predict()


# --------------------------------------------------------------- failover


@network
class TestFleetFailover:
    def test_replica_kill_mid_stream_answers_unchanged(self):
        """Kill a replica mid-query-stream: the router excludes it and
        re-routes; every answer stays bitwise identical (all replicas
        serve the same shipped snapshot)."""
        matrix = _matrix(seed=10, per_item=6)
        with _manager(matrix, n_replicas=3) as manager:
            with manager.client(policy="round_robin", timeout=10) as client:
                for batch in _batches(matrix):
                    client.ingest(batch)
                manager.refresh_replicas()
                expected = manager.engine.predict()
                e_items, e_probs = manager.engine.label_probabilities([0, 1, 2])
                answers = [client.predict()]
                manager._replicas[1].server.kill()  # hard kill mid-stream
                for _ in range(8):
                    answers.append(client.predict())
                    items, probs = client.label_probabilities([0, 1, 2])
                    assert items == e_items
                    np.testing.assert_array_equal(probs, e_probs)
                assert all(answer == expected for answer in answers)
                states = client.router.states()
                killed = manager._replicas[1].address
                assert states[killed] == "excluded"
                live = [a for a, s in states.items() if s == "live"]
                assert len(live) == 2

    def test_replica_hang_mid_stream_answers_unchanged(self):
        """A replica that *hangs* (accepts the query, never answers) is
        marked suspect on the query deadline and the query re-routes;
        the answer is bitwise identical."""
        matrix = _matrix(seed=11, per_item=6)
        config = _config()
        writer = None
        staller = None
        healthy = None
        gate = threading.Event()

        class _StallingServer(ConsensusServer):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self._stalled_once = False

            def handle(self, message):
                if (
                    isinstance(message, tuple)
                    and message
                    and message[0] == "predict"
                    and not self._stalled_once
                ):
                    self._stalled_once = True
                    gate.wait(timeout=60.0)
                return super().handle(message)

        def _engine():
            from repro.serve import ConsensusEngine

            return ConsensusEngine(
                config,
                matrix.n_items,
                matrix.n_workers,
                matrix.n_labels,
                seed=0,
                total_answers_hint=matrix.n_answers,
            )

        try:
            writer = ConsensusServer(_engine()).serve_in_thread()
            staller = _StallingServer(
                _engine(), auto_step=False, read_only=True
            ).serve_in_thread()
            healthy = ConsensusServer(
                _engine(), auto_step=False, read_only=True
            ).serve_in_thread()
            with ServeClient(writer.address, timeout=30) as feed:
                for batch in _batches(matrix):
                    feed.ingest(batch)
                blob_payload = writer.engine.snapshot_payload()
                expected = writer.engine.predict()
                for replica in (staller, healthy):
                    with ServeClient(replica.address, timeout=30) as target:
                        target.restore(blob_payload)
            client = FleetClient(
                writer.address,
                [staller.address, healthy.address],
                policy="round_robin",
                timeout=1.0,
                suspect_grace=60.0,
            )
            try:
                # round robin sends the first query to the staller: it
                # times out, turns suspect, and the query re-routes
                assert client.predict() == expected
                states = client.router.states()
                assert states[client.router._slots[0].address] == "suspect"
                # the suspect gets no further queries inside the grace
                for _ in range(3):
                    assert client.predict() == expected
            finally:
                gate.set()
                client.close()
        finally:
            for server in (writer, staller, healthy):
                if server is not None:
                    server.kill()

    def test_all_replicas_dead_falls_back_to_writer(self):
        matrix = _matrix(seed=12)
        with _manager(matrix, n_replicas=1) as manager:
            with manager.client(policy="round_robin", timeout=10) as client:
                for batch in _batches(matrix):
                    client.ingest(batch)
                manager.refresh_replicas()
                expected = manager.engine.predict()
                manager._replicas[0].server.kill()
                assert client.predict() == expected  # served by the writer
                assert set(client.router.states().values()) == {"excluded"}

    def test_fallback_disabled_raises_loudly(self):
        matrix = _matrix(seed=13)
        with _manager(matrix, n_replicas=1) as manager:
            client = manager.client(
                policy="round_robin", timeout=10, fallback_to_writer=False
            )
            try:
                for batch in _batches(matrix)[:1]:
                    client.ingest(batch)
                manager._replicas[0].server.kill()
                with pytest.raises(TransportError, match="no live read replica"):
                    client.predict()
            finally:
                client.close()


# -------------------------------------------------------- process mode + CLI


@network
class TestFleetProcessMode:
    def test_process_replicas_serve_bitwise_queries(self):
        # process replicas rebuild CPAConfig from CLI-expressible fields
        matrix = _matrix(seed=14, per_item=5)
        config = CPAConfig(seed=0, svi_batch_answers=40)
        with _manager(
            matrix, config=config, n_replicas=2, replica_mode="process"
        ) as manager:
            with manager.client(policy="least_staleness") as client:
                for batch in _batches(matrix):
                    client.ingest(batch)
                reports = manager.refresh_replicas()
                assert len(reports) == 2
                assert client.predict() == manager.engine.predict()
                w_items, w_probs = manager.engine.label_probabilities([0, 1])
                items, probs = client.label_probabilities([0, 1])
                assert items == w_items
                np.testing.assert_array_equal(probs, w_probs)


@network
class TestFleetCLI:
    def test_fleet_cli_end_to_end(self, tmp_path):
        port_file = tmp_path / "ports"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.fleet",
                "--items",
                str(SIZES["n_items"]),
                "--workers",
                str(SIZES["n_workers"]),
                "--labels",
                str(SIZES["n_labels"]),
                "--replicas",
                "2",
                "--replica-mode",
                "thread",
                "--refresh-interval",
                "0.2",
                "--step-answers",
                "40",
                "--port-file",
                str(port_file),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if port_file.exists() and port_file.stat().st_size > 0:
                    break
                assert proc.poll() is None, proc.stdout.read().decode()
                time.sleep(0.05)
            addresses = port_file.read_text().split()
            assert len(addresses) == 3  # writer + 2 replicas

            matrix = _matrix(seed=15)
            with FleetClient(
                addresses[0], addresses[1:], policy="round_robin", timeout=30
            ) as client:
                for batch in _batches(matrix):
                    client.ingest(batch)
                status = client.status()
                writer_seen = status["writer"]["batches_seen"]
                assert writer_seen > 0
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    status = client.status()
                    seen = [
                        m["batches_seen"] for m in status["replicas"].values()
                    ]
                    if len(seen) == 2 and all(s == writer_seen for s in seen):
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("CLI fleet timer never refreshed replicas")
                client.predict([0, 1])
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


# ---------------------------------------------------- lock-hold discipline


@network
class TestLockHoldDiscipline:
    """Regression tests for the R7 findings this PR fixed: the slow
    lifecycle paths (replica launch, snapshot shipping, teardown) must
    run with the state lock *released* — on the pre-PR code each spy
    below observes ``_lock`` held and the assertion fails."""

    def test_start_launches_replicas_outside_state_lock(self, monkeypatch):
        held = []
        original = FleetManager._launch_replica

        def spy(self, replica):
            held.append(self._lock.locked())
            return original(self, replica)

        monkeypatch.setattr(FleetManager, "_launch_replica", spy)
        manager = _manager(_matrix(), n_replicas=1)
        try:
            manager.start()
        finally:
            manager.close()
        assert held == [False]

    def test_refresh_ships_outside_state_lock(self, monkeypatch):
        held = []
        original = FleetManager._ship

        def spy(self, replica, blob):
            held.append(self._lock.locked())
            return original(self, replica, blob)

        monkeypatch.setattr(FleetManager, "_ship", spy)
        matrix = _matrix(seed=11)
        with _manager(matrix, n_replicas=1) as manager:
            with manager.client() as client:
                client.ingest(_batches(matrix)[0])
            manager.refresh_replicas()
        assert held == [False]

    def test_close_tears_down_outside_state_lock(self):
        manager = _manager(_matrix(), n_replicas=1).start()
        held = []
        replica = manager._replicas[0]
        original_close = replica.server.close

        def spy():
            held.append(manager._lock.locked())
            return original_close()

        replica.server.close = spy
        manager.close()
        assert held == [False]

    def test_refresh_and_status_do_not_serialize_on_state_lock(self):
        """A refresh stalled mid-ship must not block status(): the
        pre-PR code held ``_lock`` across the ship, so this pattern
        deadlocked status queries for the full ship duration."""
        matrix = _matrix(seed=12)
        with _manager(matrix, n_replicas=1) as manager:
            with manager.client() as client:
                client.ingest(_batches(matrix)[0])
            entered = threading.Event()
            release = threading.Event()
            original = FleetManager._ship

            def stalled(self, replica, blob):
                entered.set()
                assert release.wait(timeout=30.0)
                return original(self, replica, blob)

            FleetManager._ship = stalled
            try:
                refresher = threading.Thread(
                    target=manager.refresh_replicas, daemon=True
                )
                refresher.start()
                assert entered.wait(timeout=30.0)
                # status must answer while the ship is in flight
                done = threading.Event()
                result = {}

                def query():
                    result["status"] = manager.status()
                    done.set()

                threading.Thread(target=query, daemon=True).start()
                assert done.wait(timeout=5.0), (
                    "status() blocked behind an in-flight refresh"
                )
                assert "writer" in result["status"]
            finally:
                release.set()
                FleetManager._ship = original
                refresher.join(timeout=30.0)
