"""Shard-local truncation adaptation (DESIGN.md §6 "Shard-local truncation").

Contracts under test:

* **Clamp contract** (regression, issue bugfix 1):
  ``CPAConfig.resolve_truncations`` never returns a truncation exceeding
  the space it truncates; tiny (1-element) and empty spaces resolve to
  one component, and a 1-item/1-worker dataset runs inference
  end-to-end.  The seed implementation clamped in the wrong order
  (``max(2, min(t, n))``) and returned ``(2, 2)`` for such datasets.
* **Shard-count cap** (regression, issue bugfix 2): a requested shard
  count is capped by the number of *answered* items wherever a concrete
  matrix is in hand, and the realised count (``kernel.n_shards``) is
  what consumers see.
* **Parity when not binding**: with adaptive truncation armed but no
  shard's ``T_s`` below the global ``T``, every path — both engines,
  ``K ∈ {1, 2, 7}``, serial/process/remote executors, resident and
  ship-per-task transports — is bitwise identical to the
  global-truncation path.
* **Wide-sparse property**: on a wide-but-sparse matrix the ``"auto"``
  gate engages, per-shard truncations bind (``T_s < T``), the per-shard
  sufficient statistics shrink, ``ϕ`` carries exactly zero mass outside
  its windows, the ELBO stays monotone (the windowed updates are exact
  coordinate ascent within the constrained family), sharded runs stay
  bitwise deterministic across executors, and consensus metrics match
  the global-truncation run.
"""

import contextlib
import warnings

import numpy as np
import pytest

from repro.core.config import CPAConfig, clamp_truncation
from repro.core.inference import VariationalInference
from repro.core.kernels import (
    ADAPTIVE_MIN_ITEMS,
    adaptive_pays_off,
    auto_shard_count,
    mask_cluster_scores,
    truncate_rows,
)
from repro.core.model import CPAModel
from repro.core.sharding import ShardedSweepKernel, build_sweep_kernel
from repro.core.svi import StochasticInference, stream_from_matrix
from repro.data.answers import AnswerMatrix
from repro.data.dataset import GroundTruth
from repro.errors import ConfigurationError
from repro.utils.parallel import make_executor

from tests.test_sharded import _assert_states_close
from tests.transport_harness import worker_fleet

BITWISE = dict(atol=0, rtol=0)


@contextlib.contextmanager
def _pool(kind, degree=2):
    if kind == "remote":
        with worker_fleet(degree) as servers:
            executor = make_executor(
                "remote", workers=[server.address for server in servers]
            )
            try:
                yield executor
            finally:
                executor.close()
    else:
        with make_executor(kind, degree) as executor:
            yield executor


def _dense_matrix(seed=1, n_items=40, n_workers=20, n_labels=6, per_item=8):
    """A dense matrix (many answers per item, diverse patterns)."""
    rng = np.random.default_rng(seed)
    matrix = AnswerMatrix(n_items, n_workers, n_labels)
    for item in range(n_items):
        for worker in rng.choice(n_workers, size=per_item, replace=False):
            labels = tuple(np.flatnonzero(rng.random(n_labels) < 0.4)) or (0,)
            matrix.add(int(item), int(worker), labels)
    return matrix


THEMES = [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]


def _wide_sparse_matrix(seed=0, n_items=900, n_workers=60, n_labels=10,
                        answers_per_item=2):
    """Wide-but-sparse themed matrix with ground truth.

    Items belong to one of a handful of label themes; each gets only a
    couple of (sometimes partial) answers — the many-candidate regime of
    the partial-preference papers, where per-shard item profiles are
    poor and the shard truncation rule binds.
    """
    rng = np.random.default_rng(seed)
    matrix = AnswerMatrix(n_items, n_workers, n_labels)
    truth = GroundTruth(n_items, n_labels)
    for item in range(n_items):
        theme = THEMES[item % len(THEMES)]
        truth.set(item, theme)
        for worker in rng.choice(n_workers, size=answers_per_item, replace=False):
            if rng.random() < 0.75:
                answer = theme  # full agreement
            else:
                answer = (theme[int(rng.integers(2))],)  # partial answer
            matrix.add(item, int(worker), answer)
    return matrix, truth


# ------------------------------------------------------------- clamp contract


class TestTruncationClamp:
    def test_clamp_never_exceeds_space(self):
        for t in (0, 1, 2, 5, 1000):
            for space in (0, 1, 2, 3, 7, 100):
                clamped = clamp_truncation(t, space)
                assert clamped <= max(space, 1)
                assert clamped >= 1

    def test_clamp_keeps_floor_of_two_for_real_spaces(self):
        assert clamp_truncation(0, 10) == 2
        assert clamp_truncation(1, 10) == 2
        assert clamp_truncation(7, 10) == 7
        assert clamp_truncation(70, 10) == 10

    def test_degenerate_spaces_resolve_to_one_component(self):
        """Regression: the seed clamp returned (2, 2) for 1-element and
        empty spaces — a truncation larger than the space itself."""
        config = CPAConfig()
        assert config.resolve_truncations(1, 1) == (1, 1)
        assert config.resolve_truncations(0, 0) == (1, 1)
        assert config.resolve_truncations(1, 50) == (1, 14)
        assert config.resolve_truncations(50, 1) == (14, 1)

    def test_explicit_truncations_are_clamped_too(self):
        config = CPAConfig(truncation_clusters=50, truncation_communities=50)
        assert config.resolve_truncations(3, 4) == (3, 4)
        assert config.resolve_truncations(1, 0) == (1, 1)

    def test_one_item_one_worker_runs_end_to_end(self):
        matrix = AnswerMatrix(1, 1, 3)
        matrix.add(0, 0, (1,))
        engine = VariationalInference(CPAConfig(seed=0, max_iterations=4), matrix)
        assert engine.state.n_clusters == 1
        assert engine.state.n_communities == 1
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            engine.run(track_elbo=True)
        engine.state.validate()
        np.testing.assert_allclose(engine.state.phi, [[1.0]])


# ----------------------------------------------------------- shard-count caps


class TestShardCountCaps:
    def test_resolve_shards_capped_by_answered_items(self):
        config = CPAConfig(backend="sharded", n_shards=64)
        assert config.resolve_shards(4) == 64  # no matrix in hand: honoured
        assert config.resolve_shards(4, n_items=3) == 3
        assert CPAConfig(backend="sharded").resolve_shards(8, n_items=2) == 2

    def test_auto_shard_count_capped_by_answered_items(self):
        assert auto_shard_count(30_000_000, degree=32) == 32
        assert auto_shard_count(30_000_000, degree=32, n_items=5) == 5
        assert auto_shard_count(200_000, degree=1, n_items=2) == 2

    def test_resolve_backend_caps_all_modes(self):
        explicit = CPAConfig(backend="sharded", n_shards=64)
        assert explicit.resolve_backend(10, 1, n_items=3) == ("sharded", 3)
        auto = CPAConfig(backend="auto")
        assert auto.resolve_backend(200_000, 8, n_items=2) == ("sharded", 2)
        pinned = CPAConfig(backend="auto", n_shards=6)
        assert pinned.resolve_backend(200_000, 1, n_items=4) == ("sharded", 4)

    def test_factory_realises_at_most_answered_items(self):
        """64 requested shards over 3 answered items realise 3 shards,
        and the kernel reports the realised count."""
        rng = np.random.default_rng(3)
        n = 30
        items = rng.integers(0, 3, size=n)  # only items {0, 1, 2} answered
        workers = rng.integers(0, 10, size=n)
        x = np.zeros((n, 4))
        x[np.arange(n), rng.integers(0, 4, size=n)] = 1.0
        kernel = build_sweep_kernel(
            CPAConfig(backend="sharded", n_shards=64),
            items, workers, x, n_items=100, n_workers=10,
        )
        assert isinstance(kernel, ShardedSweepKernel)
        assert kernel.n_shards <= 3
        assert kernel.n_shards == kernel.plan.n_shards

    def test_svi_batch_kernel_capped_by_batch_items(self, tiny_dataset):
        config = CPAConfig(seed=0, svi_iterations=1, backend="sharded", n_shards=500)
        sizes = (tiny_dataset.n_items, tiny_dataset.n_workers, tiny_dataset.n_labels)
        engine = StochasticInference(config, *sizes)
        batch = stream_from_matrix(tiny_dataset.answers, answers_per_batch=40, seed=7)[0]
        engine.process_batch(batch)
        assert engine._batch_kernel_cache is not None
        kernel = engine._batch_kernel_cache[1]
        assert kernel.n_shards <= np.unique(batch.matrix.to_arrays()[0]).size


# ------------------------------------------------------------------ knob/gate


class TestKnobAndGate:
    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="adaptive_truncation"):
            CPAConfig(adaptive_truncation="sometimes")

    def test_auto_gate_is_wide_and_sparse_only(self):
        assert adaptive_pays_off(ADAPTIVE_MIN_ITEMS, ADAPTIVE_MIN_ITEMS * 2)
        assert not adaptive_pays_off(ADAPTIVE_MIN_ITEMS - 1, 10)  # not wide
        assert not adaptive_pays_off(10_000, 100_000)  # not sparse
        config = CPAConfig()
        assert config.resolve_adaptive_truncation(100_000, 150_000)
        assert not config.resolve_adaptive_truncation(60, 300)
        assert CPAConfig(adaptive_truncation="on").resolve_adaptive_truncation(2, 2)
        assert not CPAConfig(adaptive_truncation="off").resolve_adaptive_truncation(
            10**6, 10**6
        )

    def test_shard_truncation_rule_shares_clamp(self):
        config = CPAConfig()
        assert config.shard_truncation(4, 100) == 3  # 4 // 4 + 2
        assert config.shard_truncation(1000, 100) == 40  # max_truncation cap
        assert config.shard_truncation(1000, 1) == 1  # space clamp
        assert config.shard_truncation(0, 0) == 1  # empty shard contract

    def test_fused_kernel_has_no_limits(self):
        matrix = _dense_matrix()
        engine = VariationalInference(
            CPAConfig(seed=0, adaptive_truncation="on"), matrix
        )
        assert engine.kernel.cluster_limits(engine.state.n_clusters) is None

    def test_auto_gate_disengages_on_dense_small_matrices(self, tiny_dataset):
        """60 dense items: "auto" must not even arm the shard rule."""
        config = CPAConfig(seed=2, backend="sharded", n_shards=3)
        engine = VariationalInference(config, tiny_dataset.answers)
        assert not engine.kernel.adaptive
        assert all(s.t_limit is None for s in engine.kernel.plan.shards)
        assert engine.kernel.cluster_limits(engine.state.n_clusters) is None


# ------------------------------------------------------------ window helpers


class TestWindowHelpers:
    def test_mask_leaves_full_windows_untouched(self):
        scores = np.arange(12.0).reshape(3, 4)
        before = scores.copy()
        out = mask_cluster_scores(scores, np.array([4, 5, 4]))
        np.testing.assert_array_equal(out, before)

    def test_mask_then_truncate_gives_exact_zero_mass(self):
        from repro.utils.math import log_normalize_rows

        scores = np.array([[0.0, -3.0, 5.0], [1.0, 2.0, 3.0]])
        limits = np.array([2, 3])
        mask_cluster_scores(scores, limits)
        assert np.isfinite(scores).all()  # -inf would poison the SVI µ path
        probs = log_normalize_rows(scores)
        # the mask alone leaves at most exp(-margin) leak...
        assert 0.0 <= probs[0, 2] <= 2e-28
        # ...and the engines' projection removes it exactly
        probs = truncate_rows(probs, limits)
        assert probs[0, 2] == 0.0
        np.testing.assert_allclose(probs[0, :2].sum(), 1.0)
        np.testing.assert_allclose(probs[1], log_normalize_rows(scores[1:2])[0])

    def test_truncate_rows_is_exact_conditioning(self):
        probs = np.array([[0.2, 0.3, 0.5], [0.25, 0.25, 0.5]])
        out = truncate_rows(probs, np.array([2, 3]))
        np.testing.assert_allclose(out[0], [0.4, 0.6, 0.0])
        np.testing.assert_allclose(out[1], probs[1])

    def test_truncate_rows_empty_window_mass_goes_uniform(self):
        probs = np.array([[0.0, 0.0, 1.0]])
        out = truncate_rows(probs, np.array([2]))
        np.testing.assert_allclose(out, [[0.5, 0.5, 0.0]])


# -------------------------------------------------- parity when not binding
#
# adaptive="on" with a small explicit global truncation: every shard's
# profile-sized limit sits at or above T, so the windows never bind and
# the path must be *bitwise* the global-truncation one.  (The "auto"
# parity case is free: the gate itself disengages on dense matrices —
# TestKnobAndGate — leaving the seed path untouched.)

NON_BINDING = dict(truncation_clusters=3, backend="sharded")
SHARD_COUNTS = [1, 2, 7]


def _engine_pair(matrix, n_shards, seed=2, executor_a=None, executor_b=None,
                 resident=True):
    base = CPAConfig(
        seed=seed, n_shards=n_shards, resident_shards=resident, **NON_BINDING
    )
    off = VariationalInference(
        base.with_overrides(adaptive_truncation="off"), matrix, executor=executor_a
    )
    on = VariationalInference(
        base.with_overrides(adaptive_truncation="on"), matrix, executor=executor_b
    )
    # precondition: the rule armed real limits, none of which bind
    assert on.kernel.adaptive
    assert all(s.t_limit is not None for s in on.kernel.plan.shards)
    assert not on.kernel._binding(on.state.n_clusters)
    return off, on


class TestNonBindingParity:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_batch_vi_bitwise_serial(self, n_shards):
        matrix = _dense_matrix()
        off, on = _engine_pair(matrix, n_shards)
        for _ in range(4):
            assert off.sweep() == on.sweep()
            _assert_states_close(off.state, on.state, BITWISE)
        assert off.elbo() == on.elbo()

    @pytest.mark.parametrize(
        "kind",
        ["process", pytest.param("remote", marks=pytest.mark.network)],
    )
    @pytest.mark.parametrize("resident", [True, False])
    def test_batch_vi_bitwise_executors_and_transports(self, kind, resident):
        matrix = _dense_matrix()
        with _pool(kind) as pool_a, _pool(kind) as pool_b:
            off, on = _engine_pair(
                matrix, 2, executor_a=pool_a, executor_b=pool_b, resident=resident
            )
            for _ in range(3):
                assert off.sweep() == on.sweep()
                _assert_states_close(off.state, on.state, BITWISE)

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_svi_stream_bitwise(self, n_shards):
        matrix = _dense_matrix(seed=4)
        sizes = (matrix.n_items, matrix.n_workers, matrix.n_labels)
        base = CPAConfig(
            seed=3, svi_iterations=2, n_shards=n_shards,
            adaptive_truncation="on", **NON_BINDING
        )
        on = StochasticInference(base, *sizes)
        off = StochasticInference(
            base.with_overrides(adaptive_truncation="off"), *sizes
        )
        # 120-answer batches keep every shard's profile count above the
        # T=3 truncation at K=7 (smaller batches make the shard rule
        # bind, which is TestWideSparseBinding's scenario, not this one)
        for batch in stream_from_matrix(matrix, answers_per_batch=120, seed=5):
            off.process_batch(batch)
            on.process_batch(batch)
        _assert_states_close(off.state, on.state, BITWISE)

    @pytest.mark.parametrize(
        "kind",
        ["process", pytest.param("remote", marks=pytest.mark.network)],
    )
    def test_svi_stream_bitwise_parallel(self, kind):
        matrix = _dense_matrix(seed=6)
        sizes = (matrix.n_items, matrix.n_workers, matrix.n_labels)
        base = CPAConfig(
            seed=5, svi_iterations=1, n_shards=2, **NON_BINDING
        )
        with _pool(kind) as pool_a, _pool(kind) as pool_b:
            off = StochasticInference(
                base.with_overrides(adaptive_truncation="off"), *sizes,
                executor=pool_a,
            )
            on = StochasticInference(
                base.with_overrides(adaptive_truncation="on"), *sizes,
                executor=pool_b,
            )
            for batch in stream_from_matrix(matrix, answers_per_batch=80, seed=6):
                off.process_batch(batch)
                on.process_batch(batch)
        _assert_states_close(off.state, on.state, BITWISE)


# --------------------------------------------------------- binding wide/sparse


def _binding_engine(matrix, executor=None, **overrides):
    config = CPAConfig(
        seed=0, backend="sharded", n_shards=4, max_iterations=8, **overrides
    )
    engine = VariationalInference(config, matrix, executor=executor)
    return engine


class TestWideSparseBinding:
    def test_auto_gate_engages_and_limits_bind(self):
        matrix, _ = _wide_sparse_matrix()
        engine = _binding_engine(matrix)  # adaptive_truncation left at "auto"
        kernel, t = engine.kernel, engine.state.n_clusters
        assert kernel.adaptive
        shard_ts = kernel._shard_ts(t)
        assert all(t_s >= 1 for t_s in shard_ts)
        assert any(t_s < t for t_s in shard_ts), "rule must bind on wide/sparse"
        limits = kernel.cluster_limits(t)
        assert limits is not None and limits.shape == (matrix.n_items,)
        # per-shard sufficient statistics shrink vs the global truncation
        assert sum(shard_ts) < kernel.n_shards * t

    def test_phi_stays_exactly_zero_outside_windows(self):
        matrix, _ = _wide_sparse_matrix()
        engine = _binding_engine(matrix)
        kernel, t = engine.kernel, engine.state.n_clusters
        for _ in range(4):
            engine.sweep()
            for shard, t_s in zip(kernel.plan.shards, kernel._shard_ts(t)):
                if t_s < t:
                    assert np.all(engine.state.phi[shard.item_ids][:, t_s:] == 0.0)
        engine.state.validate()

    def test_elbo_monotone_under_binding_truncation(self):
        """The windowed updates are exact coordinate ascent within the
        constrained family, so the ELBO must still never decrease."""
        matrix, _ = _wide_sparse_matrix(seed=3)
        engine = _binding_engine(matrix)
        values = []
        for _ in range(6):
            engine.sweep()
            values.append(engine.elbo())
        assert all(b >= a - 1e-7 for a, b in zip(values, values[1:])), values

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_binding_runs_bitwise_deterministic_across_executors(self, kind):
        matrix, _ = _wide_sparse_matrix(seed=5, n_items=600, n_workers=40)
        serial = _binding_engine(matrix)
        with _pool(kind) as pool:
            parallel = _binding_engine(matrix, executor=pool)
            for _ in range(3):
                assert serial.sweep() == parallel.sweep()
            _assert_states_close(serial.state, parallel.state, BITWISE)

    def test_consensus_metrics_unchanged_vs_global_truncation(self):
        matrix, truth = _wide_sparse_matrix(seed=7)

        def jaccard(model):
            predictions = model.predict()
            scores = []
            for item, labels in predictions.items():
                true = truth.get(item)
                if true is None or not (labels or true):
                    continue
                scores.append(len(labels & true) / len(labels | true))
            return float(np.mean(scores))

        config = CPAConfig(seed=1, backend="sharded", n_shards=4, max_iterations=20)
        adaptive = CPAModel(config).fit(matrix)
        global_t = CPAModel(
            config.with_overrides(adaptive_truncation="off")
        ).fit(matrix)
        score_adaptive, score_global = jaccard(adaptive), jaccard(global_t)
        # themed wide-sparse data is easy: both runs must solve it, and
        # truncation must not cost consensus quality
        assert score_global >= 0.8
        assert score_adaptive >= score_global - 0.03

    def test_svi_windowed_statistics_condition_rather_than_drop_mass(self):
        """Regression: a ϕ with mass leaked outside this batch's shard
        windows (the µ-synced commit always leaks) must be *conditioned*
        on the windows, not silently truncated — the Eq. 6 cell mass must
        still total one unit per answer."""
        from repro.core.svi import _prepare_batch

        matrix, _ = _wide_sparse_matrix(seed=11)
        sizes = (matrix.n_items, matrix.n_workers, matrix.n_labels)
        config = CPAConfig(seed=3, svi_iterations=1, backend="sharded", n_shards=4)
        engine = StochasticInference(config, *sizes)
        batch = stream_from_matrix(matrix, answers_per_batch=2000, seed=4)[0]
        data = _prepare_batch(batch, config.resolve_dtype())
        rng = np.random.default_rng(0)
        t, m = engine.state.n_clusters, engine.state.n_communities
        phi = rng.dirichlet(np.ones(t), size=data.batch_items.size)  # leaky
        kappa = rng.dirichlet(np.ones(m), size=data.batch_workers.size)
        counts, mass = engine._batch_cell_statistics(data, phi, kappa)
        kernel = engine._batch_kernel_cache[1]
        assert kernel.cluster_limits(t) is not None  # windows really bind
        np.testing.assert_allclose(float(mass.sum()), data.items.size, rtol=1e-9)
        np.testing.assert_allclose(
            float(counts.sum()), float(data.indicators.sum()), rtol=1e-9
        )

    def test_svi_bulk_stream_binds_and_stays_finite(self):
        matrix, _ = _wide_sparse_matrix(seed=9)
        sizes = (matrix.n_items, matrix.n_workers, matrix.n_labels)
        config = CPAConfig(
            seed=2, svi_iterations=2, backend="sharded", n_shards=4
        )
        engine = StochasticInference(config, *sizes)
        bound = False
        for batch in stream_from_matrix(matrix, answers_per_batch=1200, seed=3):
            engine.process_batch(batch)
            cache = engine._batch_kernel_cache
            if cache is not None and cache[1].cluster_limits(
                engine.state.n_clusters
            ) is not None:
                bound = True
        assert bound, "bulk wide/sparse batches must engage adaptation"
        assert np.isfinite(engine.state.mu).all()
        engine.state.validate()
