"""Property-based tests on end-to-end inference invariants.

Hypothesis generates small random crowdsourcing instances; the properties
assert structural invariants that must hold for *any* input: state
validity, ELBO finiteness and monotonicity, prediction domain correctness,
and serialisation round-trips through the full public API.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import CPAConfig
from repro.core.consensus import estimate_consensus
from repro.core.inference import VariationalInference
from repro.core.model import CPAModel
from repro.data.answers import AnswerMatrix
from repro.data.loaders import dataset_from_dict, dataset_to_dict
from repro.data.dataset import CrowdDataset, GroundTruth


@st.composite
def crowd_instance(draw):
    """A random small answer matrix with at least one answer per item."""
    n_items = draw(st.integers(4, 10))
    n_workers = draw(st.integers(3, 8))
    n_labels = draw(st.integers(3, 8))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    matrix = AnswerMatrix(n_items, n_workers, n_labels)
    for item in range(n_items):
        k = int(rng.integers(1, min(4, n_workers) + 1))
        workers = rng.choice(n_workers, size=k, replace=False)
        for worker in workers:
            size = int(rng.integers(1, min(3, n_labels) + 1))
            labels = rng.choice(n_labels, size=size, replace=False)
            matrix.add(item, int(worker), [int(l) for l in labels])
    return matrix


SMALL_CONFIG = dict(max_iterations=4, tolerance=1e-3, max_truncation=6)


class TestInferenceProperties:
    @given(crowd_instance(), st.integers(0, 1000))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_state_always_valid_and_elbo_monotone(self, matrix, seed):
        engine = VariationalInference(
            CPAConfig(seed=seed, **SMALL_CONFIG), matrix
        )
        previous = engine.elbo()
        assert np.isfinite(previous)
        for _ in range(3):
            engine.sweep()
            engine.state.validate()
            current = engine.elbo()
            assert current >= previous - 1e-6
            previous = current

    @given(crowd_instance(), st.integers(0, 1000))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_predictions_always_in_domain(self, matrix, seed):
        model = CPAModel(CPAConfig(seed=seed, **SMALL_CONFIG)).fit(matrix)
        predictions = model.predict()
        assert set(predictions) == set(matrix.answered_items())
        for labels in predictions.values():
            assert all(0 <= label < matrix.n_labels for label in labels)

    @given(crowd_instance())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_consensus_always_proper(self, matrix):
        engine = VariationalInference(CPAConfig(seed=0, **SMALL_CONFIG), matrix)
        result = engine.run(track_elbo=False)
        consensus = estimate_consensus(result.state, engine.config, matrix)
        assert np.all(consensus.inclusion > 0)
        assert np.all(consensus.inclusion < 1)
        assert np.all(consensus.community_weights >= 0)
        np.testing.assert_allclose(consensus.cluster_weights.sum(), 1.0, atol=1e-9)
        rates = consensus.label_rates
        assert rates is not None
        for array in (rates.sensitivity, rates.false_rate):
            assert np.all(array > 0) and np.all(array < 1)

    @given(crowd_instance(), st.integers(0, 100))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_seed_determinism_of_full_pipeline(self, matrix, seed):
        a = CPAModel(CPAConfig(seed=seed, **SMALL_CONFIG)).fit(matrix).predict()
        b = CPAModel(CPAConfig(seed=seed, **SMALL_CONFIG)).fit(matrix).predict()
        assert a == b


class TestSerialisationProperties:
    @given(crowd_instance())
    @settings(max_examples=20, deadline=None)
    def test_dataset_roundtrip_preserves_everything(self, matrix):
        truth = GroundTruth(matrix.n_items, matrix.n_labels)
        for item in range(0, matrix.n_items, 2):
            truth.set(item, {item % matrix.n_labels})
        dataset = CrowdDataset(name="prop", answers=matrix, truth=truth)
        rebuilt = dataset_from_dict(dataset_to_dict(dataset))
        assert rebuilt.n_answers == dataset.n_answers
        for answer in dataset.answers.iter_answers():
            assert rebuilt.answers.get(answer.item, answer.worker) == answer.labels
        assert rebuilt.truth.known_items() == truth.known_items()


class TestMetricProperties:
    @given(crowd_instance(), st.integers(0, 50))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_perfect_prediction_scores_one(self, matrix, seed):
        from repro.evaluation.metrics import evaluate_predictions

        rng = np.random.default_rng(seed)
        truth = GroundTruth(matrix.n_items, matrix.n_labels)
        for item in range(matrix.n_items):
            size = int(rng.integers(1, matrix.n_labels + 1))
            truth.set(item, rng.choice(matrix.n_labels, size=size, replace=False))
        oracle = {item: truth.get(item) for item in range(matrix.n_items)}
        result = evaluate_predictions(oracle, truth)
        assert result.precision == pytest.approx(1.0)
        assert result.recall == pytest.approx(1.0)
