"""Property-based tests on end-to-end inference invariants.

Hypothesis generates small random crowdsourcing instances; the properties
assert structural invariants that must hold for *any* input: state
validity, ELBO finiteness and monotonicity, prediction domain correctness,
serialisation round-trips through the full public API, and — for the
sharded backend — the symmetry properties the model is supposed to have:
answer order, worker labels, and item labels carry no information, so
permuting them must leave consensus output invariant (equivariant for
the labelled quantities), and shard merges must be associative and
commutative on arbitrary sufficient-statistic fragments.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import CPAConfig
from repro.core.consensus import estimate_consensus
from repro.core.inference import VariationalInference
from repro.core.model import CPAModel
from repro.core.kernels import SweepKernel
from repro.core.sharding import ShardedSweepKernel, merge_cell_statistics
from repro.data.answers import AnswerMatrix
from repro.data.loaders import dataset_from_dict, dataset_to_dict
from repro.data.dataset import CrowdDataset, GroundTruth


@st.composite
def crowd_instance(draw):
    """A random small answer matrix with at least one answer per item."""
    n_items = draw(st.integers(4, 10))
    n_workers = draw(st.integers(3, 8))
    n_labels = draw(st.integers(3, 8))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    matrix = AnswerMatrix(n_items, n_workers, n_labels)
    for item in range(n_items):
        k = int(rng.integers(1, min(4, n_workers) + 1))
        workers = rng.choice(n_workers, size=k, replace=False)
        for worker in workers:
            size = int(rng.integers(1, min(3, n_labels) + 1))
            labels = rng.choice(n_labels, size=size, replace=False)
            matrix.add(item, int(worker), [int(l) for l in labels])
    return matrix


SMALL_CONFIG = dict(max_iterations=4, tolerance=1e-3, max_truncation=6)


class TestInferenceProperties:
    @given(crowd_instance(), st.integers(0, 1000))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_state_always_valid_and_elbo_monotone(self, matrix, seed):
        engine = VariationalInference(
            CPAConfig(seed=seed, **SMALL_CONFIG), matrix
        )
        previous = engine.elbo()
        assert np.isfinite(previous)
        for _ in range(3):
            engine.sweep()
            engine.state.validate()
            current = engine.elbo()
            assert current >= previous - 1e-6
            previous = current

    @given(crowd_instance(), st.integers(0, 1000))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_predictions_always_in_domain(self, matrix, seed):
        model = CPAModel(CPAConfig(seed=seed, **SMALL_CONFIG)).fit(matrix)
        predictions = model.predict()
        assert set(predictions) == set(matrix.answered_items())
        for labels in predictions.values():
            assert all(0 <= label < matrix.n_labels for label in labels)

    @given(crowd_instance())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_consensus_always_proper(self, matrix):
        engine = VariationalInference(CPAConfig(seed=0, **SMALL_CONFIG), matrix)
        result = engine.run(track_elbo=False)
        consensus = estimate_consensus(result.state, engine.config, matrix)
        assert np.all(consensus.inclusion > 0)
        assert np.all(consensus.inclusion < 1)
        assert np.all(consensus.community_weights >= 0)
        np.testing.assert_allclose(consensus.cluster_weights.sum(), 1.0, atol=1e-9)
        rates = consensus.label_rates
        assert rates is not None
        for array in (rates.sensitivity, rates.false_rate):
            assert np.all(array > 0) and np.all(array < 1)

    @given(crowd_instance(), st.integers(0, 100))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_seed_determinism_of_full_pipeline(self, matrix, seed):
        a = CPAModel(CPAConfig(seed=seed, **SMALL_CONFIG)).fit(matrix).predict()
        b = CPAModel(CPAConfig(seed=seed, **SMALL_CONFIG)).fit(matrix).predict()
        assert a == b


def _kernel_outputs(kernel_cls, items, workers, x, phi, kappa, e_log_psi, **kwargs):
    """(worker scores, item scores, counts, mass, elbo) of one kernel."""
    t, m = phi.shape[1], kappa.shape[1]
    kernel = kernel_cls(
        items, workers, x, phi.shape[0], kappa.shape[0], **kwargs
    )
    kernel.begin_sweep(e_log_psi)
    worker_scores = kernel.add_worker_scores(np.zeros((kappa.shape[0], m)), phi)
    item_scores = kernel.add_item_scores(np.zeros((phi.shape[0], t)), kappa)
    counts, mass = kernel.cell_statistics(phi, kappa)
    elbo = kernel.data_elbo(phi, kappa, e_log_psi)
    return worker_scores, item_scores, counts, mass, elbo


def _kernel_problem(seed, n=220, n_items=18, n_workers=11, n_labels=6, t=4, m=3):
    rng = np.random.default_rng(seed)
    items = rng.integers(0, n_items, size=n)
    workers = rng.integers(0, n_workers, size=n)
    pool = (rng.random((9, n_labels)) < 0.4).astype(float)
    pool[pool.sum(axis=1) == 0, 0] = 1.0
    x = pool[rng.integers(0, 9, size=n)]
    phi = rng.dirichlet(np.ones(t), size=n_items)
    kappa = rng.dirichlet(np.ones(m), size=n_workers)
    e_log_psi = np.log(rng.dirichlet(np.ones(n_labels), size=(t, m)))
    return items, workers, x, phi, kappa, e_log_psi


KERNELS = [
    ("fused", SweepKernel, {}),
    ("sharded-3", ShardedSweepKernel, dict(n_shards=3)),
    ("sharded-1", ShardedSweepKernel, dict(n_shards=1)),
]


class TestInvarianceProperties:
    """Symmetries of the sufficient-statistic layer (serial and sharded)."""

    @pytest.mark.parametrize("name,kernel_cls,kwargs", KERNELS)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_answer_order_invariance(self, name, kernel_cls, kwargs, seed):
        """Shuffling the flat answer arrays changes nothing observable."""
        items, workers, x, phi, kappa, e_log_psi = _kernel_problem(seed)
        base = _kernel_outputs(
            kernel_cls, items, workers, x, phi, kappa, e_log_psi, **kwargs
        )
        rng = np.random.default_rng(seed + 100)
        order = rng.permutation(items.size)
        shuffled = _kernel_outputs(
            kernel_cls, items[order], workers[order], x[order],
            phi, kappa, e_log_psi, **kwargs,
        )
        for a, b in zip(base[:4], shuffled[:4]):
            np.testing.assert_allclose(a, b, atol=1e-10, rtol=0)
        assert shuffled[4] == pytest.approx(base[4], abs=1e-9)

    @pytest.mark.parametrize("name,kernel_cls,kwargs", KERNELS)
    def test_worker_relabelling_equivariance(self, name, kernel_cls, kwargs):
        """Worker ids carry no information: outputs just follow the labels."""
        items, workers, x, phi, kappa, e_log_psi = _kernel_problem(3)
        rng = np.random.default_rng(42)
        perm = rng.permutation(kappa.shape[0])  # perm[u] = new id of worker u
        kappa_perm = np.empty_like(kappa)
        kappa_perm[perm] = kappa
        base = _kernel_outputs(
            kernel_cls, items, workers, x, phi, kappa, e_log_psi, **kwargs
        )
        relabelled = _kernel_outputs(
            kernel_cls, items, perm[workers], x, phi, kappa_perm, e_log_psi, **kwargs
        )
        np.testing.assert_allclose(
            relabelled[0][perm], base[0], atol=1e-10, rtol=0
        )  # worker scores follow the relabelling
        for a, b in zip(base[1:4], relabelled[1:4]):
            np.testing.assert_allclose(a, b, atol=1e-10, rtol=0)
        assert relabelled[4] == pytest.approx(base[4], abs=1e-9)

    @pytest.mark.parametrize("name,kernel_cls,kwargs", KERNELS)
    def test_item_relabelling_equivariance(self, name, kernel_cls, kwargs):
        items, workers, x, phi, kappa, e_log_psi = _kernel_problem(4)
        rng = np.random.default_rng(43)
        perm = rng.permutation(phi.shape[0])
        phi_perm = np.empty_like(phi)
        phi_perm[perm] = phi
        base = _kernel_outputs(
            kernel_cls, items, workers, x, phi, kappa, e_log_psi, **kwargs
        )
        relabelled = _kernel_outputs(
            kernel_cls, perm[items], workers, x, phi_perm, kappa, e_log_psi, **kwargs
        )
        np.testing.assert_allclose(relabelled[1][perm], base[1], atol=1e-10, rtol=0)
        np.testing.assert_allclose(relabelled[0], base[0], atol=1e-10, rtol=0)
        for a, b in zip(base[2:4], relabelled[2:4]):
            np.testing.assert_allclose(a, b, atol=1e-10, rtol=0)
        assert relabelled[4] == pytest.approx(base[4], abs=1e-9)

    @pytest.mark.parametrize("backend_kwargs", [{}, {"backend": "sharded", "n_shards": 3}])
    def test_consensus_invariant_under_relabelling(self, backend_kwargs):
        """End-to-end: relabelled data + equivariantly permuted state give
        the same trajectory and the same consensus predictions (mapped back).

        The seeded initialisation itself depends on row order, so the
        relabelled engine starts from the *permuted copy* of the original
        init state; from there every sweep must stay aligned.
        """
        rng = np.random.default_rng(5)
        items, workers, x, *_ = _kernel_problem(5, n=160, n_items=14, n_workers=9)
        n_items, n_workers, n_labels = 14, 9, x.shape[1]
        matrix = AnswerMatrix(n_items, n_workers, n_labels)
        relabelled = AnswerMatrix(n_items, n_workers, n_labels)
        item_perm = rng.permutation(n_items)
        worker_perm = rng.permutation(n_workers)
        seen = set()
        for i, u, row in zip(items, workers, x):
            if (int(i), int(u)) in seen:
                continue
            seen.add((int(i), int(u)))
            labels = np.flatnonzero(row)
            matrix.add(int(i), int(u), labels)
            relabelled.add(int(item_perm[i]), int(worker_perm[u]), labels)

        config = CPAConfig(seed=9, **SMALL_CONFIG, **backend_kwargs)
        original = VariationalInference(config, matrix)
        permuted = VariationalInference(config, relabelled)
        permuted.state = original.state.permuted(
            item_permutation=item_perm, worker_permutation=worker_perm
        )
        for _ in range(4):
            original.sweep()
            permuted.sweep()
            np.testing.assert_allclose(
                permuted.state.kappa[worker_perm], original.state.kappa,
                atol=1e-10, rtol=0,
            )
            np.testing.assert_allclose(
                permuted.state.phi[item_perm], original.state.phi,
                atol=1e-10, rtol=0,
            )
            np.testing.assert_allclose(
                permuted.state.lam, original.state.lam, atol=1e-10, rtol=0
            )
        assert permuted.elbo() == pytest.approx(original.elbo(), abs=1e-8)

        from repro.core.prediction import predict_items

        consensus_a = estimate_consensus(original.state, config, matrix)
        consensus_b = estimate_consensus(permuted.state, config, relabelled)
        labels_a = {
            i: detail.labels
            for i, detail in predict_items(
                original.state, consensus_a, matrix, config
            ).items()
        }
        labels_b = {
            i: detail.labels
            for i, detail in predict_items(
                permuted.state, consensus_b, relabelled, config
            ).items()
        }
        assert {int(item_perm[i]): labels for i, labels in labels_a.items()} == labels_b

    @given(st.integers(0, 10_000), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_shard_merge_associative_commutative(self, seed, n_fragments):
        """Any order/bracketing of fragment merges agrees within roundoff."""
        rng = np.random.default_rng(seed)
        pieces = [
            (rng.normal(size=(3, 4, 5)), rng.normal(size=(3, 4)))
            for _ in range(n_fragments)
        ]
        counts, mass = merge_cell_statistics(pieces)
        # commutativity: random permutation of fragments
        order = rng.permutation(n_fragments)
        counts_p, mass_p = merge_cell_statistics([pieces[i] for i in order])
        np.testing.assert_allclose(counts_p, counts, atol=1e-12, rtol=0)
        np.testing.assert_allclose(mass_p, mass, atol=1e-12, rtol=0)
        # associativity: fold a random bracketing pairwise
        split = int(rng.integers(1, n_fragments)) if n_fragments > 1 else 1
        left = merge_cell_statistics(pieces[:split])
        right = merge_cell_statistics(pieces[split:]) if pieces[split:] else None
        nested = merge_cell_statistics([left, right] if right else [left])
        np.testing.assert_allclose(nested[0], counts, atol=1e-12, rtol=0)
        np.testing.assert_allclose(nested[1], mass, atol=1e-12, rtol=0)


class TestSerialisationProperties:
    @given(crowd_instance())
    @settings(max_examples=20, deadline=None)
    def test_dataset_roundtrip_preserves_everything(self, matrix):
        truth = GroundTruth(matrix.n_items, matrix.n_labels)
        for item in range(0, matrix.n_items, 2):
            truth.set(item, {item % matrix.n_labels})
        dataset = CrowdDataset(name="prop", answers=matrix, truth=truth)
        rebuilt = dataset_from_dict(dataset_to_dict(dataset))
        assert rebuilt.n_answers == dataset.n_answers
        for answer in dataset.answers.iter_answers():
            assert rebuilt.answers.get(answer.item, answer.worker) == answer.labels
        assert rebuilt.truth.known_items() == truth.known_items()


class TestMetricProperties:
    @given(crowd_instance(), st.integers(0, 50))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_perfect_prediction_scores_one(self, matrix, seed):
        from repro.evaluation.metrics import evaluate_predictions

        rng = np.random.default_rng(seed)
        truth = GroundTruth(matrix.n_items, matrix.n_labels)
        for item in range(matrix.n_items):
            size = int(rng.integers(1, matrix.n_labels + 1))
            truth.set(item, rng.choice(matrix.n_labels, size=size, replace=False))
        oracle = {item: truth.get(item) for item in range(matrix.n_items)}
        result = evaluate_predictions(oracle, truth)
        assert result.precision == pytest.approx(1.0)
        assert result.recall == pytest.approx(1.0)
