"""Chaos harness: worker daemons die under the sharded sweep (DESIGN.md §6).

The contract under test: killing remote worker daemons — between sweeps,
*mid-sweep* (between the lane calls of one sweep), or mid-stream for the
SVI engine — must never change results.  The surviving lanes absorb the
dead lane's tasks, payloads are re-broadcast to lanes that lost them
(daemon restarts, replacement workers), and the final trajectories stay
**bitwise equal** to the serial fused-order path, because results are
merged in task order regardless of which lane computed what.

Everything here is deterministic: kills are triggered by call counts
(:class:`tests.transport_harness.KillAfterMapOn`) or happen while no
call is in flight — no timing races, no retries-until-green.
"""

import numpy as np
import pytest

from repro.core.config import CPAConfig
from repro.core.inference import VariationalInference
from repro.core.svi import StochasticInference, stream_from_matrix
from repro.errors import TransportError
from repro.utils.parallel import RemoteExecutor
from repro.utils.transport import WorkerServer

from tests.test_sharded import _assert_states_close
from tests.transport_harness import KillAfterMapOn, worker_fleet

pytestmark = pytest.mark.network

BITWISE = dict(atol=0, rtol=0)
SHARD_COUNTS = [1, 2, 7]


def _config(n_shards, **overrides):
    return CPAConfig(
        seed=4, max_iterations=6, backend="sharded", n_shards=n_shards, **overrides
    )


# ------------------------------------------------------------------ batch VI


class TestBatchVIKills:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_mid_sweep_kill_stays_bitwise_equal_to_serial(
        self, tiny_dataset, n_shards
    ):
        """Worker 0 dies between two lane calls of sweep 2; sweeps 2-4
        reroute to the survivor with no numeric trace."""
        config = _config(n_shards)
        serial = VariationalInference(config, tiny_dataset.answers)
        with worker_fleet(2) as servers:
            # init issues one map_on (seeding statistics), each sweep three
            # (worker scores, item scores, cell statistics): kill_after=5
            # murders the daemon *inside* sweep 2
            executor = KillAfterMapOn(
                [s.address for s in servers], victim=servers[0], kill_after=5
            )
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            for _ in range(4):
                assert remote.sweep() == serial.sweep()
            assert remote.elbo() == serial.elbo()
            _assert_states_close(remote.state, serial.state, BITWISE)
            # the victim was excluded; the survivor carried the tail
            assert executor.map_on_calls > 5
            assert executor.live_workers() == [servers[1].address]
            assert servers[1].op_counts["map_on"] > 0
            executor.close()

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_kill_between_sweeps_stays_bitwise_equal_to_serial(
        self, tiny_dataset, n_shards
    ):
        config = _config(n_shards)
        serial = VariationalInference(config, tiny_dataset.answers)
        with worker_fleet(2) as servers:
            executor = RemoteExecutor([s.address for s in servers])
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            for _ in range(2):
                assert remote.sweep() == serial.sweep()
            servers[0].kill()  # no call in flight
            for _ in range(2):
                assert remote.sweep() == serial.sweep()
            assert remote.elbo() == serial.elbo()
            _assert_states_close(remote.state, serial.state, BITWISE)
            assert executor.live_workers() == [servers[1].address]
            executor.close()

    def test_daemon_restart_on_same_port_is_rebroadcast_to(self, tiny_dataset):
        """A daemon that dies and is respawned on the same address holds no
        state; the retry path must re-broadcast the shard plan to it (the
        `stale` protocol) instead of failing or silently excluding it."""
        config = _config(3)
        serial = VariationalInference(config, tiny_dataset.answers)
        with worker_fleet(2) as servers:
            executor = RemoteExecutor([s.address for s in servers])
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            assert remote.sweep() == serial.sweep()
            servers[0].kill()
            replacement = WorkerServer(
                host=servers[0].host, port=servers[0].port
            ).serve_in_thread()
            try:
                for _ in range(3):
                    assert remote.sweep() == serial.sweep()
                assert remote.elbo() == serial.elbo()
                _assert_states_close(remote.state, serial.state, BITWISE)
                # the respawned daemon reconnected and was re-broadcast to
                assert len(executor.live_workers()) == 2
                assert replacement.op_counts.get("broadcast", 0) >= 1
                assert replacement.op_counts.get("map_on", 0) >= 1
            finally:
                executor.close()
                replacement.close()

    def test_replacement_worker_attached_mid_fit_gets_the_plan(self, tiny_dataset):
        config = _config(4)
        serial = VariationalInference(config, tiny_dataset.answers)
        with worker_fleet(3) as servers:
            executor = RemoteExecutor([s.address for s in servers[:2]])
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            assert remote.sweep() == serial.sweep()
            servers[1].kill()
            executor.add_worker(servers[2].address)
            for _ in range(2):
                assert remote.sweep() == serial.sweep()
            _assert_states_close(remote.state, serial.state, BITWISE)
            assert servers[2].op_counts.get("broadcast", 0) >= 1
            assert servers[2].op_counts.get("map_on", 0) >= 1
            executor.close()

    def test_losing_every_worker_fails_loudly(self, tiny_dataset):
        config = _config(2)
        with worker_fleet(2) as servers:
            executor = RemoteExecutor([s.address for s in servers])
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            remote.sweep()
            for server in servers:
                server.kill()
            with pytest.raises(TransportError, match="all remote workers"):
                remote.sweep()
            executor.close()


class TestConfigDrivenRemote:
    def test_engine_resolves_remote_lanes_from_config_alone(self, tiny_dataset):
        """CPAConfig(executor='remote', workers=...) is the whole spec: the
        engine builds its own RemoteExecutor and stays bitwise equal."""
        serial = VariationalInference(_config(2), tiny_dataset.answers)
        with worker_fleet(2) as servers:
            config = _config(2).with_overrides(
                executor="remote", workers=tuple(s.address for s in servers)
            )
            remote = VariationalInference(config, tiny_dataset.answers)
            assert isinstance(remote.executor, RemoteExecutor)
            for _ in range(2):
                assert remote.sweep() == serial.sweep()
            _assert_states_close(remote.state, serial.state, BITWISE)
            remote.executor.close()


# ----------------------------------------------------------------------- SVI


class TestSVIKills:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_kill_between_batches_stays_bitwise_equal_to_serial(
        self, tiny_dataset, n_shards
    ):
        config = CPAConfig(
            seed=6, svi_iterations=1, backend="sharded", n_shards=n_shards
        )
        sizes = (tiny_dataset.n_items, tiny_dataset.n_workers, tiny_dataset.n_labels)
        batches = stream_from_matrix(
            tiny_dataset.answers, answers_per_batch=80, seed=9
        )
        serial = StochasticInference(config, *sizes)
        with worker_fleet(2) as servers:
            executor = RemoteExecutor([s.address for s in servers])
            remote = StochasticInference(config, *sizes, executor=executor)
            kill_at = len(batches) // 2
            for index, batch in enumerate(batches):
                if index == kill_at:
                    servers[0].kill()
                serial.process_batch(batch)
                remote.process_batch(batch)
            _assert_states_close(remote.state, serial.state, BITWISE)
            assert executor.live_workers() == [servers[1].address]
            executor.close()

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_mid_batch_kill_stays_bitwise_equal_to_serial(
        self, tiny_dataset, n_shards
    ):
        """The daemon dies between two lane calls *inside* one SVI batch."""
        config = CPAConfig(
            seed=6, svi_iterations=1, backend="sharded", n_shards=n_shards
        )
        sizes = (tiny_dataset.n_items, tiny_dataset.n_workers, tiny_dataset.n_labels)
        batches = stream_from_matrix(
            tiny_dataset.answers, answers_per_batch=80, seed=9
        )
        serial = StochasticInference(config, *sizes)
        with worker_fleet(2) as servers:
            executor = KillAfterMapOn(
                [s.address for s in servers],
                victim=servers[0],
                kill_after=10**9,  # armed below, once batch 1 is done
            )
            remote = StochasticInference(config, *sizes, executor=executor)
            serial.process_batch(batches[0])
            remote.process_batch(batches[0])
            # die on the second map_on of the next batch
            executor._kill_after = executor.map_on_calls + 1
            for batch in batches[1:]:
                serial.process_batch(batch)
                remote.process_batch(batch)
            _assert_states_close(remote.state, serial.state, BITWISE)
            assert executor.live_workers() == [servers[1].address]
            executor.close()
