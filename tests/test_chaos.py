"""Chaos harness: worker daemons die under the sharded sweep (DESIGN.md §6).

The contract under test: killing remote worker daemons — between sweeps,
*mid-sweep* (between the lane calls of one sweep), or mid-stream for the
SVI engine — must never change results.  The surviving lanes absorb the
dead lane's tasks, payloads are re-broadcast to lanes that lost them
(daemon restarts, replacement workers), and the final trajectories stay
**bitwise equal** to the serial fused-order path, because results are
merged in task order regardless of which lane computed what.

Everything here is deterministic: kills are triggered by call counts
(:class:`tests.transport_harness.KillAfterMapOn`) or happen while no
call is in flight — no timing races, no retries-until-green.
"""

import numpy as np
import pytest

from repro.core.config import CPAConfig
from repro.core.inference import VariationalInference
from repro.core.svi import StochasticInference, stream_from_matrix
from repro.errors import TransportError
from repro.utils.parallel import RemoteExecutor
from repro.utils.transport import WorkerServer

from tests.test_sharded import _assert_states_close
from tests.transport_harness import (
    KillAfterMapOn,
    StallingWorkerServer,
    worker_fleet,
)

pytestmark = pytest.mark.network

BITWISE = dict(atol=0, rtol=0)
SHARD_COUNTS = [1, 2, 7]


def _config(n_shards, **overrides):
    return CPAConfig(
        seed=4, max_iterations=6, backend="sharded", n_shards=n_shards, **overrides
    )


# ------------------------------------------------------------------ batch VI


class TestBatchVIKills:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_mid_sweep_kill_stays_bitwise_equal_to_serial(
        self, tiny_dataset, n_shards
    ):
        """Worker 0 dies between two lane calls of sweep 2; sweeps 2-4
        reroute to the survivor with no numeric trace."""
        config = _config(n_shards)
        serial = VariationalInference(config, tiny_dataset.answers)
        with worker_fleet(2) as servers:
            # init issues one map_on (seeding statistics), each sweep three
            # (worker scores, item scores, cell statistics): kill_after=5
            # murders the daemon *inside* sweep 2
            executor = KillAfterMapOn(
                [s.address for s in servers], victim=servers[0], kill_after=5
            )
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            for _ in range(4):
                assert remote.sweep() == serial.sweep()
            assert remote.elbo() == serial.elbo()
            _assert_states_close(remote.state, serial.state, BITWISE)
            # the victim was excluded; the survivor carried the tail
            assert executor.map_on_calls > 5
            assert executor.live_workers() == [servers[1].address]
            assert servers[1].op_counts["map_on"] > 0
            executor.close()

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_kill_between_sweeps_stays_bitwise_equal_to_serial(
        self, tiny_dataset, n_shards
    ):
        config = _config(n_shards)
        serial = VariationalInference(config, tiny_dataset.answers)
        with worker_fleet(2) as servers:
            executor = RemoteExecutor([s.address for s in servers])
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            for _ in range(2):
                assert remote.sweep() == serial.sweep()
            servers[0].kill()  # no call in flight
            for _ in range(2):
                assert remote.sweep() == serial.sweep()
            assert remote.elbo() == serial.elbo()
            _assert_states_close(remote.state, serial.state, BITWISE)
            assert executor.live_workers() == [servers[1].address]
            executor.close()

    def test_daemon_restart_on_same_port_is_rebroadcast_to(self, tiny_dataset):
        """A daemon that dies and is respawned on the same address holds no
        state; the retry path must re-broadcast the shard plan to it (the
        `stale` protocol) instead of failing or silently excluding it."""
        config = _config(3)
        serial = VariationalInference(config, tiny_dataset.answers)
        with worker_fleet(2) as servers:
            executor = RemoteExecutor([s.address for s in servers])
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            assert remote.sweep() == serial.sweep()
            servers[0].kill()
            replacement = WorkerServer(
                host=servers[0].host, port=servers[0].port
            ).serve_in_thread()
            try:
                for _ in range(3):
                    assert remote.sweep() == serial.sweep()
                assert remote.elbo() == serial.elbo()
                _assert_states_close(remote.state, serial.state, BITWISE)
                # the respawned daemon reconnected and was re-broadcast to
                assert len(executor.live_workers()) == 2
                assert replacement.op_counts.get("broadcast", 0) >= 1
                assert replacement.op_counts.get("map_on", 0) >= 1
            finally:
                executor.close()
                replacement.close()

    def test_replacement_worker_attached_mid_fit_gets_the_plan(self, tiny_dataset):
        config = _config(4)
        serial = VariationalInference(config, tiny_dataset.answers)
        with worker_fleet(3) as servers:
            executor = RemoteExecutor([s.address for s in servers[:2]])
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            assert remote.sweep() == serial.sweep()
            servers[1].kill()
            executor.add_worker(servers[2].address)
            for _ in range(2):
                assert remote.sweep() == serial.sweep()
            _assert_states_close(remote.state, serial.state, BITWISE)
            assert servers[2].op_counts.get("broadcast", 0) >= 1
            assert servers[2].op_counts.get("map_on", 0) >= 1
            executor.close()

    def test_losing_every_worker_fails_loudly(self, tiny_dataset):
        config = _config(2)
        with worker_fleet(2) as servers:
            executor = RemoteExecutor([s.address for s in servers])
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            remote.sweep()
            for server in servers:
                server.kill()
            with pytest.raises(TransportError, match="all remote workers"):
                remote.sweep()
            executor.close()


class TestConfigDrivenRemote:
    def test_engine_resolves_remote_lanes_from_config_alone(self, tiny_dataset):
        """CPAConfig(executor='remote', workers=...) is the whole spec: the
        engine builds its own RemoteExecutor and stays bitwise equal."""
        serial = VariationalInference(_config(2), tiny_dataset.answers)
        with worker_fleet(2) as servers:
            config = _config(2).with_overrides(
                executor="remote", workers=tuple(s.address for s in servers)
            )
            remote = VariationalInference(config, tiny_dataset.answers)
            assert isinstance(remote.executor, RemoteExecutor)
            for _ in range(2):
                assert remote.sweep() == serial.sweep()
            _assert_states_close(remote.state, serial.state, BITWISE)
            remote.executor.close()


# ------------------------------------------------------- stragglers (hangs)


class TestStragglerChaos:
    """Daemons that *hang* rather than die (DESIGN.md §6 "Elastic fleet").

    A hang is strictly nastier than a crash: the socket stays open, so
    without per-request deadlines the client blocks forever.  The
    contract: a hung daemon delays a sweep, never stalls it, and the
    trajectory stays bitwise equal to serial — speculative re-dispatch
    re-runs the pure task functions, so the surviving copy of each
    result is identical to the one the straggler owed.
    """

    def test_mid_sweep_hang_delays_but_stays_bitwise_equal(self, tiny_dataset):
        config = _config(3)
        serial = VariationalInference(config, tiny_dataset.answers)
        # init issues one map_on dispatch, each sweep three: occurrence 4
        # hangs the victim inside sweep 2
        victim = StallingWorkerServer(stall_at=[("map_on", 4)]).serve_in_thread()
        survivor = WorkerServer().serve_in_thread()
        try:
            executor = RemoteExecutor(
                [victim.address, survivor.address],
                request_timeout=0.3,
                straggler_grace=60.0,  # stay suspect: membership unchanged
            )
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            for _ in range(4):
                assert remote.sweep() == serial.sweep()
            assert remote.elbo() == serial.elbo()
            _assert_states_close(remote.state, serial.state, BITWISE)
            # the hang delayed one dispatch; the fleet stayed whole
            assert len(executor.live_workers()) == 2
            victim.unstall()
            executor.close()
        finally:
            victim.close()
            survivor.close()

    def test_hung_handler_recovery_rejoins_the_sweep(self, tiny_dataset):
        """With a zero grace window the suspect is reconnected at once —
        the fresh connection gets a fresh handler thread, so the lane
        rejoins and keeps serving while the old handler stays parked."""
        config = _config(2)
        serial = VariationalInference(config, tiny_dataset.answers)
        victim = StallingWorkerServer(stall_at=[("map_on", 3)]).serve_in_thread()
        survivor = WorkerServer().serve_in_thread()
        try:
            executor = RemoteExecutor(
                [victim.address, survivor.address],
                request_timeout=0.2,
                straggler_grace=0.0,
                reconnects=3,
            )
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            for _ in range(4):
                assert remote.sweep() == serial.sweep()
            _assert_states_close(remote.state, serial.state, BITWISE)
            assert len(executor.live_workers()) == 2
            assert victim.stalled == 1  # the hung handler is still parked
            victim.unstall()
            executor.close()
        finally:
            victim.close()
            survivor.close()


# ------------------------------------------------------- elastic membership


class TestElasticMembership:
    """Runtime joins/drains re-plan the shard count between sweeps.

    Auto-K plans (``n_shards=0``) size K from the executor's degree;
    when membership changes between sweeps, :meth:`sweep` re-plans and
    the serial twin — re-planned to the same K at the same boundary —
    must stay bitwise equal (merges are fixed-shard-order).
    """

    def test_worker_join_mid_inference_replans_bitwise(self, tiny_dataset):
        config = _config(0)  # auto-K: one shard per lane
        serial = VariationalInference(config, tiny_dataset.answers)
        with worker_fleet(2) as servers:
            executor = RemoteExecutor([servers[0].address])
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            assert remote.kernel.n_shards == serial.kernel.n_shards == 1
            for _ in range(2):
                assert remote.sweep() == serial.sweep()
            executor.add_worker(servers[1].address)
            # mirror the automatic re-plan on the serial twin
            expected_k = config.resolve_shards(2, remote.n_items)
            serial.replan_shards(n_shards=expected_k)
            for _ in range(3):
                assert remote.sweep() == serial.sweep()
            assert remote.kernel.n_shards == expected_k  # the re-plan fired
            assert remote.elbo() == serial.elbo()
            _assert_states_close(remote.state, serial.state, BITWISE)
            # the joining daemon really carried work
            assert servers[1].op_counts.get("map_on", 0) > 0
            executor.close()

    def test_worker_drain_mid_inference_replans_bitwise(self, tiny_dataset):
        config = _config(0)
        with worker_fleet(2) as servers:
            executor = RemoteExecutor([s.address for s in servers])
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            k_before = remote.kernel.n_shards
            assert k_before == 2
            # serial twin pinned to the same starting K (explicit K builds
            # the identical plan; only the auto re-plan trigger differs)
            serial = VariationalInference(_config(k_before), tiny_dataset.answers)
            for _ in range(2):
                assert remote.sweep() == serial.sweep()
            executor.remove_worker(servers[0].address)
            k_after = config.resolve_shards(1, remote.n_items)
            serial.replan_shards(n_shards=k_after)
            for _ in range(2):
                assert remote.sweep() == serial.sweep()
            assert remote.kernel.n_shards == k_after
            assert remote.elbo() == serial.elbo()
            _assert_states_close(remote.state, serial.state, BITWISE)
            # the drained daemon was released of this client's payloads
            assert len(servers[0].registry) == 0
            executor.close()

    def test_explicit_shard_count_is_never_silently_replanned(self, tiny_dataset):
        """An explicit K is a user decision; membership drift must not
        override it (only auto-K plans resize)."""
        config = _config(2)
        serial = VariationalInference(config, tiny_dataset.answers)
        with worker_fleet(2) as servers:
            executor = RemoteExecutor([servers[0].address])
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            assert remote.sweep() == serial.sweep()
            executor.add_worker(servers[1].address)
            for _ in range(2):
                assert remote.sweep() == serial.sweep()
            assert remote.kernel.n_shards == 2  # unchanged
            _assert_states_close(remote.state, serial.state, BITWISE)
            executor.close()

    def test_chunked_rebroadcast_after_payload_churn(self, tiny_dataset):
        """Daemon payload churn mid-fit re-arms from the chunk index: the
        re-arm costs probe+assemble frames, not a full plan re-ship, and
        the trajectory stays bitwise serial."""
        config = _config(2)
        serial = VariationalInference(config, tiny_dataset.answers)
        with worker_fleet(2) as servers:
            executor = RemoteExecutor(
                [s.address for s in servers], chunk_bytes=4096
            )
            remote = VariationalInference(
                config, tiny_dataset.answers, executor=executor
            )
            assert remote.sweep() == serial.sweep()
            assert executor._manifests  # the plan really is chunked
            shipped = executor.broadcast_sent_bytes
            servers[0].registry.drop_payloads()  # payloads gone, chunks kept
            for _ in range(3):
                assert remote.sweep() == serial.sweep()
            _assert_states_close(remote.state, serial.state, BITWISE)
            delta = executor.broadcast_sent_bytes - shipped
            assert 0 < delta < shipped // 10
            executor.close()


# ----------------------------------------------------------------------- SVI


class TestSVIKills:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_kill_between_batches_stays_bitwise_equal_to_serial(
        self, tiny_dataset, n_shards
    ):
        config = CPAConfig(
            seed=6, svi_iterations=1, backend="sharded", n_shards=n_shards
        )
        sizes = (tiny_dataset.n_items, tiny_dataset.n_workers, tiny_dataset.n_labels)
        batches = stream_from_matrix(
            tiny_dataset.answers, answers_per_batch=80, seed=9
        )
        serial = StochasticInference(config, *sizes)
        with worker_fleet(2) as servers:
            executor = RemoteExecutor([s.address for s in servers])
            remote = StochasticInference(config, *sizes, executor=executor)
            kill_at = len(batches) // 2
            for index, batch in enumerate(batches):
                if index == kill_at:
                    servers[0].kill()
                serial.process_batch(batch)
                remote.process_batch(batch)
            _assert_states_close(remote.state, serial.state, BITWISE)
            assert executor.live_workers() == [servers[1].address]
            executor.close()

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_mid_batch_kill_stays_bitwise_equal_to_serial(
        self, tiny_dataset, n_shards
    ):
        """The daemon dies between two lane calls *inside* one SVI batch."""
        config = CPAConfig(
            seed=6, svi_iterations=1, backend="sharded", n_shards=n_shards
        )
        sizes = (tiny_dataset.n_items, tiny_dataset.n_workers, tiny_dataset.n_labels)
        batches = stream_from_matrix(
            tiny_dataset.answers, answers_per_batch=80, seed=9
        )
        serial = StochasticInference(config, *sizes)
        with worker_fleet(2) as servers:
            executor = KillAfterMapOn(
                [s.address for s in servers],
                victim=servers[0],
                kill_after=10**9,  # armed below, once batch 1 is done
            )
            remote = StochasticInference(config, *sizes, executor=executor)
            serial.process_batch(batches[0])
            remote.process_batch(batches[0])
            # die on the second map_on of the next batch
            executor._kill_after = executor.map_on_calls + 1
            for batch in batches[1:]:
                serial.process_batch(batch)
                remote.process_batch(batch)
            _assert_states_close(remote.state, serial.state, BITWISE)
            assert executor.live_workers() == [servers[1].address]
            executor.close()
